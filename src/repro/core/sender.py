"""Sending an object graph (paper §4.2, Algorithm 2).

A BFS "GC-like traversal" from each root clones every reachable object into
the destination's output buffer, adjusting exactly three machine-specific
things per clone and nothing else:

* the **mark word** — GC age / lock / bias bits reset, cached hashcode
  preserved (so hash structures need no rehash on the receiver);
* the **klass word** — replaced by the global type ID (tID);
* **reference fields** — relativized to logical output-buffer addresses.

The ``baddr`` header word of the *source* object records where its clone
lives in the buffer so later references to a shared object reuse the
address even after the clone streamed out.  Its layout follows the paper:
high bytes = shuffle-phase ID (sID), then the sending thread/stream
ID, lowest five bytes = relative buffer address.  (The paper gives the
sID one byte; this reproduction gives it two — taken from the thread
field, which rarely needs more than a byte — because the generic
serializer adapter opens a fresh phase per stream and would wrap one
byte of sID within a single Spark job.)  When a
second thread reaches an object whose ``baddr`` belongs to another thread,
it falls back to a thread-local hash table, so the object is cloned once
per stream — "these copies will become separate objects after delivered to
a remote node. This semantics is consistent with that of the existing
serializers."

Heterogeneous clusters: when the receiver's object layout differs (e.g. a
header without the baddr word), ``CLONEINBUFFER`` re-formats each clone to
the receiver's layout — the sender pays, the receiver uses objects at zero
cost (paper §3.1).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.heap import markword
from repro.heap.heap import NULL, ManagedHeap
from repro.heap.klass import Klass
from repro.heap.layout import HeapLayout, KLASS_OFFSET, MARK_OFFSET, OBJECT_ALIGNMENT, align_up
from repro.jvm.jvm import JVM
from repro.core.kernels import (
    HEADER3_STRUCT as _HEADER3,
    CloneKernel,
    WORD_STRUCT,
    clone_kernel_for,
    ref_run_struct,
)
from repro.core.output_buffer import OutputBuffer
from repro.types import descriptors
from repro.types.loader import ClassLoader

_REL_BITS = 40
_REL_MASK = (1 << _REL_BITS) - 1
_THREAD_BITS = 8
_THREAD_MASK = (1 << _THREAD_BITS) - 1
_SID_MASK = 0xFFFF


def compose_baddr(sid: int, thread_id: int, relative: int) -> int:
    """Pack (sID, thread, relative address) into the baddr word."""
    if relative > _REL_MASK:
        raise ValueError(f"relative address exceeds 5 bytes: {relative:#x}")
    return (
        ((sid & _SID_MASK) << 48)
        | ((thread_id & _THREAD_MASK) << _REL_BITS)
        | (relative & _REL_MASK)
    )


def baddr_sid(word: int) -> int:
    return (word >> 48) & _SID_MASK


def baddr_thread(word: int) -> int:
    return (word >> _REL_BITS) & _THREAD_MASK


def baddr_relative(word: int) -> int:
    return word & _REL_MASK


class SendError(RuntimeError):
    pass


class ObjectGraphSender:
    """One sending stream: a thread's traversal into one output buffer."""

    def __init__(
        self,
        jvm: JVM,
        buffer: OutputBuffer,
        sid: int,
        thread_id: int = 0,
        target_layout: Optional[HeapLayout] = None,
        use_kernels: bool = True,
    ) -> None:
        self.jvm = jvm
        self.buffer = buffer
        self.sid = sid
        self.thread_id = thread_id & _THREAD_MASK
        self.source_layout = jvm.layout
        self.target_layout = target_layout if target_layout is not None else jvm.layout
        self.heterogeneous = self.target_layout != self.source_layout
        #: Compiled-kernel fast path: homogeneous sends only (heterogeneous
        #: re-formatting stays interpreted), and only into a buffer whose
        #: ``write_object`` is not overridden — instrumenting subclasses
        #: (the streaming-ablation bench) observe the interpreted path.
        self.use_kernels = (
            use_kernels
            and not self.heterogeneous
            and type(buffer).write_object is OutputBuffer.write_object
        )
        self._target_loader: Optional[ClassLoader] = None
        self._target_cache: Dict[str, Klass] = {}
        #: Thread-local fallback table for objects first claimed by another
        #: thread's baddr (paper §4.2 "Support for Threads").
        self._shared_table: Dict[int, int] = {}
        #: Logical offsets of the top (root) objects, in write order.
        self.top_marks: List[int] = []
        #: Every cloned object as ``(source_address, buffer_address,
        #: payload_bytes)``, in clone order — the raw material for the
        #: delta subsystem's send-epoch cache (source address → receiver
        #: buffer offset, via the same baddr machinery).
        self.cloned: List[Tuple[int, int, int]] = []
        self.objects_sent = 0
        self.bytes_sent = 0
        # Byte composition of the transferred image (the paper's §5.2
        # extra-bytes analysis: headers 51% / padding 34% / pointers 15%).
        self.header_bytes = 0
        self.pointer_bytes = 0
        self.data_bytes = 0
        self.padding_bytes = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def write_object(self, root: int) -> int:
        """Copy the graph reachable from ``root`` into the output buffer;
        returns the root's logical buffer address and records a top mark."""
        if root == NULL:
            # writeObject(null) is legal for the Java serializer, so it is
            # here too: a zero top mark denotes a null root.
            self.top_marks.append(0)
            return 0
        heap = self.jvm.heap
        word = heap.read_baddr(root)
        if baddr_sid(word) == (self.sid & _SID_MASK):
            # Already copied in this shuffling phase *by this stream* (this
            # thread's baddr or our shared-object table): emit a backward
            # reference to its buffer location.  A baddr stamped by another
            # thread means a different stream copied it — this stream still
            # clones its own copy below (§4.2 "Support for Threads").
            if baddr_thread(word) == self.thread_id:
                old_addr = baddr_relative(word)
                self.top_marks.append(old_addr)
                return old_addr
            existing = self._shared_table.get(root)
            if existing is not None:
                self.top_marks.append(existing)
                return existing

        if self.use_kernels:
            root_addr = self._send_graph_kernel(root)
            self.top_marks.append(root_addr)
            return root_addr

        root_addr = self._claim(root)
        gray: Deque[Tuple[int, int]] = deque([(root, root_addr)])
        while gray:
            source, addr = gray.popleft()
            self._clone_in_buffer(source, addr, gray)
        self.top_marks.append(root_addr)
        return root_addr

    # ------------------------------------------------------------------
    # traversal internals
    # ------------------------------------------------------------------

    def _claim(self, obj: int) -> int:
        """Reserve buffer space for ``obj`` and stamp its baddr (or the
        thread-local table when another thread holds the baddr)."""
        heap = self.jvm.heap
        size = self._target_size(obj)
        addr = self.buffer.reserve(size)
        word = heap.read_baddr(obj)
        if baddr_sid(word) == (self.sid & _SID_MASK) and baddr_thread(word) != self.thread_id:
            self._shared_table[obj] = addr
        else:
            # CAS in the real system; deterministic single-writer here.
            heap.write_baddr(obj, compose_baddr(self.sid, self.thread_id, addr))
        return addr

    def _send_graph_kernel(self, root: int) -> int:
        """The compiled-kernel BFS: Algorithm 2 with every per-object step
        precomputed at class-load time and every hot accessor hoisted to a
        local.

        Per object this loop performs ONE klass resolution (a dict hit on
        the cached kernel), ONE slice copy heap→segment, ONE header pack,
        one batched pointer unpack, and ONE clock charge — versus the
        interpreted path's per-field reads, per-pointer charges, and three
        klass resolutions.  Baddr words are read/written with a compiled
        ``struct`` directly against the heap's backing store; tallies
        accumulate in locals and flush once per root.
        """
        heap = self.jvm.heap
        cost = self.jvm.cost_model
        charge = self.jvm.clock.charge
        mem = heap.memory_view
        hbase = heap.base
        boff = heap.layout.baddr_offset
        aoff = heap.layout.array_length_offset
        resolver = heap.klass_resolver
        if resolver is None:
            heap.klass_of(root)  # raises the canonical HeapError
        layout = self.target_layout
        sid_tag = self.sid & _SID_MASK
        thread_id = self.thread_id
        #: The constant high bits of every baddr this stream stamps.
        claim_bits = (sid_tag << 48) | (thread_id << _REL_BITS)
        reserve = self.buffer.reserve
        begin_clone = self.buffer.begin_clone
        shared = self._shared_table
        traverse_word = cost.traverse_word
        unpack_word = WORD_STRUCT.unpack_from
        pack_word = WORD_STRUCT.pack_into
        reset_mark = markword.reset_for_transfer
        cloned_append = self.cloned.append
        gray: Deque[Tuple[int, int, CloneKernel, int, int]] = deque()
        gray_append = gray.append
        gray_pop = gray.popleft

        objects = 0
        bytes_out = 0
        header_b = pointer_b = data_b = padding_b = 0

        def claim(obj: int, off: int, foreign: bool) -> int:
            """Resolve class once, reserve, stamp/table the baddr, queue."""
            klass = resolver(unpack_word(mem, off + KLASS_OFFSET)[0])
            if klass.tid is None:
                raise SendError(
                    f"class {klass.name} has no global type ID — is the "
                    f"Skyway type registry attached to this JVM?"
                )
            kernel = klass.clone_kernel
            if (
                kernel is None
                or kernel.tid != klass.tid
                or kernel.layout is not layout
                or kernel.cost is not cost
            ):
                kernel = clone_kernel_for(klass, layout, cost)
            size = kernel.size
            if size is None:
                length = int.from_bytes(mem[off + aoff : off + aoff + 4], "little")
                size = kernel.array_size(length)
            else:
                length = 0
            addr = reserve(size)
            if addr > _REL_MASK:
                raise ValueError(
                    f"relative address exceeds 5 bytes: {addr:#x}"
                )
            if foreign:
                shared[obj] = addr
            else:
                pack_word(mem, off + boff, claim_bits | addr)
            gray_append((obj, addr, kernel, size, length))
            return addr

        root_off = root - hbase
        root_word = unpack_word(mem, root_off + boff)[0]
        # write_object already handled "claimed by this stream"; a matching
        # sID here can only mean another thread holds the baddr.
        root_addr = claim(root, root_off, (root_word >> 48) == sid_tag)

        while gray:
            source, addr, kernel, size, length = gray_pop()
            soff = source - hbase

            # CLONEINBUFFER: one slice assignment heap→segment.
            seg, off = begin_clone(addr, size)
            seg[off : off + size] = mem[soff : soff + size]

            # Header fixup in one pack: mark reset (hashcode preserved),
            # tID klass word, zeroed baddr.
            mark = reset_mark(unpack_word(seg, off)[0])
            header_struct = kernel.header_struct
            if header_struct is _HEADER3:
                header_struct.pack_into(seg, off, mark, kernel.tid, 0)
            else:
                header_struct.pack_into(seg, off, mark, kernel.tid)

            # Reference relativization off the kernel's precomputed slots.
            nonnull = 0
            if kernel.is_array:
                if kernel.has_ref_elements and length:
                    run = ref_run_struct(length)
                    elem_off = off + kernel.elem_base
                    relativized = []
                    rel_append = relativized.append
                    for ref in run.unpack_from(seg, elem_off):
                        if ref == NULL:
                            rel_append(0)
                            continue
                        nonnull += 1
                        roff = ref - hbase
                        word = unpack_word(mem, roff + boff)[0]
                        if (word >> 48) == sid_tag:
                            if ((word >> _REL_BITS) & _THREAD_MASK) == thread_id:
                                rel_append(word & _REL_MASK)
                                continue
                            existing = shared.get(ref)
                            if existing is not None:
                                rel_append(existing)
                                continue
                            rel_append(claim(ref, roff, True))
                        else:
                            rel_append(claim(ref, roff, False))
                    run.pack_into(seg, elem_off, *relativized)
                    ref_slots = length
                    pointer_b += length * 8
                else:
                    ref_slots = 0
                    data_b += length * kernel.elem_size
                header_b += kernel.array_header_bytes
                padding_b += max(
                    0,
                    size - kernel.array_header_bytes
                    - length * (8 if ref_slots else kernel.elem_size),
                )
                charge(kernel.array_cost(size, ref_slots)
                       + nonnull * traverse_word)
            else:
                ref_unpack = kernel.ref_unpack
                if ref_unpack is not None:
                    for slot, ref in zip(
                        kernel.ref_offsets, ref_unpack.unpack_from(seg, off)
                    ):
                        if ref == NULL:
                            relative = 0
                        else:
                            nonnull += 1
                            roff = ref - hbase
                            word = unpack_word(mem, roff + boff)[0]
                            if (word >> 48) == sid_tag:
                                if ((word >> _REL_BITS) & _THREAD_MASK) == thread_id:
                                    relative = word & _REL_MASK
                                else:
                                    relative = shared.get(ref)
                                    if relative is None:
                                        relative = claim(ref, roff, True)
                            else:
                                relative = claim(ref, roff, False)
                        pack_word(seg, off + slot, relative)
                header_b += kernel.header_bytes
                pointer_b += kernel.pointer_bytes
                data_b += kernel.data_bytes
                padding_b += kernel.padding_bytes
                charge(kernel.base_cost + nonnull * traverse_word)

            cloned_append((source, addr, size))
            objects += 1
            bytes_out += size

        self.objects_sent += objects
        self.bytes_sent += bytes_out
        self.header_bytes += header_b
        self.pointer_bytes += pointer_b
        self.data_bytes += data_b
        self.padding_bytes += padding_b
        return root_addr

    def _resolve_reference(self, obj: int, gray: Deque[Tuple[int, int]]) -> int:
        """Relativized address for a referenced object, claiming it (and
        queueing it for cloning) on first visit this phase."""
        if obj == NULL:
            return 0
        self.jvm.clock.charge(self.jvm.cost_model.traverse_word)
        return self._resolve_uncharged(obj, gray)

    def _resolve_uncharged(self, obj: int, gray: Deque[Tuple[int, int]]) -> int:
        """:meth:`_resolve_reference` minus the null check and the clock
        charge — the kernel path batches traversal charges per object."""
        heap = self.jvm.heap
        word = heap.read_baddr(obj)
        if baddr_sid(word) == (self.sid & _SID_MASK):
            if baddr_thread(word) == self.thread_id:
                return baddr_relative(word)
            existing = self._shared_table.get(obj)
            if existing is not None:
                return existing
            # Claimed by another thread: clone separately for this stream.
            addr = self.buffer.reserve(self._target_size(obj))
            self._shared_table[obj] = addr
            gray.append((obj, addr))
            return addr
        addr = self._claim(obj)
        gray.append((obj, addr))
        return addr

    def _clone_in_buffer(
        self, source: int, addr: int, gray: Deque[Tuple[int, int]]
    ) -> None:
        """CLONEINBUFFER + header update + reference relativization for one
        object (Algorithm 2 lines 10–27)."""
        heap = self.jvm.heap
        cost = self.jvm.cost_model
        klass = heap.klass_of(source)
        if klass.tid is None:
            raise SendError(
                f"class {klass.name} has no global type ID — is the Skyway "
                f"type registry attached to this JVM?"
            )
        if self.heterogeneous:
            payload = self._convert_format(source, klass, gray)
        else:
            payload = bytearray(heap.read_bytes(source, heap.object_size(source)))
            self._fix_header(payload, klass)
            self._fix_references_homogeneous(source, payload, gray)

        self.jvm.clock.charge(cost.skyway_header_fixup)
        self.jvm.clock.charge(cost.memcpy(len(payload)))
        self.buffer.write_object(addr, bytes(payload))
        self.cloned.append((source, addr, len(payload)))
        self.objects_sent += 1
        self.bytes_sent += len(payload)
        array_length = heap.array_length(source) if klass.is_array else None
        self._account_composition(klass, len(payload), array_length)

    def _account_composition(
        self, klass: Klass, payload_len: int, array_length: Optional[int]
    ) -> None:
        """Split one clone's bytes into header / pointers / data / padding."""
        target = self._target_klass(klass.name) if self.heterogeneous else klass
        header = self.target_layout.header_size
        pointers = 0
        data = 0
        if target.is_array:
            header += 4  # the length slot counts as header metadata
            elem = target.element_descriptor or ""
            count = array_length or 0
            if descriptors.is_reference(elem):
                pointers = count * 8
            else:
                data = count * target.element_size
        else:
            for field in target.all_fields():
                if field.is_reference:
                    pointers += 8
                else:
                    data += field.size
        padding = payload_len - header - pointers - data
        self.header_bytes += header
        self.pointer_bytes += pointers
        self.data_bytes += data
        self.padding_bytes += max(0, padding)

    def _fix_header(self, payload: bytearray, klass: Klass) -> None:
        mark = int.from_bytes(payload[MARK_OFFSET : MARK_OFFSET + 8], "little")
        clean = markword.reset_for_transfer(mark)
        payload[MARK_OFFSET : MARK_OFFSET + 8] = clean.to_bytes(8, "little")
        payload[KLASS_OFFSET : KLASS_OFFSET + 8] = (klass.tid or 0).to_bytes(8, "little")
        if self.target_layout.has_baddr:
            off = self.target_layout.baddr_offset
            payload[off : off + 8] = bytes(8)

    def _fix_references_homogeneous(
        self, source: int, payload: bytearray, gray: Deque[Tuple[int, int]]
    ) -> None:
        heap = self.jvm.heap
        cost = self.jvm.cost_model
        for offset in heap.reference_offsets(source):
            target = heap.read_word(source + offset)
            relative = self._resolve_reference(target, gray)
            payload[offset : offset + 8] = relative.to_bytes(8, "little")
            self.jvm.clock.charge(cost.skyway_pointer_fixup)

    # ------------------------------------------------------------------
    # heterogeneous-format support
    # ------------------------------------------------------------------

    def _target_klass(self, name: str) -> Klass:
        if not self.heterogeneous:
            return self.jvm.loader.load(name)
        cached = self._target_cache.get(name)
        if cached is not None:
            return cached
        if self._target_loader is None:
            self._target_loader = ClassLoader(self.jvm.classpath, self.target_layout)
        klass = self._target_loader.load(name)
        self._target_cache[name] = klass
        return klass

    def _target_size(self, obj: int) -> int:
        heap = self.jvm.heap
        klass = heap.klass_of(obj)
        if not self.heterogeneous:
            return heap.object_size(obj)
        target = self._target_klass(klass.name)
        if target.is_array:
            return target.object_size(heap.array_length(obj))
        return target.object_size()

    def _convert_format(
        self, source: int, klass: Klass, gray: Deque[Tuple[int, int]]
    ) -> bytearray:
        """Re-lay an object out in the receiver's format: new header
        geometry, new field offsets.  Extra cost lands on the sender only
        (paper §3.1)."""
        heap = self.jvm.heap
        cost = self.jvm.cost_model
        target = self._target_klass(klass.name)
        if target.is_array:
            length = heap.array_length(source)
            size = target.object_size(length)
        else:
            length = None
            size = target.object_size()
        payload = bytearray(size)

        mark = markword.reset_for_transfer(heap.read_mark(source))
        payload[MARK_OFFSET : MARK_OFFSET + 8] = mark.to_bytes(8, "little")
        payload[KLASS_OFFSET : KLASS_OFFSET + 8] = (klass.tid or 0).to_bytes(8, "little")
        # Conversion pays roughly a second copy of the object.
        self.jvm.clock.charge(cost.memcpy(size))

        if target.is_array:
            assert length is not None
            lo = self.target_layout.array_length_offset
            payload[lo : lo + 4] = length.to_bytes(4, "little")
            elem = target.element_descriptor or ""
            src_base = self.source_layout.array_payload_offset(elem)
            dst_base = self.target_layout.array_payload_offset(elem)
            esize = target.element_size
            if descriptors.is_reference(elem):
                for i in range(length):
                    ref = heap.read_word(source + src_base + i * esize)
                    rel = self._resolve_reference(ref, gray)
                    off = dst_base + i * esize
                    payload[off : off + 8] = rel.to_bytes(8, "little")
                    self.jvm.clock.charge(cost.skyway_pointer_fixup)
            else:
                raw = heap.read_bytes(source + src_base, length * esize)
                payload[dst_base : dst_base + len(raw)] = raw
        else:
            source_fields = {f.name: f for f in klass.all_fields()}
            for tf in target.all_fields():
                sf = source_fields.get(tf.name)
                if sf is None:
                    raise SendError(
                        f"cannot re-format {klass.name} for the receiver's "
                        f"layout: target class {target.name} declares field "
                        f"{tf.name!r} ({tf.descriptor}) that the source "
                        f"class does not have"
                    )
                if tf.is_reference:
                    ref = heap.read_word(source + sf.offset)
                    rel = self._resolve_reference(ref, gray)
                    payload[tf.offset : tf.offset + 8] = rel.to_bytes(8, "little")
                    self.jvm.clock.charge(cost.skyway_pointer_fixup)
                else:
                    raw = heap.read_bytes(source + sf.offset, sf.size)
                    payload[tf.offset : tf.offset + tf.size] = raw
        return payload
