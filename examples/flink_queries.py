#!/usr/bin/env python
"""TPC-H-style queries on the Flink-like engine: built-in serializers vs
Skyway (the paper's §5.3 experiment in miniature).

Run:  python examples/flink_queries.py
"""

from repro.bench.flink_experiments import run_figure8b, summarize_table4
from repro.bench.report import format_breakdown_table, format_normalized_table
from repro.flink.queries import QUERIES


def main() -> None:
    print("Table 3 — the five queries")
    for key, spec in QUERIES.items():
        print(f"  {key}: {spec.description}")
    print()

    results = run_figure8b(micro_scale=0.3)
    for query in ("QA", "QB", "QC", "QD", "QE"):
        rows = {mode: results[(query, mode)].breakdown
                for mode in ("builtin", "skyway")}
        print(format_breakdown_table(rows, f"{query} — Flink breakdown", "ms"))
        builtin = results[(query, "builtin")]
        skyway = results[(query, "skyway")]
        speedup = builtin.breakdown.total / skyway.breakdown.total
        print(f"  result rows: {skyway.rows} (identical under both modes: "
              f"{builtin.rows == skyway.rows}); skyway speedup {speedup:.2f}x\n")

    print(format_normalized_table(
        summarize_table4(results),
        "Table 4 shape — Skyway normalized to Flink's built-in serializer",
    ))


if __name__ == "__main__":
    main()
