"""The delta wire format: framed NEW / PATCH / SAME-REF records.

Layered on the conventions of :mod:`repro.core.streams` (varint framing, a
trailer of root offsets, a logical-size check word), one frame per epoch:

``FULL`` frame — epoch 1, and any epoch the fallback policy reverts::

    u8 0x10 | varint channel_id | varint epoch
    varint len | <a complete standard Skyway stream frame>

``DELTA`` frame::

    u8 0x11 | varint channel_id | varint epoch | varint base_logical_end
    records:
        u8 1 (PATCH)    varint offset | varint len | payload
        u8 2 (NEW)      varint offset | varint len | payload
        u8 3 (SAME-REF) varint offset          # an unchanged root
        u8 0 (END)
    varint n_roots | varint offset per root (0 = null)
    varint new_logical_end

Record payloads are exactly Algorithm 2 clones — mark word reset, klass
word replaced by the tID, references relativized — except that reference
slots are relativized against the *receiver's* retained buffer: a cached
referent keeps the offset recorded in the epoch cache, a new referent is
assigned the next aligned offset past the buffer's end (NEW records are
emitted in assignment order, so the receiver's append cursor reproduces
the same offsets).  PATCH offsets point at the previous clone, which the
receiver overwrites in place — same klass, same size, by construction.

A new object is only reachable through a written reference slot, and every
written slot dirtied its card — so encoding starts from the dirty set and
discovers all NEW objects without ever visiting the unchanged graph.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.delta.epoch_cache import EpochRecord
from repro.heap import markword
from repro.heap.heap import NULL
from repro.heap.layout import KLASS_OFFSET, MARK_OFFSET, OBJECT_ALIGNMENT, align_up
from repro.jvm.jvm import JVM
from repro.net.streams import ByteInputStream, ByteOutputStream

FRAME_FULL = 0x10
FRAME_DELTA = 0x11

REC_END = 0
REC_PATCH = 1
REC_NEW = 2
REC_SAMEREF = 3


class DeltaWireError(RuntimeError):
    pass


def is_delta_frame(data: bytes) -> bool:
    """Whether ``data`` is a Skyway-Delta frame (vs. a plain stream)."""
    return bool(data) and data[0] in (FRAME_FULL, FRAME_DELTA)


def frame_full(channel_id: int, epoch: int, embedded: bytes) -> bytes:
    out = ByteOutputStream()
    out.write_u8(FRAME_FULL)
    out.write_varint(channel_id)
    out.write_varint(epoch)
    out.write_varint(len(embedded))
    out.write_bytes(embedded)
    return out.getvalue()


@dataclasses.dataclass
class DeltaRecord:
    tag: int
    offset: int
    payload: bytes = b""


@dataclasses.dataclass
class DeltaFrame:
    """A parsed DELTA frame."""

    channel_id: int
    epoch: int
    base_logical_end: int
    records: List[DeltaRecord]
    roots: List[int]
    new_logical_end: int


@dataclasses.dataclass
class FullFrame:
    """A parsed FULL frame."""

    channel_id: int
    epoch: int
    embedded: bytes


def parse_frame(data: bytes):
    """Parse either frame kind; returns :class:`FullFrame` or
    :class:`DeltaFrame`."""
    inp = ByteInputStream(data)
    kind = inp.read_u8()
    if kind == FRAME_FULL:
        channel_id = inp.read_varint()
        epoch = inp.read_varint()
        embedded = inp.read_bytes(inp.read_varint())
        return FullFrame(channel_id, epoch, embedded)
    if kind != FRAME_DELTA:
        raise DeltaWireError(f"not a delta frame (leading byte {kind:#x})")
    channel_id = inp.read_varint()
    epoch = inp.read_varint()
    base_logical_end = inp.read_varint()
    records: List[DeltaRecord] = []
    while True:
        tag = inp.read_u8()
        if tag == REC_END:
            break
        offset = inp.read_varint()
        if tag in (REC_PATCH, REC_NEW):
            payload = inp.read_bytes(inp.read_varint())
            records.append(DeltaRecord(tag, offset, payload))
        elif tag == REC_SAMEREF:
            records.append(DeltaRecord(tag, offset))
        else:
            raise DeltaWireError(f"unknown record tag {tag}")
    n_roots = inp.read_varint()
    roots = [inp.read_varint() for _ in range(n_roots)]
    new_logical_end = inp.read_varint()
    return DeltaFrame(
        channel_id, epoch, base_logical_end, records, roots, new_logical_end
    )


@dataclasses.dataclass
class EpochSummary:
    """What one encoded delta epoch contained (feeds stats + cache merge)."""

    patched_objects: int = 0
    patched_bytes: int = 0
    new_objects: int = 0
    new_bytes: int = 0
    sameref_roots: int = 0
    payload_bytes: int = 0  # patched + new, pre-framing
    new_members: Dict[int, int] = dataclasses.field(default_factory=dict)
    new_sizes: Dict[int, int] = dataclasses.field(default_factory=dict)
    logical_end: int = 0


class DeltaEncoder:
    """Encode one delta epoch against an :class:`EpochRecord`.

    Homogeneous layouts only — PATCH overwrites a clone in place, which is
    only meaningful when both sides share the object format; heterogeneous
    destinations fall back to full sends at the channel layer.
    """

    def __init__(self, jvm: JVM, record: EpochRecord) -> None:
        self.jvm = jvm
        self.record = record

    def encode(
        self, roots: List[int], dirty: List[int], channel_id: int, epoch: int
    ) -> Tuple[bytes, EpochSummary]:
        heap = self.jvm.heap
        cost = self.jvm.cost_model
        record = self.record
        summary = EpochSummary()

        #: source address -> receiver offset, cached plus this epoch's NEW.
        offset_of = dict(record.addr_to_offset)
        logical_cursor = record.logical_end
        new_queue: Deque[int] = deque()

        def resolve(address: int) -> int:
            nonlocal logical_cursor
            if address == NULL:
                return 0
            self.jvm.clock.charge(cost.traverse_word)
            known = offset_of.get(address)
            if known is not None:
                return known
            size = align_up(heap.object_size(address), OBJECT_ALIGNMENT)
            offset = logical_cursor
            logical_cursor += size
            offset_of[address] = offset
            summary.new_members[address] = offset
            summary.new_sizes[address] = size
            new_queue.append(address)
            return offset

        def clone(address: int) -> bytes:
            payload = bytearray(heap.read_bytes(address, heap.object_size(address)))
            mark = int.from_bytes(payload[MARK_OFFSET : MARK_OFFSET + 8], "little")
            clean = markword.reset_for_transfer(mark)
            payload[MARK_OFFSET : MARK_OFFSET + 8] = clean.to_bytes(8, "little")
            klass = heap.klass_of(address)
            if klass.tid is None:
                raise DeltaWireError(
                    f"class {klass.name} has no global type ID — is the "
                    f"Skyway type registry attached to this JVM?"
                )
            payload[KLASS_OFFSET : KLASS_OFFSET + 8] = klass.tid.to_bytes(8, "little")
            if self.jvm.layout.has_baddr:
                off = self.jvm.layout.baddr_offset
                payload[off : off + 8] = bytes(8)
            for off in heap.reference_offsets(address):
                target = heap.read_word(address + off)
                payload[off : off + 8] = resolve(target).to_bytes(8, "little")
                self.jvm.clock.charge(cost.skyway_pointer_fixup)
            self.jvm.clock.charge(cost.skyway_header_fixup)
            self.jvm.clock.charge(cost.memcpy(len(payload)))
            return bytes(payload)

        out = ByteOutputStream()
        out.write_u8(FRAME_DELTA)
        out.write_varint(channel_id)
        out.write_varint(epoch)
        out.write_varint(record.logical_end)

        # PATCH records for the dirty subset (offset order: deterministic
        # frames and sequential receiver writes).
        for address in sorted(dirty, key=record.offset_of):
            payload = clone(address)
            out.write_u8(REC_PATCH)
            out.write_varint(record.offset_of(address))
            out.write_varint(len(payload))
            out.write_bytes(payload)
            summary.patched_objects += 1
            summary.patched_bytes += len(payload)

        # Roots first touch (may enqueue NEW), then drain the queue — NEW
        # records must appear in offset-assignment order.
        dirty_set = set(dirty)
        root_offsets: List[int] = []
        for root in roots:
            offset = resolve(root)
            root_offsets.append(offset)
            if root != NULL and root in record and root not in dirty_set:
                out.write_u8(REC_SAMEREF)
                out.write_varint(offset)
                summary.sameref_roots += 1
        while new_queue:
            address = new_queue.popleft()
            payload = clone(address)
            out.write_u8(REC_NEW)
            out.write_varint(offset_of[address])
            out.write_varint(len(payload))
            out.write_bytes(payload)
            summary.new_objects += 1
            summary.new_bytes += len(payload)

        out.write_u8(REC_END)
        out.write_varint(len(root_offsets))
        for offset in root_offsets:
            out.write_varint(offset)
        out.write_varint(logical_cursor)

        summary.payload_bytes = summary.patched_bytes + summary.new_bytes
        summary.logical_end = logical_cursor
        return out.getvalue(), summary
