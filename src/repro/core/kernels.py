"""Compiled per-class clone kernels (paper §4.2–4.3, batch-shaped).

Skyway's pitch is that a transfer costs "memcpy plus three fixups", yet an
interpreted sender pays per-object, per-field Python work: it recomputes
``heap.reference_offsets()`` for every clone, crosses several
``bytearray``/``bytes`` copies per payload, and the receiver re-resolves
tID → class name → klass for every placed object.  A *kernel* moves all of
that to class-load time: each :class:`~repro.heap.klass.Klass` compiles
once into an immutable :class:`CloneKernel` (sender side) and
:class:`ReceiveKernel` (receiver side) holding

* the reference-offset tuple and a cached :class:`struct.Struct` that
  unpacks every pointer slot in one call (pad bytes skip primitive
  fields — unpack only: ``pack_into`` would zero the pads, so writes go
  per slot);
* a cached header pack (mark word, tID, zeroed baddr) per layout;
* the fixed ``object_size`` for non-arrays, so placement is a dict hit
  plus one slice;
* an array fast path that relativizes/absolutizes reference arrays with
  one ``unpack_from``/``pack_into`` pair over ``"<nQ"`` instead of a
  per-element loop;
* the per-object simulated-time charge, pre-added so the clock is charged
  once per object (scaled by the non-null reference count) instead of
  once per pointer.

Kernels are cached on the klass itself and keyed by (tID, layout, cost
model): the transport's HELLO merge rewrites ``Klass.tid`` after late
class loads, which drops the stale kernel automatically (the ``tid``
setter clears the cache slot).
"""

from __future__ import annotations

import struct
from typing import Dict, Optional, Tuple

from repro.heap.klass import Klass
from repro.heap.layout import HeapLayout, OBJECT_ALIGNMENT, align_up

#: One little-endian word (per-slot pointer writes).
WORD_STRUCT = struct.Struct("<Q")

#: Header packs: (mark, tID, baddr=0) for Skyway layouts, (mark, tID) for
#: baseline 16-byte headers.  MARK_OFFSET/KLASS_OFFSET/baddr are adjacent
#: words starting at offset 0, so one pack covers the whole header fixup.
HEADER3_STRUCT = struct.Struct("<QQQ")
HEADER2_STRUCT = struct.Struct("<QQ")

#: Cached ``"<nQ"`` run structs for reference arrays, keyed by length.
_RUN_STRUCTS: Dict[int, struct.Struct] = {}
_RUN_STRUCT_CACHE_LIMIT = 4096


def ref_run_struct(count: int) -> struct.Struct:
    """The ``"<{count}Q"`` struct for a run of ``count`` pointer words."""
    cached = _RUN_STRUCTS.get(count)
    if cached is None:
        if len(_RUN_STRUCTS) >= _RUN_STRUCT_CACHE_LIMIT:
            _RUN_STRUCTS.clear()
        cached = struct.Struct(f"<{count}Q")
        _RUN_STRUCTS[count] = cached
    return cached


def _scattered_unpack(offsets: Tuple[int, ...]) -> Optional[struct.Struct]:
    """One Struct that unpacks every (8-byte) slot in ``offsets`` from the
    start of an object image, skipping the bytes between slots as pad.
    Unpack-only by construction — packing through pad bytes writes zeros.
    """
    if not offsets:
        return None
    parts = ["<"]
    cursor = 0
    for offset in offsets:
        gap = offset - cursor
        if gap:
            parts.append(f"{gap}x")
        parts.append("Q")
        cursor = offset + 8
    return struct.Struct("".join(parts))


class CloneKernel:
    """Sender-side compiled clone recipe for one class (homogeneous sends).

    Immutable after compilation; every mutable datum (array length, mark
    word, reference values) comes from the object image at clone time.
    """

    __slots__ = (
        "klass", "tid", "layout", "cost", "is_array", "has_ref_elements",
        "size", "ref_offsets", "n_refs", "ref_unpack", "header_struct",
        "elem_base", "elem_size", "base_cost", "array_header_bytes",
        "header_bytes", "pointer_bytes", "data_bytes", "padding_bytes",
    )

    def __init__(self, klass: Klass, layout: HeapLayout, cost) -> None:
        self.klass = klass
        self.tid = klass.tid
        self.layout = layout
        self.cost = cost
        self.is_array = klass.is_array
        self.has_ref_elements = klass.has_reference_elements
        self.header_struct = HEADER3_STRUCT if layout.has_baddr else HEADER2_STRUCT

        if self.is_array:
            elem = klass.element_descriptor or ""
            self.elem_base = layout.array_payload_offset(elem)
            self.elem_size = klass.element_size
            self.size = None
            self.ref_offsets = ()
            self.n_refs = 0
            self.ref_unpack = None
            self.base_cost = 0.0
            #: The length slot counts as header metadata (§5.2 accounting).
            self.array_header_bytes = layout.header_size + 4
            self.header_bytes = self.pointer_bytes = 0
            self.data_bytes = self.padding_bytes = 0
        else:
            self.elem_base = self.elem_size = 0
            self.array_header_bytes = 0
            self.size = klass.object_size()
            self.ref_offsets = klass.oop_offsets
            self.n_refs = len(self.ref_offsets)
            self.ref_unpack = _scattered_unpack(self.ref_offsets)
            self.base_cost = (
                cost.skyway_header_fixup
                + cost.memcpy(self.size)
                + self.n_refs * cost.skyway_pointer_fixup
            )
            # §5.2 byte-composition constants, precomputed per class.
            self.header_bytes = layout.header_size
            self.pointer_bytes = 8 * self.n_refs
            self.data_bytes = sum(
                f.size for f in klass.all_fields() if not f.is_reference
            )
            self.padding_bytes = max(
                0,
                self.size - self.header_bytes - self.pointer_bytes
                - self.data_bytes,
            )

    def array_size(self, length: int) -> int:
        """Total byte size of an array instance (non-arrays use ``size``)."""
        return align_up(
            self.elem_base + self.elem_size * length, OBJECT_ALIGNMENT
        )

    def array_cost(self, size: int, n_refs: int) -> float:
        """Per-object charge for an array clone of ``size`` bytes with
        ``n_refs`` pointer slots (null or not)."""
        return (
            self.cost.skyway_header_fixup
            + self.cost.memcpy(size)
            + n_refs * self.cost.skyway_pointer_fixup
        )


def clone_kernel_for(klass: Klass, layout: HeapLayout, cost) -> CloneKernel:
    """The (possibly cached) clone kernel for ``klass`` under ``layout``.

    Recompiles when the cached kernel went stale: a tID rewrite (the
    transport's HELLO merge), a different layout, or a different cost
    model (ablation benches scale constants).
    """
    kernel = klass.clone_kernel
    if (
        kernel is not None
        and kernel.tid == klass.tid
        and kernel.layout is layout
        and kernel.cost is cost
    ):
        return kernel
    kernel = CloneKernel(klass, layout, cost)
    klass.clone_kernel = kernel
    return kernel


class ReceiveKernel:
    """Receiver-side compiled placement/absolutization recipe for one tID."""

    __slots__ = (
        "klass", "klass_id", "layout", "cost", "is_array",
        "has_ref_elements", "size", "length_offset", "elem_base",
        "elem_size", "ref_offsets", "n_refs", "ref_unpack", "finish_cost",
        "object_cost",
    )

    def __init__(self, klass: Klass, layout: HeapLayout, cost) -> None:
        self.klass = klass
        self.klass_id = klass.klass_id
        self.layout = layout
        self.cost = cost
        self.is_array = klass.is_array
        self.has_ref_elements = klass.has_reference_elements
        self.length_offset = layout.array_length_offset
        #: Per-object share of the linear scan (size decode + klass patch).
        self.object_cost = cost.skyway_receive_object
        if self.is_array:
            elem = klass.element_descriptor or ""
            self.elem_base = layout.array_payload_offset(elem)
            self.elem_size = klass.element_size
            self.size = None
            self.ref_offsets = ()
            self.n_refs = 0
            self.ref_unpack = None
            self.finish_cost = self.object_cost
        else:
            self.elem_base = self.elem_size = 0
            self.size = klass.object_size()
            self.ref_offsets = klass.oop_offsets
            self.n_refs = len(self.ref_offsets)
            self.ref_unpack = _scattered_unpack(self.ref_offsets)
            self.finish_cost = (
                self.object_cost + self.n_refs * cost.skyway_pointer_fixup
            )

    def array_size(self, length: int) -> int:
        return align_up(
            self.elem_base + self.elem_size * length, OBJECT_ALIGNMENT
        )


def receive_kernel_for(klass: Klass, layout: HeapLayout, cost) -> ReceiveKernel:
    """The (possibly cached) receive kernel for ``klass``."""
    kernel = klass.receive_kernel
    if (
        kernel is not None
        and kernel.klass_id == klass.klass_id
        and kernel.layout is layout
        and kernel.cost is cost
    ):
        return kernel
    kernel = ReceiveKernel(klass, layout, cost)
    klass.receive_kernel = kernel
    return kernel
