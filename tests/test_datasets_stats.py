"""Statistical tests on the dataset generators."""

import math

import pytest

from repro.datasets.graphs import (
    GRAPH_PROFILES,
    degree_distribution,
    generate_graph,
)
from repro.datasets.text import generate_text_corpus
from repro.simtime.costmodel import DEFAULT_COST_MODEL, INFINIBAND_COST_MODEL


class TestGraphStatistics:
    def test_average_degree_matches_profile(self):
        for key in ("LJ", "OR"):
            profile = GRAPH_PROFILES[key]
            edges = generate_graph(profile, scale=0.3)
            vertices = len({v for e in edges for v in e})
            avg_degree = 2 * len(edges) / vertices
            paper_avg = 2 * profile.paper_edges / profile.paper_vertices
            # Sampling loses isolated vertices, so generated average degree
            # is biased up a little; it must stay in the right ballpark.
            assert 0.5 * paper_avg < avg_degree < 3.0 * paper_avg, key

    def test_skew_ordering(self):
        """UK (web graph, heavier skew exponent) concentrates degree mass
        harder than LJ."""
        def top_share(key):
            edges = generate_graph(GRAPH_PROFILES[key], scale=0.3)
            degrees = sorted(degree_distribution(edges).values(), reverse=True)
            top = max(1, len(degrees) // 100)
            return sum(degrees[:top]) / sum(degrees)
        assert top_share("UK") > top_share("LJ")

    def test_no_self_loops(self):
        edges = generate_graph(GRAPH_PROFILES["LJ"], scale=0.2)
        assert all(u != v for u, v in edges)

    def test_scale_parameter(self):
        small = generate_graph(GRAPH_PROFILES["LJ"], scale=0.1)
        large = generate_graph(GRAPH_PROFILES["LJ"], scale=0.4)
        assert 2 * len(small) < len(large)

    def test_different_seeds_differ(self):
        a = generate_graph(GRAPH_PROFILES["LJ"], seed=1, scale=0.1)
        b = generate_graph(GRAPH_PROFILES["LJ"], seed=2, scale=0.1)
        assert a != b


class TestTextStatistics:
    def test_zipf_head_dominates(self):
        lines = generate_text_corpus(lines=400, words_per_line=10)
        counts = {}
        for line in lines:
            for word in line.split():
                counts[word] = counts.get(word, 0) + 1
        ordered = sorted(counts.values(), reverse=True)
        total = sum(ordered)
        head = sum(ordered[: max(1, len(ordered) // 20)])
        assert head > 0.25 * total  # top 5% of words >25% of mass

    def test_vocabulary_bounded(self):
        lines = generate_text_corpus(lines=100, vocabulary_size=50)
        words = {w for line in lines for w in line.split()}
        assert len(words) <= 50


class TestCostModelProfiles:
    def test_infiniband_faster_than_ethernet(self):
        eth = DEFAULT_COST_MODEL.network_transfer(1_000_000)
        ib = INFINIBAND_COST_MODEL.network_transfer(1_000_000)
        assert ib < eth / 5

    def test_profiles_share_cpu_constants(self):
        assert INFINIBAND_COST_MODEL.reflective_access == \
            DEFAULT_COST_MODEL.reflective_access
        assert INFINIBAND_COST_MODEL.memcpy_per_byte == \
            DEFAULT_COST_MODEL.memcpy_per_byte
