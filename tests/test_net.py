"""Tests for the cluster/disk/byte-stream substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.jvm.jvm import JVM
from repro.net.cluster import Cluster
from repro.net.disk import Disk
from repro.net.streams import ByteInputStream, ByteOutputStream, StreamError
from repro.simtime import Category, DEFAULT_COST_MODEL, SimClock
from repro.types.corelib import standard_classpath


class TestDisk:
    @pytest.fixture
    def disk(self):
        return Disk(SimClock(), DEFAULT_COST_MODEL)

    def test_write_read_roundtrip(self, disk):
        disk.write_file("a", b"hello")
        assert disk.read_file("a") == b"hello"

    def test_duplicate_create_rejected(self, disk):
        disk.create("a")
        with pytest.raises(FileExistsError):
            disk.create("a")

    def test_missing_file(self, disk):
        with pytest.raises(FileNotFoundError):
            disk.read_file("nope")

    def test_append_accumulates(self, disk):
        f = disk.create("log")
        disk.append(f, b"ab")
        disk.append(f, b"cd")
        assert disk.read_file("log") == b"abcd"

    def test_byte_counters(self, disk):
        disk.write_file("a", b"x" * 100)
        disk.read_file("a")
        assert disk.bytes_written == 100
        assert disk.bytes_read == 100

    def test_listdir_prefix(self, disk):
        disk.write_file("shuffle-1-0", b"")
        disk.write_file("shuffle-1-1", b"")
        disk.write_file("other", b"")
        assert disk.listdir("shuffle-1") == ["shuffle-1-0", "shuffle-1-1"]

    def test_write_charges_write_io(self):
        clock = SimClock()
        disk = Disk(clock, DEFAULT_COST_MODEL)
        disk.write_file("a", b"x" * 10_000)
        assert clock.total(Category.WRITE_IO) > 0
        assert clock.total(Category.READ_IO) == 0

    def test_delete_idempotent(self, disk):
        disk.write_file("a", b"x")
        disk.delete("a")
        disk.delete("a")
        assert not disk.exists("a")


class TestCluster:
    @pytest.fixture
    def cluster(self):
        cp = standard_classpath()
        return Cluster(lambda n: JVM(n, classpath=cp), worker_count=3)

    def test_topology(self, cluster):
        assert len(cluster) == 4
        assert cluster.node("driver") is cluster.driver
        assert cluster.node("worker-2") is cluster.workers[2]
        with pytest.raises(KeyError):
            cluster.node("worker-9")

    def test_remote_transfer_charges_receiver(self, cluster):
        src, dst = cluster.workers[0], cluster.workers[1]
        cluster.transfer(src, dst, 1_000_000)
        assert dst.clock.total(Category.NETWORK) > 0
        assert src.clock.total(Category.NETWORK) == 0
        assert dst.remote_bytes_fetched == 1_000_000

    def test_local_transfer_is_free(self, cluster):
        node = cluster.workers[0]
        cluster.transfer(node, node, 1_000_000)
        assert node.clock.total(Category.NETWORK) == 0
        assert node.local_bytes_fetched == 1_000_000

    def test_negative_transfer_rejected(self, cluster):
        with pytest.raises(ValueError):
            cluster.transfer(cluster.driver, cluster.workers[0], -1)

    def test_total_clock_merges(self, cluster):
        cluster.workers[0].clock.charge(1.0, Category.COMPUTATION)
        cluster.workers[1].clock.charge(2.0, Category.READ_IO)
        total = cluster.total_clock()
        assert total.total(Category.COMPUTATION) == 1.0
        assert total.total(Category.READ_IO) == 2.0

    def test_reset_clocks(self, cluster):
        cluster.driver.clock.charge(5.0)
        cluster.transfer(cluster.driver, cluster.workers[0], 10)
        cluster.reset_clocks()
        assert cluster.total_clock().total() == 0.0
        assert cluster.workers[0].remote_bytes_fetched == 0

    def test_max_node_time(self, cluster):
        cluster.workers[2].clock.charge(9.0)
        assert cluster.max_node_time() == 9.0


class TestByteStreams:
    def test_fixed_width_roundtrip(self):
        out = ByteOutputStream()
        out.write_u8(0xAB)
        out.write_u16(0xBEEF)
        out.write_i32(-123)
        out.write_i64(-(1 << 60))
        out.write_f32(0.5)
        out.write_f64(3.25)
        inp = ByteInputStream(out.getvalue())
        assert inp.read_u8() == 0xAB
        assert inp.read_u16() == 0xBEEF
        assert inp.read_i32() == -123
        assert inp.read_i64() == -(1 << 60)
        assert inp.read_f32() == 0.5
        assert inp.read_f64() == 3.25
        assert inp.at_end()

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_varint_roundtrip(self, value):
        out = ByteOutputStream()
        out.write_varint(value)
        assert ByteInputStream(out.getvalue()).read_varint() == value

    def test_varint_negative_rejected(self):
        with pytest.raises(StreamError):
            ByteOutputStream().write_varint(-1)

    @given(st.text(max_size=40))
    def test_utf_roundtrip(self, text):
        out = ByteOutputStream()
        out.write_utf(text)
        assert ByteInputStream(out.getvalue()).read_utf() == text

    def test_underflow_detected(self):
        inp = ByteInputStream(b"\x01")
        with pytest.raises(StreamError):
            inp.read_u32()

    def test_position_and_remaining(self):
        inp = ByteInputStream(b"abcd")
        inp.read_bytes(3)
        assert inp.position == 3
        assert inp.remaining == 1
