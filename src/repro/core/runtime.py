"""The per-JVM Skyway runtime: registries, buffers, phases, update hooks.

One :class:`SkywayRuntime` attaches to each JVM in the cluster (the paper's
"Skyway Runtime (JVM)" box in Figure 4).  The driver JVM owns the
:class:`~repro.core.type_registry.DriverRegistry`; every runtime (driver
included) holds a :class:`~repro.core.type_registry.RegistryView`, hooks the
class loader so loading obtains a tID, and manages:

* output buffers segregated by destination *and* sending thread — "objects
  with the same destination are put into the same output buffer. Only one
  such output buffer exists for each destination [per thread]";
* the shuffle-phase counter behind the ``shuffle_start`` API;
* ``register_update`` hooks applied on the receive side.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.output_buffer import OutputBuffer
from repro.core.receiver import ObjectGraphReceiver, UpdateFunction
from repro.core.sender import ObjectGraphSender
from repro.core.type_registry import DriverRegistry, RegistryView
from repro.heap.layout import HeapLayout
from repro.jvm.jvm import JVM


class SkywayRuntime:
    """Skyway, attached to one JVM."""

    def __init__(
        self,
        jvm: JVM,
        driver_registry: DriverRegistry,
        is_driver: bool,
        cluster=None,
        node=None,
        driver_node=None,
        output_buffer_capacity: int = 256 * 1024,
        input_chunk_size: int = 64 * 1024,
        format_config=None,
        use_kernels: bool = True,
    ) -> None:
        self.jvm = jvm
        self.is_driver = is_driver
        self.driver_registry = driver_registry
        self.view = RegistryView(
            driver_registry, cluster=cluster, node=node, driver_node=driver_node
        )
        self.output_buffer_capacity = output_buffer_capacity
        self.input_chunk_size = input_chunk_size
        #: The §3.1 "user-provided configuration file" naming each node's
        #: object format; None means a homogeneous cluster.
        self.format_config = format_config
        #: Compiled clone kernels on the send path (False = interpreted
        #: per-field loops, kept for ablation benchmarks).
        self.use_kernels = use_kernels
        #: Current shuffling-phase ID (bumped by shuffle_start).
        self.sid = 1
        self._buffers: Dict[Tuple[str, int], OutputBuffer] = {}
        self._update_functions: Dict[str, List[Tuple[str, UpdateFunction]]] = {}
        #: Retained input buffers: paper §3.2 — "Skyway does not reuse an
        #: old input buffer unless the developer explicitly frees the
        #: buffer using an API - frameworks such as Spark cache all RDDs in
        #: memory and thus Skyway keeps all input buffers."
        self._input_buffers: Dict[int, Tuple[object, list]] = {}
        self._input_buffer_ids = 0

        if is_driver:
            # Algorithm 1 part 1: the driver scans its own loaded classes
            # right after startup, then serves lookups.
            driver_registry.bootstrap_from(jvm.loader.loaded_classes())
            self.view.request_view()
        else:
            # Worker startup: batch-fetch the registry, then register
            # anything this worker already loaded that the driver missed.
            self.view.request_view()
            for klass in jvm.loader.loaded_classes():
                self.view.on_class_load(klass)
        # From now on, every class load obtains its tID.
        jvm.loader.add_load_hook(self.view.on_class_load)
        jvm.skyway = self

    # ------------------------------------------------------------------
    # phases & buffers
    # ------------------------------------------------------------------

    def shuffle_start(self) -> int:
        """Mark the beginning of a shuffling phase (paper §3.3): bump the
        sID (invalidating every baddr from earlier phases) and clear the
        output buffers."""
        self.sid += 1
        for buffer in self._buffers.values():
            buffer.clear()
        return self.sid

    def output_buffer(self, destination: str, thread_id: int = 0) -> OutputBuffer:
        key = (destination, thread_id)
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = OutputBuffer(destination, capacity=self.output_buffer_capacity)
            self._buffers[key] = buffer
        return buffer

    def layout_for_destination(self, node_name: str) -> Optional[HeapLayout]:
        """The destination's object format per the cluster config."""
        if self.format_config is None:
            return None
        return self.format_config.layout_for(node_name)

    def new_sender(
        self,
        destination: str,
        thread_id: int = 0,
        target_layout: Optional[HeapLayout] = None,
        fresh_buffer: bool = False,
        use_kernels: Optional[bool] = None,
    ) -> ObjectGraphSender:
        buffer = self.output_buffer(destination, thread_id)
        if fresh_buffer:
            buffer.clear()
        return ObjectGraphSender(
            self.jvm, buffer, sid=self.sid, thread_id=thread_id,
            target_layout=target_layout,
            use_kernels=(self.use_kernels if use_kernels is None
                         else use_kernels),
        )

    def new_receiver(self) -> ObjectGraphReceiver:
        return ObjectGraphReceiver(
            self.jvm,
            self.view,
            chunk_size=self.input_chunk_size,
            update_functions=self._update_functions,
        )

    # ------------------------------------------------------------------
    # input-buffer lifetime (paper §3.2)
    # ------------------------------------------------------------------

    def track_input_buffer(self, receiver, root_handles: list) -> int:
        """Retain a received buffer: its roots stay GC-pinned until the
        developer frees the buffer explicitly."""
        self._input_buffer_ids += 1
        token = self._input_buffer_ids
        self._input_buffers[token] = (receiver, list(root_handles))
        return token

    def free_input_buffer(self, token: int) -> None:
        """The explicit free API: drop the buffer's GC roots so the next
        collection can reclaim its objects (if the application holds no
        other references).

        Raises :class:`KeyError` on an unknown or already-freed token: once
        delta transfer retains buffers across epochs, a silent double free
        would unpin roots some later epoch still relies on.
        """
        try:
            receiver, handles = self._input_buffers.pop(token)
        except KeyError:
            raise KeyError(
                f"input-buffer token {token} is unknown or already freed"
            ) from None
        for handle in handles:
            self.jvm.unpin(handle)

    def extend_input_buffer_roots(self, token: int, root_handles: list) -> None:
        """Add GC roots to a retained buffer (delta epochs can introduce
        new top objects into a buffer shipped in an earlier epoch)."""
        try:
            receiver, handles = self._input_buffers[token]
        except KeyError:
            raise KeyError(
                f"input-buffer token {token} is unknown or already freed"
            ) from None
        self._input_buffers[token] = (receiver, handles + list(root_handles))

    @property
    def retained_input_buffers(self) -> int:
        return len(self._input_buffers)

    def retained_input_bytes(self) -> int:
        return sum(
            receiver.buffer.total_bytes
            for receiver, _ in self._input_buffers.values()
        )

    # ------------------------------------------------------------------
    # update hooks (paper §3.3 registerUpdate)
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Runtime introspection: registry, buffers, and phase state."""
        return {
            "jvm": self.jvm.name,
            "is_driver": self.is_driver,
            "shuffle_phase": self.sid,
            "registry_view_classes": len(self.view),
            "remote_registry_lookups": self.view.remote_lookups,
            "output_buffers": len(self._buffers),
            "output_buffer_resident_bytes": sum(
                b.resident_bytes for b in self._buffers.values()
            ),
            "retained_input_buffers": self.retained_input_buffers,
            "retained_input_bytes": self.retained_input_bytes(),
        }

    def register_update(
        self, class_name: str, field_name: str, fn: UpdateFunction
    ) -> None:
        """After-transfer field update, e.g. re-initializing a timestamp:
        ``register_update("Record", "timeStamp", lambda jvm, addr: 0)``."""
        klass = self.jvm.loader.load(class_name)
        klass.field(field_name)  # validate eagerly
        self._update_functions.setdefault(class_name, []).append((field_name, fn))


def attach_skyway(
    driver_jvm: JVM,
    worker_jvms: List[JVM],
    cluster=None,
    **runtime_kwargs,
) -> List[SkywayRuntime]:
    """Attach Skyway runtimes to a driver and its workers.

    The driver selection is the user's API call in the paper ("for Spark,
    one can naturally specify the JVM running the Spark driver as the
    Skyway driver").  Returns the runtimes, driver first.
    """
    registry = DriverRegistry()
    driver_node = None
    nodes_by_jvm = {}
    if cluster is not None:
        for node in cluster.nodes():
            nodes_by_jvm[id(node.jvm)] = node
        driver_node = nodes_by_jvm.get(id(driver_jvm))
    runtimes = [
        SkywayRuntime(
            driver_jvm, registry, is_driver=True,
            cluster=cluster, node=driver_node, driver_node=driver_node,
            **runtime_kwargs,
        )
    ]
    for jvm in worker_jvms:
        runtimes.append(
            SkywayRuntime(
                jvm, registry, is_driver=False,
                cluster=cluster,
                node=nodes_by_jvm.get(id(jvm)),
                driver_node=driver_node,
                **runtime_kwargs,
            )
        )
    return runtimes
