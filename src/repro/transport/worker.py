"""The Skyway worker process: a socket server around a receiving runtime.

One worker = one spawned process = one JVM + Skyway runtime, listening on a
loopback TCP port.  The protocol per connection:

1. HELLO / HELLO_ACK — registry convergence (:mod:`registry_sync`).  A
   driver may re-HELLO on the same connection after loading new classes;
   the worker treats any HELLO as a fresh merge.
2. CALL frames carrying a JSON ``{"op": ...}``; data-bearing ops are
   followed by DATA chunks + TRAILER.  Each op answers RESULT or ERROR.
3. BYE ends the connection; the worker keeps accepting new ones (this is
   what lets a driver's retry/backoff recover from a killed connection).

Connections are served one thread each, so a driver can hold N streams
open at once (the multi-stream parallel send).  Everything that mutates
shared state — the heap, the class loader, the registry, placement — runs
under one server-wide lock taken per *chunk*, not per stream: socket reads
stay concurrent while heap mutation stays serialized, so N arriving
streams interleave placement the way the paper's per-thread output buffers
interleave on the send side (§4.2).

Any exception inside an op is reported as one ERROR frame naming the
exception type, then the connection closes — mid-stream state is
unrecoverable, a fresh connection is not.

Ops:

``ping``
    Echo, for liveness and handshake tests.
``recv_graph``
    Receive one Skyway object stream into this heap (placement overlapping
    arrival), absolutize, and reply with root count, object/byte tallies
    and the position-independent :func:`~repro.transport.digest.graph_digest`.
    ``retain=false`` (default) unpins the roots after digesting so
    repeated benchmark sends don't exhaust the worker heap.
``recv_blob``
    Receive an opaque byte blob (the Spark broadcast path) and reply with
    its size and CRC.
``recv_epoch``
    Receive one FULL/DELTA epoch frame for a delta-capable graph channel:
    an EPOCH frame announces (channel id, epoch, kind), DATA chunks carry
    the delta-wire frame, and the worker routes it through the runtime's
    :class:`~repro.delta.channel.DeltaReceiveEndpoint`.  A stale delta
    (worker restarted, state dropped, epoch gap) answers an ERROR frame
    naming ``DeltaStaleError`` — the cross-process NACK the sender reacts
    to by forcing its next epoch full.
``stats``
    Runtime + transport counters.
``shutdown``
    Acknowledge, then exit the accept loop.
"""

from __future__ import annotations

import dataclasses
import logging
import os
import socket
import threading
import time
import zlib
from typing import Dict, List, Optional, Set, Tuple

from repro import obs
from repro.cluster.errors import ClusterProtocolError, PeerGoneError
from repro.core.streams import IncrementalStreamDecoder
from repro.delta.channel import DeltaReceiveEndpoint, DeltaSendChannel
from repro.delta.wire import FRAME_DELTA, FRAME_FULL, DeltaFrame, parse_frame
from repro.transport import frames, registry_sync
from repro.transport.bootstrap import MB, bind_listener, build_runtime
from repro.transport.connection import FrameConnection
from repro.transport.digest import graph_digest, semantic_graph_digest
from repro.transport.errors import (
    RemoteWorkerError,
    TransportClosed,
    TransportError,
)
from repro.transport.metrics import TransportMetrics
from repro.transport.pipeline import pump_stream


#: The two worker front-ends.  ``async`` (the default) serves every
#: connection from one selector event loop (:mod:`repro.transport.aserve`)
#: and scales to thousands of concurrent channels; ``threads`` is the
#: original thread-per-connection server kept as the executable spec —
#: bytes, digests, and clock accounting are identical between the two.
SERVE_MODES = ("async", "threads")


@dataclasses.dataclass
class WorkerSpec:
    """Everything a spawned worker needs, in picklable form."""

    name: str
    classpath_factory: str  # "module:function" -> ClassPath
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; actual port reported back over the pipe
    read_timeout: float = 10.0
    young_bytes: int = 4 * MB
    old_bytes: int = 64 * MB
    #: Which front-end serves connections: ``"async"`` (one event loop) or
    #: ``"threads"`` (one thread per connection, the executable spec).
    serve_mode: str = "async"
    #: Listen backlog.  The async loop accepts thousands of near-
    #: simultaneous connects (B-FANIN opens them in a burst), so the
    #: default is far above ``bind_listener``'s conservative 8.
    listen_backlog: int = 128
    #: Fleet mode (repro.cluster): when set, the worker registers with the
    #: coordinator at this address as it comes up and heartbeats from a
    #: daemon thread until shutdown.
    coordinator_host: Optional[str] = None
    coordinator_port: int = 0
    #: Fleet mode: reject EPOCH frames whose channel id the coordinator
    #: (via ``admit_channel``) never told this worker to expect.  Channel
    #: id 0 is rejected unconditionally, strict or not.
    strict_channels: bool = False
    #: Telemetry plane (repro.obs.live): when true, the worker enables
    #: its flight recorder, observes per-epoch receive/apply latency into
    #: the metrics registry, and (in fleet mode) piggybacks metric deltas
    #: on every heartbeat.  Off = the zero-cost baseline the ≤3% overhead
    #: gate in the live smoke compares against.
    telemetry: bool = True


class _ConnPump:
    """Adapter giving ``SkywayObjectInputStream`` its ``transport.pump``."""

    def __init__(self, conn: FrameConnection) -> None:
        self._conn = conn
        self.stream_bytes = 0

    def pump(self, decoder) -> None:
        self.stream_bytes = pump_stream(self._conn, decoder)


class _LockedDecoder:
    """Serialize a concurrent receive at chunk granularity.

    Each connection thread reads its own socket, but every byte a decoder
    turns into heap mutation (segment placement, class loading, registry
    lookups) runs under the server-wide state lock.  Locking per chunk
    rather than per stream is what lets N parallel streams interleave
    placement — the receive half of the multi-stream send."""

    def __init__(self, decoder: IncrementalStreamDecoder,
                 lock: threading.Lock) -> None:
        self._decoder = decoder
        self._lock = lock

    def feed(self, chunk: bytes) -> None:
        with self._lock:
            self._decoder.feed(chunk)


class _BlobSink:
    """A trivial decoder standing in for the stream decoder: recv_blob
    pumps opaque bytes (e.g. Java-serializer broadcast payloads)."""

    def __init__(self) -> None:
        self.data = bytearray()

    def feed(self, chunk: bytes) -> None:
        self.data.extend(chunk)


class WorkerServer:
    """The in-process server object (runs inside the spawned worker)."""

    def __init__(self, spec: WorkerSpec) -> None:
        self.spec = spec
        self.runtime = build_runtime(
            spec.name, spec.classpath_factory,
            young_bytes=spec.young_bytes, old_bytes=spec.old_bytes,
        )
        self.metrics = TransportMetrics()
        self._running = True
        self.graphs_received = 0
        self.epochs_received = 0
        #: One lock guards every mutation of shared runtime state (heap,
        #: loader, registry, placement, tallies).  Connection threads take
        #: it per chunk, so streams interleave without interleaving *inside*
        #: an object placement.
        self._state_lock = threading.Lock()
        self._conn_threads: List[threading.Thread] = []
        #: Channel ids the coordinator admitted on this worker
        #: (``admit_channel``); consulted by recv_epoch in strict mode.
        self._admitted: Set[int] = set()
        #: Named blob store (``put_blob`` / ``send_blob_peer``): the
        #: fleet's shuffle-bucket mirror.
        self._blobs: Dict[str, bytes] = {}
        #: Peer mode: cached connections and epoch channels *to* other
        #: workers, keyed so a coordinator re-assignment (fresh channel id
        #: after a peer restart) naturally opens a fresh channel.
        self._peer_clients: Dict[Tuple[str, str, int], object] = {}
        self._peer_channels: Dict[Tuple[str, int], DeltaSendChannel] = {}
        self.peer_sends = 0
        #: Set by worker_main in fleet mode; carries the generation the
        #: coordinator assigned this incarnation.
        self.membership = None
        #: Structured, attributable diagnostics: one logger per worker id,
        #: level picked up from REPRO_LOG_LEVEL in :func:`worker_main`.
        self.log = logging.getLogger(f"repro.worker.{spec.name}")

    # -- op handlers -------------------------------------------------------

    def _op_ping(self, conn: FrameConnection, call: dict) -> dict:
        return {"op": "ping", "echo": call.get("echo"),
                "worker": self.spec.name}

    def _op_recv_graph(self, conn: FrameConnection, call: dict) -> dict:
        lock = self._state_lock
        decoder = self.start_recv_graph()
        pump = _ConnPump(conn)
        with self.metrics.phase("receive"), \
                obs.span("recv.receive", clock=self.runtime.jvm.clock):
            pump.pump(_LockedDecoder(decoder, lock))
        return self.complete_recv_graph(
            decoder, pump.stream_bytes, retain=bool(call.get("retain", False))
        )

    def start_recv_graph(self) -> IncrementalStreamDecoder:
        """A fresh stream decoder for one ``recv_graph``; every ``feed``
        must run under the state lock (``_LockedDecoder``) unless the
        caller is the single-threaded event loop."""
        with self._state_lock:
            return IncrementalStreamDecoder(self.runtime)

    def complete_recv_graph(self, decoder: IncrementalStreamDecoder,
                            stream_bytes: int, retain: bool) -> dict:
        """Everything after the last chunk: finish placement, digest,
        tally, unpin.  Shared by the threaded and async front-ends so
        results (and heap effects) are identical."""
        with self._state_lock:
            roots = decoder.finish()
            receiver = decoder.receiver
            token = self.runtime.track_input_buffer(receiver, roots)
            with self.metrics.phase("digest"), obs.span("recv.digest"):
                digest = graph_digest(self.runtime.jvm, receiver)
            result = {
                "op": "recv_graph",
                "roots": len(roots),
                "objects": receiver.objects_received,
                "logical_bytes": receiver.buffer.logical_size,
                "stream_bytes": stream_bytes,
                "digest": digest,
                "retained": retain,
            }
            self.graphs_received += 1
            if not retain:
                # unpin roots; GC reclaims on future pressure
                self.runtime.free_input_buffer(token)
        return result

    def _op_recv_blob(self, conn: FrameConnection, call: dict) -> dict:
        sink = _BlobSink()
        with self.metrics.phase("receive"), obs.span("recv.receive"):
            pump_stream(conn, sink)
        return self.complete_recv_blob(bytes(sink.data))

    def complete_recv_blob(self, data: bytes) -> dict:
        return {
            "op": "recv_blob",
            "bytes": len(data),
            "crc32": zlib.crc32(data),
        }

    def _check_channel_id(self, channel_id: int) -> None:
        """The mis-route guard: a typed rejection beats a silent placement
        into the wrong channel state.  Raised *before* any stream byte is
        pumped, so nothing lands on this heap."""
        if channel_id == 0:
            raise ClusterProtocolError(
                "channel id 0 is reserved coordinator-wide; an EPOCH frame "
                "naming it can only be a corrupted or misrouted header"
            )
        if self.spec.strict_channels and channel_id not in self._admitted:
            raise ClusterProtocolError(
                f"EPOCH frame names channel {channel_id}, which the "
                f"coordinator never admitted on worker {self.spec.name!r}"
            )

    def _op_recv_epoch(self, conn: FrameConnection, call: dict) -> dict:
        header = frames.decode_epoch_header(
            conn.expect_frame(frames.EPOCH)
        )
        channel_id, epoch, kind = header
        self._check_channel_id(channel_id)
        sink = _BlobSink()
        started = time.monotonic()
        with self.metrics.phase("receive"), \
                obs.span("recv.receive", channel=channel_id, epoch=epoch):
            stream_bytes = pump_stream(conn, sink)
        return self.complete_recv_epoch(
            channel_id, epoch, kind, bytes(sink.data), stream_bytes,
            digest=call.get("digest", True),
            receive_seconds=time.monotonic() - started,
        )

    def observe_epoch(self, channel_id: int, stream_bytes: int,
                      receive_seconds: Optional[float],
                      apply_seconds: float) -> None:
        """The telemetry plane's per-epoch observation point (shared by
        the threaded op and the async loop).  ``receive_seconds`` covers
        EPOCH-header-to-last-chunk *as this worker saw it arrive* — a
        paced or congested wire stretches it, which is exactly the series
        the coordinator's straggler rule reads."""
        if not self.spec.telemetry:
            return
        reg = obs.registry()
        reg.counter("worker.epochs")
        reg.counter("worker.epoch_bytes", stream_bytes)
        reg.observe("worker.epoch_apply_seconds", apply_seconds)
        if receive_seconds is not None:
            reg.observe("worker.epoch_receive_seconds", receive_seconds)
        obs.record("epoch", channel=channel_id, bytes=stream_bytes,
                   recv_s=round(receive_seconds or 0.0, 6),
                   apply_s=round(apply_seconds, 6))

    def complete_recv_epoch(self, channel_id: int, epoch: int, kind: int,
                            data: bytes, stream_bytes: int,
                            digest: bool = True,
                            receive_seconds: Optional[float] = None) -> dict:
        """Apply one reassembled epoch frame: header cross-check, delta
        endpoint routing, digest.  Shared by the threaded op (after
        ``pump_stream``) and the async loop (after mux reassembly); a
        :class:`DeltaStaleError` propagates to the caller, which turns it
        into the NACK the sender reacts to."""
        apply_started = time.monotonic()
        with self._state_lock:
            frame = parse_frame(data)
            actual_kind = (FRAME_DELTA if isinstance(frame, DeltaFrame)
                           else FRAME_FULL)
            if (frame.channel_id, frame.epoch, actual_kind) \
                    != (channel_id, epoch, kind):
                raise TransportError(
                    f"EPOCH header announced channel {channel_id} epoch "
                    f"{epoch} kind {kind:#x}, frame carries channel "
                    f"{frame.channel_id} epoch {frame.epoch} kind "
                    f"{actual_kind:#x}"
                )
            endpoint = DeltaReceiveEndpoint.for_runtime(self.runtime)
            # DeltaStaleError propagates to the op dispatcher, which turns
            # it into the ERROR frame the driver reads as a NACK.
            roots = endpoint.receive(data)
            result = {
                "op": "recv_epoch",
                "channel_id": channel_id,
                "epoch": epoch,
                "kind": "delta" if actual_kind == FRAME_DELTA else "full",
                "roots": len(roots),
                "root_addresses": list(roots),
                "stream_bytes": stream_bytes,
            }
            if digest:
                with self.metrics.phase("digest"), obs.span("recv.digest"):
                    result["digest"] = semantic_graph_digest(
                        self.runtime.jvm, roots
                    )
            self.epochs_received += 1
        self.observe_epoch(channel_id, stream_bytes, receive_seconds,
                           time.monotonic() - apply_started)
        return result

    # -- fleet ops (repro.cluster) -----------------------------------------

    def _op_admit_channel(self, conn: FrameConnection, call: dict) -> dict:
        channel_id = int(call.get("channel_id", 0))
        if channel_id == 0:
            raise ClusterProtocolError(
                "cannot admit channel id 0: it is reserved coordinator-wide"
            )
        with self._state_lock:
            self._admitted.add(channel_id)
        return {"op": "admit_channel", "channel_id": channel_id,
                "admitted": len(self._admitted)}

    def _op_put_blob(self, conn: FrameConnection, call: dict) -> dict:
        key = call.get("key")
        if not key:
            raise ClusterProtocolError("put_blob requires a non-empty key")
        sink = _BlobSink()
        with self.metrics.phase("receive"), obs.span("recv.receive"):
            pump_stream(conn, sink)
        return self.complete_put_blob(key, bytes(sink.data))

    def complete_put_blob(self, key: str, data: bytes) -> dict:
        with self._state_lock:
            self._blobs[key] = data
        return {"op": "put_blob", "key": key, "bytes": len(data),
                "crc32": zlib.crc32(data)}

    def _peer_client(self, peer: str, host: str, port: int):
        """A cached connection to another fleet worker (peer mode).  A
        peer that cannot be reached surfaces as :class:`PeerGoneError` —
        the typed signal the fleet reports to the coordinator."""
        from repro.transport.client import WorkerClient  # worker<->client cycle

        key = (peer, host, port)
        client = self._peer_clients.get(key)
        if client is None:
            try:
                client = WorkerClient(
                    self.runtime, host, port,
                    node_name=self.spec.name,
                    connect_attempts=3,
                    read_timeout=self.spec.read_timeout,
                ).connect()
            except TransportError as exc:
                raise PeerGoneError(
                    peer, f"cannot connect for a peer send: {exc}"
                ) from exc
            self._peer_clients[key] = client
        return client

    def _drop_peer(self, peer: str) -> None:
        """Forget every cached connection/channel to a failed peer; the
        next send (after the coordinator hands out a fresh placement)
        starts from scratch."""
        for key in [k for k in self._peer_clients if k[0] == peer]:
            client = self._peer_clients.pop(key)
            try:
                client.close()
            except Exception:  # noqa: BLE001 - peer is gone, close is courtesy
                pass
        for key in [k for k in self._peer_channels if k[0] == peer]:
            self._peer_channels.pop(key).close()

    def _op_send_blob_peer(self, conn: FrameConnection, call: dict) -> dict:
        key = call.get("key")
        peer = call.get("peer", "?")
        with self._state_lock:
            data = self._blobs.get(key)
        if data is None:
            raise ClusterProtocolError(
                f"worker {self.spec.name!r} holds no blob under key {key!r}"
            )
        with obs.span("cluster.peer_blob", peer=peer, key=key,
                      bytes=len(data)):
            client = self._peer_client(
                peer, call.get("peer_host", "127.0.0.1"),
                int(call.get("peer_port", 0)),
            )
            try:
                result = client.send_blob(data)
            except TransportError as exc:
                self._drop_peer(peer)
                raise PeerGoneError(
                    peer, f"peer blob push failed: {exc}"
                ) from exc
        self.peer_sends += 1
        return {"op": "send_blob_peer", "key": key, "peer": peer,
                "bytes": len(data), "crc32": result["crc32"]}

    def _op_send_peer(self, conn: FrameConnection, call: dict) -> dict:
        """Peer mode: clone a graph rooted on *this* heap straight into
        another worker — the shuffle route that never bounces through the
        driver.  The state lock covers heap reads (digest + framing) but
        not the wire, so two workers mid-exchange in both directions can
        never deadlock on each other's receive paths."""
        peer = call.get("peer", "?")
        host = call.get("peer_host", "127.0.0.1")
        port = int(call.get("peer_port", 0))
        channel_id = int(call.get("channel_id", 0))
        roots = [int(r) for r in call.get("roots", [])]
        if channel_id == 0:
            raise ClusterProtocolError(
                "send_peer requires a coordinator-assigned channel id"
            )
        if not roots:
            raise ClusterProtocolError(
                "send_peer requires at least one root"
            )
        with obs.span("cluster.peer_send", peer=peer, channel=channel_id,
                      roots=len(roots)) as sp:
            client = self._peer_client(peer, host, port)
            with self._state_lock:
                chan_key = (peer, channel_id)
                channel = self._peer_channels.get(chan_key)
                if channel is None:
                    channel = DeltaSendChannel(
                        self.runtime, destination=f"peer:{peer}",
                        channel_id=channel_id,
                    )
                    self._peer_channels[chan_key] = channel
                with self.metrics.phase("digest"), obs.span("recv.digest"):
                    sender_digest = semantic_graph_digest(
                        self.runtime.jvm, roots
                    )
                frame = channel.send(roots)
            nack = False
            try:
                try:
                    result = client.send_epoch(
                        frame, channel.channel_id, channel.epoch,
                    )
                except RemoteWorkerError as exc:
                    if exc.kind != "DeltaStaleError":
                        raise
                    # The peer dropped its channel state (restart, full
                    # GC); same NACK recovery as the driver-side channel:
                    # reconnect, force full, resend.
                    nack = True
                    client.close()
                    client.connect()
                    channel.force_full_next()
                    with self._state_lock:
                        frame = channel.send(roots)
                    result = client.send_epoch(
                        frame, channel.channel_id, channel.epoch,
                    )
            except RemoteWorkerError:
                raise  # the peer spoke: a typed op failure, not death
            except TransportError as exc:
                self._drop_peer(peer)
                raise PeerGoneError(
                    peer, f"peer send failed mid-transfer: {exc}"
                ) from exc
            decision = channel.last_decision
            sp.set(mode=decision.mode if decision else "?",
                   epoch=channel.epoch, nack=nack)
        self.peer_sends += 1
        return {
            "op": "send_peer",
            "peer": peer,
            "channel_id": channel.channel_id,
            "epoch": channel.epoch,
            "mode": decision.mode if decision else "?",
            "wire_bytes": len(frame),
            "roots": result.get("roots", 0),
            "sender_digest": sender_digest,
            "digest": result.get("digest"),
            "digest_match": result.get("digest") == sender_digest,
            "nack_recovered": nack,
        }

    def _op_stats(self, conn: FrameConnection, call: dict) -> dict:
        result = {
            "op": "stats",
            "worker": self.spec.name,
            "serve_mode": self.spec.serve_mode,
            "graphs_received": self.graphs_received,
            "epochs_received": self.epochs_received,
            "peer_sends": self.peer_sends,
            "blobs_stored": len(self._blobs),
            "channels_admitted": len(self._admitted),
            "generation": (self.membership.generation
                           if self.membership is not None else 0),
            "telemetry": self.spec.telemetry,
            "telemetry_sent": (getattr(self.membership, "telemetry_sent", 0)
                               if self.membership is not None else 0),
            "runtime": {
                k: v for k, v in self.runtime.stats().items()
                if isinstance(v, (int, str, bool))
            },
            "transport": self.metrics.as_dict(),
        }
        # The async front-end (aserve) hooks its loop counters in here so
        # one stats op covers both serve modes.
        aserve_stats = getattr(self, "aserve_stats", None)
        if aserve_stats is not None:
            result["aserve"] = aserve_stats()
        return result

    def _op_shutdown(self, conn: FrameConnection, call: dict) -> dict:
        self._running = False
        return {"op": "shutdown", "ok": True}

    _OPS = {
        "ping": _op_ping,
        "recv_graph": _op_recv_graph,
        "recv_blob": _op_recv_blob,
        "recv_epoch": _op_recv_epoch,
        "admit_channel": _op_admit_channel,
        "put_blob": _op_put_blob,
        "send_blob_peer": _op_send_blob_peer,
        "send_peer": _op_send_peer,
        "stats": _op_stats,
        "shutdown": _op_shutdown,
    }

    # -- connection loop ---------------------------------------------------

    def _handshake(self, conn: FrameConnection, payload: bytes) -> None:
        version, peer, driver_map = frames.decode_hello(payload)
        if version != frames.PROTOCOL_VERSION:
            raise TransportError(
                f"protocol version mismatch: peer {peer!r} speaks "
                f"v{version}, this worker v{frames.PROTOCOL_VERSION}"
            )
        with self._state_lock:
            extras = registry_sync.extra_names(
                self.runtime.view.snapshot(), driver_map
            )
            conn.send_frame(
                frames.HELLO_ACK,
                frames.encode_hello_ack(self.spec.name, extras),
            )
            merged = registry_sync.merge_registries(driver_map, extras)
            registry_sync.install_merged(self.runtime, merged)
        self.log.info(
            "handshake with %s: %d driver classes, %d worker extras",
            peer, len(driver_map), len(extras),
        )

    def serve_connection(self, conn: FrameConnection) -> None:
        """Run one connection to completion (BYE, EOF, or a fatal op
        error).  Op failures answer ERROR then end the connection."""
        trace_pending = False
        while self._running:
            try:
                ftype, payload = conn.recv_frame()
            except TransportClosed:
                return  # peer went away between calls; accept loop continues
            if ftype == frames.BYE:
                return
            try:
                if ftype == frames.HELLO:
                    self._handshake(conn, payload)
                    continue
                if ftype == frames.TRACE:
                    # Driver trace context for the next CALL: enable (or
                    # re-point) this worker's tracer and parent this
                    # thread's spans under the driver's current span.
                    trace_id, parent_span = frames.decode_trace(payload)
                    tracer = obs.enable(
                        process=f"worker:{self.spec.name}",
                        trace_id=trace_id or None,
                    )
                    tracer.adopt_remote(parent_span or None)
                    trace_pending = True
                    continue
                if ftype != frames.CALL:
                    raise TransportError(
                        f"protocol violation: unexpected "
                        f"{frames.frame_name(ftype)} frame between calls"
                    )
                call = frames.decode_json(payload, what="CALL")
                handler = self._OPS.get(call.get("op"))
                if handler is None:
                    raise TransportError(f"unknown op {call.get('op')!r}")
                self.log.debug("serving op %s", call.get("op"))
                if trace_pending:
                    result = self._traced_call(conn, call, handler)
                else:
                    result = handler(self, conn, call)
                conn.send_frame(frames.RESULT, frames.encode_json(result))
            except Exception as exc:  # noqa: BLE001 - reported as ERROR frame
                self.log.warning(
                    "op failed, answering ERROR: %s: %s",
                    type(exc).__name__, exc,
                )
                # Flight-recorder the failure (PeerGoneError, the
                # DeltaStaleError NACK, protocol rejections): the next
                # heartbeat ships it, so the coordinator holds this
                # worker's last moments even if the process dies now.
                obs.record("error", error=type(exc).__name__,
                           detail=str(exc)[:200])
                try:
                    conn.send_frame(
                        frames.ERROR,
                        frames.encode_error(type(exc).__name__, str(exc)),
                    )
                except TransportError:
                    pass
                return
            finally:
                if trace_pending and ftype == frames.CALL:
                    trace_pending = False
                    tracer = obs.get_tracer()
                    if tracer is not None:
                        tracer.clear_remote()

    def _traced_call(self, conn: FrameConnection, call: dict,
                     handler) -> dict:
        """Serve one op inside a ``worker.<op>`` span and ship this
        thread's spans back inside the RESULT under ``"trace"``."""
        tracer = obs.get_tracer()
        mark = tracer.mark()
        with tracer.span(f"worker.{call.get('op')}",
                         clock=self.runtime.jvm.clock):
            result = handler(self, conn, call)
        result["trace"] = tracer.export_payload(tracer.drain(mark))
        return result

    def _serve_thread(self, conn: FrameConnection) -> None:
        try:
            self.serve_connection(conn)
        finally:
            conn.close()

    def serve_forever(self, listener: socket.socket) -> None:
        """Accept loop: one daemon thread per connection, so N driver
        streams can be in flight at once.  Shutdown drains the accept
        loop, then joins whatever connections are still open."""
        listener.settimeout(0.25)  # poll so shutdown can exit the loop
        try:
            while self._running:
                try:
                    sock, _addr = listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    return
                conn = FrameConnection(
                    sock, read_timeout=self.spec.read_timeout,
                    metrics=self.metrics,
                )
                thread = threading.Thread(
                    target=self._serve_thread, args=(conn,),
                    name=f"skyway-conn-{len(self._conn_threads)}",
                    daemon=True,
                )
                self._conn_threads = [
                    t for t in self._conn_threads if t.is_alive()
                ]
                self._conn_threads.append(thread)
                thread.start()
        finally:
            for thread in self._conn_threads:
                thread.join(timeout=5.0)


def configure_worker_logging() -> None:
    """Structured logging for spawned workers: level from REPRO_LOG_LEVEL
    (default WARNING), records tagged with the per-worker logger name."""
    level_name = os.environ.get("REPRO_LOG_LEVEL", "WARNING").upper()
    level = getattr(logging, level_name, None)
    if not isinstance(level, int):
        level = logging.WARNING
    logging.basicConfig(
        level=level,
        format="%(asctime)s %(levelname)s %(name)s [pid %(process)d] "
               "%(message)s",
    )


def worker_main(spec: WorkerSpec, port_pipe) -> None:
    """Entry point of the spawned process.  Binds (with the bounded
    port-in-use retry — fleets spawn many workers on one host), reports
    the actual port through ``port_pipe``, registers with the coordinator
    when the spec names one, then serves until shutdown.

    ``spec.serve_mode`` picks the front-end: the selector event loop
    (``"async"``, one thread for every connection, heartbeats included) or
    the thread-per-connection server (``"threads"``, the executable spec,
    with the membership heartbeat on its own daemon thread).
    """
    configure_worker_logging()
    if spec.serve_mode not in SERVE_MODES:
        port_pipe.send(("error",
                        f"WorkerStartupError: unknown serve_mode "
                        f"{spec.serve_mode!r} (expected one of "
                        f"{'/'.join(SERVE_MODES)})"))
        port_pipe.close()
        return
    listener = None
    membership = None
    loop = None
    try:
        server = WorkerServer(spec)
        listener = bind_listener(spec.host, spec.port,
                                 backlog=spec.listen_backlog)
        port = listener.getsockname()[1]
        recorder = None
        if spec.telemetry:
            # Flight recorder on from the first op: even a worker that
            # dies before its first heartbeat records what it was doing.
            recorder = obs.enable_recorder()
            obs.registry().register_source(
                f"transport.{spec.name}", server.metrics.as_dict
            )
        if spec.serve_mode == "async":
            from repro.transport.aserve import AsyncWorkerServer

            loop = AsyncWorkerServer(server)
        if spec.coordinator_host:
            from repro.cluster.membership import WorkerMembership

            membership = WorkerMembership(
                spec.name, spec.host, port,
                spec.coordinator_host, spec.coordinator_port,
            )
            if spec.telemetry:
                from repro.obs.live import TelemetrySampler

                membership.attach_telemetry(TelemetrySampler(
                    obs.registry(), recorder=recorder,
                ))
            if loop is not None:
                # One process, one loop: register now (raises if the
                # coordinator is unreachable), then the event loop owns
                # the heartbeat cadence — no membership thread.
                membership.register()
                loop.attach_membership(membership)
            else:
                membership.start()  # raises if unreachable
            server.membership = membership
        server.log.info("listening on %s:%d (%s)",
                        spec.host, port, spec.serve_mode)
        port_pipe.send(("ok", port))
    except Exception as exc:  # noqa: BLE001 - parent re-raises as typed error
        try:
            port_pipe.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            if listener is not None:
                listener.close()
        return
    finally:
        port_pipe.close()
    try:
        if loop is not None:
            loop.serve_forever(listener)
        else:
            server.serve_forever(listener)
    finally:
        if membership is not None:
            membership.stop()
        listener.close()
