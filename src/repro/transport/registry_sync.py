"""Registry convergence across real process boundaries.

In the simulated cluster every :class:`RegistryView` shares one in-process
:class:`DriverRegistry`, so Algorithm 1's LOOKUP traffic is a method call.
Two *processes* have no shared driver: each boots its own runtime and
numbers its classes independently, so the same class name can carry
different tIDs on each side — fatal for a format whose klass words are
tIDs.

The HELLO/HELLO_ACK exchange fixes this deterministically:

1. the driver's HELLO carries its full ``{name -> tID}`` snapshot;
2. the worker replies HELLO_ACK with the (sorted) names it has loaded that
   the driver's snapshot lacks;
3. both sides independently compute the same merged mapping — driver
   assignments win verbatim, the worker's extra names get sequential IDs
   from ``max(driver IDs) + 1`` in sorted order — and install it,
   rewriting the tID in every loaded klass meta-object (WRITETID again).

No third message is needed: the merge is a pure function of the two
payloads, so agreement is by construction rather than by acknowledgement.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.runtime import SkywayRuntime
from repro.transport.errors import HandshakeError


def extra_names(local: Dict[str, int], remote: Dict[str, int]) -> List[str]:
    """The sorted class names present locally but absent from the peer's
    snapshot (the HELLO_ACK payload)."""
    return sorted(set(local) - set(remote))


def merge_registries(driver_map: Dict[str, int],
                     worker_extras: List[str]) -> Dict[str, int]:
    """The deterministic merge both sides compute after HELLO/HELLO_ACK."""
    merged = dict(driver_map)
    seen = len(set(driver_map.values()))
    if seen != len(driver_map):
        raise HandshakeError(
            "driver registry snapshot assigns one tID to multiple classes"
        )
    # tID 0 stays reserved as the "never stamped" sentinel even when the
    # driver's snapshot is empty (a fresh driver learning classes from a
    # seasoned worker would otherwise hand a real class the null tID).
    next_id = max(driver_map.values(), default=0) + 1
    for name in sorted(worker_extras):
        if name in merged:
            continue
        merged[name] = next_id
        next_id += 1
    return merged


def install_merged(runtime: SkywayRuntime, merged: Dict[str, int]) -> None:
    """Install the merged mapping into this process's registry *and*
    rewrite the tID of every loaded class (the klass words of any stream
    encoded after this point use the merged numbering)."""
    runtime.driver_registry.install_snapshot(merged)
    runtime.view.install_snapshot(merged)
    for klass in runtime.jvm.loader.loaded_classes():
        tid = merged.get(klass.name)
        if tid is None:
            raise HandshakeError(
                f"loaded class {klass.name!r} missing from merged registry"
            )
        klass.tid = tid
