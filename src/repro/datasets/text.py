"""Synthetic text corpus for WordCount: Zipf-distributed word frequencies,
matching natural-language shape (a few very hot keys, a long tail) so the
reduceByKey combiner behaves as it would on real text."""

from __future__ import annotations

import random
from typing import List

_SYLLABLES = [
    "da", "ta", "lo", "re", "mi", "ka", "shu", "fle", "spar", "ky",
    "way", "heap", "net", "ser", "de", "graph", "node", "map", "red", "uce",
]


def _vocabulary(size: int, rng: random.Random) -> List[str]:
    words = []
    for i in range(size):
        n = 1 + (i % 3)
        words.append("".join(rng.choice(_SYLLABLES) for _ in range(n)) + str(i % 97))
    return words


def generate_text_corpus(
    lines: int = 2000,
    words_per_line: int = 12,
    vocabulary_size: int = 800,
    seed: int = 7,
) -> List[str]:
    """Deterministic Zipfian text: line ``i`` holds ``words_per_line``
    samples from a rank-skewed vocabulary."""
    rng = random.Random(seed)
    vocab = _vocabulary(vocabulary_size, rng)
    weights = [1.0 / (rank + 1) for rank in range(vocabulary_size)]
    out = []
    for _ in range(lines):
        picked = rng.choices(vocab, weights=weights, k=words_per_line)
        out.append(" ".join(picked))
    return out
