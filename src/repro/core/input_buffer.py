"""Skyway input buffers (paper §3.2, §4.3).

Input buffers live **in the managed heap** ("so that data coming from a
remote node is directly written into the heap and can be used right away"),
allocated in the old generation, and span **linked chunks** — "a new chunk
can be created and linked to the old chunk when the old one runs out of
space", because the receiver does not know the incoming byte count up
front and large contiguous allocations fragment the heap.  An object never
spans two chunks; objects whose size exceeds the regular chunk size get a
dedicated oversized chunk.

Because each chunk is filled sequentially with whole objects, the mapping
from *logical* (sender buffer) addresses to *physical* heap addresses is a
short run table — the chunk arithmetic of §4.3: find the chunk ``i`` a
relative address falls in, take its offset within the chunk, and add the
chunk's start address.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import List, Optional

from repro.core.output_buffer import LOGICAL_BASE
from repro.heap.heap import ManagedHeap
from repro.heap.layout import OBJECT_ALIGNMENT, align_up


class InputBufferError(RuntimeError):
    pass


@dataclasses.dataclass
class Chunk:
    """One in-heap chunk: a contiguous run of received objects."""

    physical_start: int
    capacity: int
    logical_start: int
    filled: int = 0

    @property
    def logical_end(self) -> int:
        return self.logical_start + self.filled

    @property
    def free(self) -> int:
        return self.capacity - self.filled


class InputBuffer:
    """A per-(sender, stream) in-heap input buffer made of linked chunks."""

    def __init__(self, heap: ManagedHeap, chunk_size: int = 64 * 1024) -> None:
        if chunk_size < 256:
            raise ValueError("input-buffer chunk size too small")
        self.heap = heap
        self.chunk_size = chunk_size
        self.chunks: List[Chunk] = []
        #: Physical addresses of placed objects, in placement order.
        self.placed_objects: List[int] = []
        self._logical_cursor = LOGICAL_BASE
        self._starts_index: List[int] = []  # logical_start per chunk (bisect)
        self._last_chunk: Optional[Chunk] = None  # translate() locality cache
        self.total_bytes = 0
        self._frozen = False

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------

    def place(self, object_bytes: bytes) -> int:
        """Copy one received object into the buffer, returning its physical
        address.  The object's logical address is implied by arrival order
        (senders commit objects densely in logical space)."""
        if self._frozen:
            raise InputBufferError("buffer is frozen (stream already finished)")
        return self._place(object_bytes)

    def append(self, object_bytes: bytes) -> int:
        """Delta-epoch placement: append one NEW object to a *finished*
        buffer.  The buffer stays frozen — already-placed objects remain
        translatable throughout — and the logical cursor keeps growing, so
        sender and receiver agree on the offsets of appended objects."""
        if not self._frozen:
            raise InputBufferError(
                "delta append on a buffer that never finished its stream"
            )
        return self._place(object_bytes)

    def _place(self, object_bytes: bytes) -> int:
        size = align_up(len(object_bytes), OBJECT_ALIGNMENT)
        chunk = self._chunk_for(size)
        address = chunk.physical_start + chunk.filled
        self.heap.write_bytes(address, object_bytes)
        if size > len(object_bytes):
            pad = size - len(object_bytes)
            self.heap.write_bytes(address + len(object_bytes), bytes(pad))
        chunk.filled += size
        self._logical_cursor += size
        self.heap.register_object(address)
        self.placed_objects.append(address)
        self.total_bytes += size
        return address

    def _chunk_for(self, size: int) -> Chunk:
        if self.chunks and self.chunks[-1].free >= size:
            return self.chunks[-1]
        capacity = max(self.chunk_size, size)  # oversized objects
        physical = self.heap.reserve_raw_old(capacity)
        chunk = Chunk(
            physical_start=physical,
            capacity=capacity,
            logical_start=self._logical_cursor,
        )
        self.chunks.append(chunk)
        self._starts_index.append(chunk.logical_start)
        return chunk

    def freeze(self) -> None:
        """End of stream: no more placements; translation becomes legal."""
        self._frozen = True

    @property
    def is_frozen(self) -> bool:
        return self._frozen

    # ------------------------------------------------------------------
    # address translation (the §4.3 chunk arithmetic)
    # ------------------------------------------------------------------

    def translate(self, logical: int) -> int:
        """Absolute heap address for a relativized reference."""
        if not self._frozen:
            raise InputBufferError(
                "translation before end-of-stream (computation on a buffer "
                "being streamed into must block, paper §4.3)"
            )
        if logical < LOGICAL_BASE or logical >= self._logical_cursor:
            raise InputBufferError(
                f"relative address {logical:#x} outside buffer "
                f"[{LOGICAL_BASE:#x}, {self._logical_cursor:#x})"
            )
        # Absolutization scans objects in logical order, so consecutive
        # lookups overwhelmingly hit the same chunk — check it first.
        chunk = self._last_chunk
        if chunk is not None:
            offset = logical - chunk.logical_start
            if 0 <= offset < chunk.filled:
                return chunk.physical_start + offset
        i = bisect.bisect_right(self._starts_index, logical) - 1
        chunk = self.chunks[i]
        offset = logical - chunk.logical_start
        if offset >= chunk.filled:
            raise InputBufferError(
                f"relative address {logical:#x} falls in chunk {i} padding"
            )
        self._last_chunk = chunk
        return chunk.physical_start + offset

    @property
    def logical_size(self) -> int:
        return self._logical_cursor - LOGICAL_BASE

    def __len__(self) -> int:
        return len(self.placed_objects)
