"""Tests for input-buffer retention/free semantics (paper §3.2)."""

import pytest

from repro.core.runtime import attach_skyway
from repro.core.streams import SkywayObjectInputStream, SkywayObjectOutputStream
from repro.jvm.jvm import JVM

from tests.conftest import make_list, read_list


@pytest.fixture
def pair(classpath):
    src = JVM("src", classpath=classpath)
    dst = JVM("dst", classpath=classpath,
              young_bytes=64 * 1024, old_bytes=2 * 1024 * 1024)
    attach_skyway(src, [dst])
    return src, dst


def receive_one(src, dst, payload):
    src.skyway.shuffle_start()
    out = SkywayObjectOutputStream(src.skyway, destination="peer")
    out.write_object(make_list(src, payload))
    inp = SkywayObjectInputStream(dst.skyway)
    inp.accept(out.close())
    return inp


class TestRetention:
    def test_buffers_retained_until_freed(self, pair):
        src, dst = pair
        streams = [receive_one(src, dst, range(20)) for _ in range(3)]
        assert dst.skyway.retained_input_buffers == 3
        assert dst.skyway.retained_input_bytes() > 0
        streams[0].close()
        assert dst.skyway.retained_input_buffers == 2

    def test_retained_buffer_survives_full_gc(self, pair):
        src, dst = pair
        stream = receive_one(src, dst, list(range(30)))
        dst.gc.full()
        assert read_list(dst, stream.read_object()) == list(range(30))

    def test_freed_buffer_reclaimed_by_full_gc(self, pair):
        src, dst = pair
        stream = receive_one(src, dst, list(range(200)))
        dst.gc.full()
        retained = dst.heap.old.used
        stream.close()  # the explicit free API
        dst.gc.full()
        assert dst.heap.old.used < retained

    def test_double_free_is_safe(self, pair):
        src, dst = pair
        stream = receive_one(src, dst, [1, 2, 3])
        stream.close()
        stream.close()
        assert dst.skyway.retained_input_buffers == 0

    def test_many_rounds_without_free_accumulate(self, pair):
        """Spark caches all RDDs in memory, so Skyway keeps all input
        buffers (paper §3.2) — retention grows per round."""
        src, dst = pair
        for i in range(5):
            receive_one(src, dst, range(10))
        assert dst.skyway.retained_input_buffers == 5


class TestFreeErrors:
    def test_free_unknown_token_raises_key_error(self, pair):
        src, dst = pair
        with pytest.raises(KeyError):
            dst.skyway.free_input_buffer(10_000)

    def test_direct_double_free_raises_key_error(self, pair):
        """The stream's close() is idempotent, but the runtime API itself
        is strict: freeing a token twice is a caller bug."""
        src, dst = pair
        stream = receive_one(src, dst, [1, 2, 3])
        token = stream.buffer_token
        dst.skyway.free_input_buffer(token)
        with pytest.raises(KeyError):
            dst.skyway.free_input_buffer(token)

    def test_extend_roots_unknown_token_raises(self, pair):
        src, dst = pair
        with pytest.raises(KeyError):
            dst.skyway.extend_input_buffer_roots(10_000, [])
