"""SparkContext: the driver-side entry point of the RDD engine."""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Callable, Iterable, List, Optional, Sequence

from repro import obs
from repro.exchange.service import Exchange
from repro.jvm.marshal import from_heap, to_heap
from repro.net.cluster import Cluster, Node
from repro.serial.base import Serializer
from repro.serial.java_serializer import JavaSerializer
from repro.simtime import Category
from repro.spark.closure import ClosureShipper
from repro.spark.events import EventLog
from repro.spark.rdd import ParallelizedRDD, RDD
from repro.spark.shuffle import ShuffleService


@dataclasses.dataclass(frozen=True)
class SparkConfig:
    """Engine knobs (the relevant subset of spark.* configuration).

    The per-record op cost calibrates the computation share of runtime so
    that S/D lands near the paper's ~30% under Kryo/Java (Figure 3).
    """

    #: Simulated seconds of user computation per record per narrow op.
    record_op_cost: float = 2200e-9
    #: Simulated seconds per comparison in the sort-based shuffle.
    sort_compare_cost: float = 60e-9
    #: Serializer-independent per-record shuffle-write machinery
    #: (SerializationStream wrapper, batching, spill bookkeeping): charged
    #: to serialization for every serializer, which is why Spark-level S/D
    #: ratios between libraries are far more compressed than JSBS
    #: micro-benchmark ratios (paper Table 2 vs Figure 7).
    record_ser_overhead: float = 800e-9
    #: Serializer-independent per-record shuffle-read machinery.
    record_des_overhead: float = 350e-9
    #: Simulated sender threads per map task.  Each reduce bucket is
    #: written by thread (bucket mod threads), exercising Skyway's
    #: per-thread buffers and shared-object handling (paper §4.2).
    shuffle_threads: int = 1
    #: Map-side combine for reduceByKey (Spark default: on).
    map_side_combine: bool = True


@dataclasses.dataclass(frozen=True)
class Broadcast:
    """A broadcast variable: the driver's value, readable on any executor."""

    value: Any
    wire_bytes: int
    #: Real fleet workers the payload also landed on (0 without a fleet).
    fleet_delivered: int = 0


class SparkContext:
    """The driver program's handle on the cluster.

    ``serializer`` is the *data* serializer (``spark.serializer``); closures
    always use the Java serializer, as in the paper's experimental setup.
    """

    _id_counter = itertools.count()

    def __init__(
        self,
        cluster: Cluster,
        serializer: Serializer,
        default_parallelism: Optional[int] = None,
        config: Optional[SparkConfig] = None,
        exchange: Optional[Exchange] = None,
        fleet=None,
    ) -> None:
        self.cluster = cluster
        self.serializer = serializer
        #: The data-movement substrate.  Default: the in-process loopback
        #: exchange over the simulated wire; pass
        #: ``Exchange.socket(cluster, clients)`` to move broadcast blobs,
        #: epochs and parallel streams through real worker processes.
        self.exchange = (exchange if exchange is not None
                         else Exchange.loopback(cluster))
        #: The N-node fabric seam (:class:`repro.cluster.fleet.Fleet`).
        #: When set, broadcast payloads fan out to every registered fleet
        #: worker and remote shuffle fetches route peer-to-peer between
        #: fleet workers instead of bouncing through the driver.
        self.fleet = fleet
        self._fleet_names: Optional[List[str]] = None
        self.config = config if config is not None else SparkConfig()
        self.default_parallelism = (
            default_parallelism
            if default_parallelism is not None
            else 2 * len(cluster.workers)
        )
        self.app_id = next(self._id_counter)
        self._rdd_ids = itertools.count()
        self.shuffle = ShuffleService(self)
        self.closures = ClosureShipper(self)
        self.events = EventLog()
        #: (stage, partition) pairs executed, for test introspection.
        self.tasks_run = 0
        # The engine's event ledger feeds the obs snapshot; app_id keys
        # the source so concurrent contexts don't collide.
        obs.registry().register_source(
            f"spark.events.app{self.app_id}", self.events.as_dicts
        )

    # -- RDD creation -----------------------------------------------------------

    def parallelize(
        self, data: Iterable[Any], num_partitions: Optional[int] = None
    ) -> RDD:
        items = list(data)
        n = num_partitions if num_partitions is not None else self.default_parallelism
        n = max(1, min(n, max(1, len(items))))
        return ParallelizedRDD(self, items, n)

    def text_file(self, lines: Sequence[str], num_partitions: Optional[int] = None) -> RDD:
        """The moral equivalent of ``sc.textFile``: a pre-read line list."""
        return self.parallelize(list(lines), num_partitions)

    # -- infrastructure used by RDDs -----------------------------------------------

    def next_rdd_id(self) -> int:
        return next(self._rdd_ids)

    def broadcast(self, value: Any) -> "Broadcast":
        """Ship a read-only value to every executor once (Spark broadcast
        variables travel through the closure/JavaSerializer path)."""
        serializer = JavaSerializer()
        driver = self.cluster.driver
        with obs.span("spark.broadcast",
                      clock=driver.clock, app=self.app_id) as sp:
            addr = to_heap(driver.jvm, value)
            with obs.span("send.serialize", clock=driver.clock), \
                    driver.clock.phase(Category.SERIALIZATION):
                data = serializer.serialize(driver.jvm, addr)
            sp.set(wire_bytes=len(data), workers=len(self.cluster.workers))
            for worker in self.cluster.workers:
                self.exchange.transfer_blob(driver, worker, data)
                with obs.span("recv.deserialize", clock=worker.clock,
                              worker=worker.name), \
                        worker.clock.phase(Category.DESERIALIZATION):
                    reader = serializer.new_reader(worker.jvm, data)
                    received = reader.read_object()
                    local = from_heap(worker.jvm, received)
                    reader.close()
            fleet_delivered = 0
            if self.fleet is not None:
                # The fabric seam: the same payload lands on every live
                # fleet worker process; a dead peer never fails the
                # broadcast (survivors complete, casualties are logged).
                fleet_result = self.fleet.broadcast_blob(data)
                fleet_delivered = fleet_result.delivered
                sp.set(fleet_delivered=fleet_delivered,
                       fleet_failed=len(fleet_result.failures))
                self.events.emit(
                    "fleet_broadcast", bytes=len(data),
                    delivered=fleet_delivered,
                    failed=sorted(fleet_result.failures),
                )
        return Broadcast(value, len(data), fleet_delivered)

    def send(self, roots, policy=None, workers=None, requested=None):
        """Ship driver-heap object graphs to the workers, mode per the
        policy plane: each ``push()`` plans every worker's epoch (full,
        delta, kernel traversal, parallel streams, digest) from that
        channel's live signals — no per-call mode flags.  ``policy``
        accepts a name (``"adaptive"``, ``"crossover"``, ``"full"``,
        ``"delta"``), a :class:`~repro.policy.policies.DecisionTable`, or
        a shared :class:`~repro.policy.engine.PolicyEngine`; default
        adaptive.  Returns a :class:`~repro.spark.send.PolicySend`."""
        from repro.spark.send import PolicySend

        return PolicySend(
            self.cluster, roots, policy=policy, exchange=self.exchange,
            workers=workers, requested=requested,
        )

    def delta_broadcast(self, root: int, policy=None):
        """Deprecated spelling of :meth:`send` with the legacy
        mutation-crossover default (see
        :mod:`repro.spark.broadcast_delta`)."""
        from repro.policy.shims import warn_deprecated
        from repro.spark.broadcast_delta import DeltaHeapBroadcast

        warn_deprecated("SparkContext.delta_broadcast()")
        return DeltaHeapBroadcast(
            self.cluster, root, policy=policy, exchange=self.exchange
        )

    def parallel_send(
        self,
        worker_name: str,
        roots: Sequence[int],
        streams: Optional[int] = None,
        retain: bool = False,
        **knobs,
    ):
        """Deprecated: the policy plane picks stream counts now (a
        ``parallel-N`` plan from :meth:`send` routes here by itself).
        Still ships driver-heap roots to one worker over N parallel
        Skyway streams (paper §4.2); ``streams`` defaults to
        ``config.shuffle_threads``.  Returns a
        :class:`repro.transport.parallel.ParallelSendReport` on either
        substrate.
        """
        from repro.policy.shims import warn_deprecated

        warn_deprecated("SparkContext.parallel_send()")
        n = streams if streams is not None else max(1, self.config.shuffle_threads)
        return self.exchange.parallel_send(
            worker_name, roots, streams=n, retain=retain, **knobs
        )

    def node_for_partition(self, partition: int) -> Node:
        workers = self.cluster.workers
        return workers[partition % len(workers)]

    def fleet_worker_for(self, node: Node) -> Optional[str]:
        """The fleet worker standing in for a simulated node (round-robin
        by worker index), or None when no fleet is attached."""
        if self.fleet is None:
            return None
        if self._fleet_names is None:
            self._fleet_names = sorted(
                record["name"] for record in self.fleet.workers()
            )
        if not self._fleet_names:
            return None
        workers = self.cluster.workers
        try:
            index = workers.index(node)
        except ValueError:  # the driver node has no fleet twin
            return None
        return self._fleet_names[index % len(self._fleet_names)]

    def charge_compute(self, node: Node, records: int, ops: int = 1) -> None:
        node.clock.charge(records * ops * self.config.record_op_cost)
