"""Error-path tests for the Skyway receive side."""

import pytest

from repro.core.receiver import ObjectGraphReceiver, ReceiveError
from repro.core.runtime import attach_skyway
from repro.core.streams import SkywayObjectInputStream, SkywayObjectOutputStream
from repro.core.input_buffer import InputBuffer, InputBufferError
from repro.core.output_buffer import LOGICAL_BASE
from repro.jvm.jvm import JVM

from tests.conftest import make_date


@pytest.fixture
def pair(classpath):
    src = JVM("err-src", classpath=classpath)
    dst = JVM("err-dst", classpath=classpath)
    attach_skyway(src, [dst])
    return src, dst


def sent_segments(src, roots):
    src.skyway.shuffle_start()
    sender = src.skyway.new_sender("p", fresh_buffer=True)
    for root in roots:
        sender.write_object(root)
    sender.buffer.flush()
    return sender.buffer.drain_segments(), sender.top_marks


class TestReceiverErrors:
    def test_truncated_header(self, pair):
        src, dst = pair
        segments, _ = sent_segments(src, [make_date(src, 1, 1, 1)])
        receiver = dst.skyway.new_receiver()
        with pytest.raises(ReceiveError, match="truncated"):
            receiver.feed(b"".join(segments)[:10])

    def test_object_overruns_segment(self, pair):
        src, dst = pair
        segments, _ = sent_segments(src, [make_date(src, 1, 1, 1)])
        data = b"".join(segments)
        receiver = dst.skyway.new_receiver()
        with pytest.raises(ReceiveError, match="overruns"):
            receiver.feed(data[:-16])

    def test_unknown_tid_rejected(self, pair):
        src, dst = pair
        segments, marks = sent_segments(src, [make_date(src, 1, 1, 1)])
        data = bytearray(b"".join(segments))
        data[8:16] = (10**6).to_bytes(8, "little")  # garbage tID
        receiver = dst.skyway.new_receiver()
        with pytest.raises(Exception):
            receiver.feed(bytes(data))

    def test_feed_after_finish(self, pair):
        src, dst = pair
        segments, marks = sent_segments(src, [make_date(src, 1, 1, 1)])
        receiver = dst.skyway.new_receiver()
        for seg in segments:
            receiver.feed(seg)
        receiver.finish(marks)
        with pytest.raises(ReceiveError):
            receiver.feed(segments[0])

    def test_double_finish(self, pair):
        src, dst = pair
        segments, marks = sent_segments(src, [make_date(src, 1, 1, 1)])
        receiver = dst.skyway.new_receiver()
        for seg in segments:
            receiver.feed(seg)
        receiver.finish(marks)
        with pytest.raises(ReceiveError):
            receiver.finish(marks)

    def test_bad_top_mark(self, pair):
        src, dst = pair
        segments, _ = sent_segments(src, [make_date(src, 1, 1, 1)])
        receiver = dst.skyway.new_receiver()
        for seg in segments:
            receiver.feed(seg)
        with pytest.raises(ReceiveError, match="top-mark"):
            receiver.finish([999_999])


class TestInputBufferErrors:
    def test_translate_before_freeze(self, jvm):
        buffer = InputBuffer(jvm.heap)
        with pytest.raises(InputBufferError, match="streamed"):
            buffer.translate(LOGICAL_BASE)

    def test_translate_out_of_range(self, jvm):
        buffer = InputBuffer(jvm.heap)
        buffer.freeze()
        with pytest.raises(InputBufferError, match="outside"):
            buffer.translate(LOGICAL_BASE + 4096)

    def test_place_after_freeze(self, jvm):
        buffer = InputBuffer(jvm.heap)
        buffer.freeze()
        with pytest.raises(InputBufferError, match="frozen"):
            buffer.place(b"\x00" * 32)

    def test_tiny_chunk_size_rejected(self, jvm):
        with pytest.raises(ValueError):
            InputBuffer(jvm.heap, chunk_size=16)


class TestDriverRestart:
    def test_fresh_registry_after_restart_is_consistent(self, classpath):
        """Fault tolerance is the application's job (paper §4.1): after a
        crash the whole system restarts, including the Skyway driver; the
        fresh registry renumbers classes consistently cluster-wide."""
        src1 = JVM("s1", classpath=classpath)
        dst1 = JVM("d1", classpath=classpath)
        attach_skyway(src1, [dst1])
        tid_before = src1.loader.load("Date").tid

        # "Restart": new JVMs, new driver registry.
        src2 = JVM("s2", classpath=classpath)
        dst2 = JVM("d2", classpath=classpath)
        attach_skyway(src2, [dst2])
        out = SkywayObjectOutputStream(src2.skyway, destination="p")
        out.write_object(make_date(src2, 7, 8, 9))
        inp = SkywayObjectInputStream(dst2.skyway)
        inp.accept(out.close())
        received = inp.read_object()
        assert dst2.klass_of(received).name == "Date"
        # tIDs within the new session are consistent sender/receiver.
        assert src2.loader.load("Date").tid == dst2.loader.load("Date").tid
        assert tid_before is not None
