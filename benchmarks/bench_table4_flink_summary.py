"""E-T4 — Table 4: Flink summary, Skyway normalized to the built-in
serializer (paper: overall 0.81, ser 0.77, des 0.75, size 1.68)."""

from repro.bench.flink_experiments import run_figure8b, summarize_table4
from repro.bench.report import format_normalized_table, geometric_mean

from conftest import bench_scale, publish


def test_table4_flink_summary(benchmark):
    micro_scale = bench_scale(0.4)

    results = benchmark.pedantic(
        lambda: run_figure8b(micro_scale=micro_scale), rounds=1, iterations=1
    )

    summary = summarize_table4(results)
    report = format_normalized_table(
        summary,
        "Table 4 — Flink summary normalized to the built-in serializer\n"
        "paper geomeans: 0.81 / 0.77 / 0.96 / 0.75 / 0.61 / 1.68",
    )
    publish("table4_flink_summary", report)

    overall = geometric_mean([n["overall"] for n in summary["Skyway"]])
    des = geometric_mean([n["des"] for n in summary["Skyway"]])
    size = geometric_mean([n["size"] for n in summary["Skyway"]])
    assert overall < 1.0   # Skyway improves Flink overall (paper: 19%)
    assert des < 0.8       # the deserialization savings drive it
    assert size > 1.2      # at the cost of more bytes (paper: +68%)
    benchmark.extra_info["overall_gm"] = round(overall, 3)
