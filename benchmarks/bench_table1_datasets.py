"""E-T1 — Table 1: the four input graphs (paper sizes vs generated)."""

from repro.bench.report import format_table1
from repro.datasets import table1_rows

from conftest import bench_scale, publish


def test_table1_datasets(benchmark):
    scale = bench_scale(0.2)

    rows = benchmark.pedantic(lambda: table1_rows(scale=scale),
                              rounds=1, iterations=1)

    report = format_table1(rows)
    publish("table1_datasets", report)

    # Shape assertions: relative sizes match the paper's ordering.
    sizes = {r["graph"]: r["generated_edges"] for r in rows}
    assert sizes["LiveJournal"] < sizes["Orkut"]
    assert sizes["Orkut"] < sizes["UK-2005"] < sizes["Twitter-2010"]
    benchmark.extra_info["graphs"] = {k: int(v) for k, v in sizes.items()}
