"""repro.transport — a real socket transport for Skyway streams.

The simulated cluster (:mod:`repro.net.cluster`) *models* the wire; this
package *is* one: length-prefixed CRC-checked frames over loopback TCP,
multi-process workers (``multiprocessing.spawn`` — each its own heap, like
each its own JVM), a registry-converging HELLO handshake, and a pipelined
chunk sender that overlaps graph traversal with socket I/O in measured
wall-clock time — the paper's §4.2 streaming claim, made literal.

Entry points:

* :class:`WorkerHandle` / :class:`WorkerSpec` — spawn and reap workers;
* :class:`WorkerClient` — connect, handshake, ``send_graph``/``send_blob``;
* :class:`ChunkPipeline` — the ``transport=`` seam for
  :class:`~repro.core.streams.SkywayObjectOutputStream`;
* :class:`TransportMetrics` — measured bytes/chunks/stalls/phases,
  reported alongside the simulated clock's categories;
* the typed error taxonomy in :mod:`repro.transport.errors`.
"""

from repro.transport.aserve import (
    AsyncWorkerServer,
    LocalAsyncWorker,
    MuxEpochClient,
)
from repro.transport.client import WorkerClient, WorkerHandle
from repro.transport.connection import FrameConnection, connect_with_retry
from repro.transport.digest import graph_digest, semantic_graph_digest
from repro.transport.errors import (
    FrameCorruptionError,
    HandshakeError,
    RemoteWorkerError,
    TransportClosed,
    TransportError,
    TransportTimeout,
    WorkerStartupError,
)
from repro.transport.metrics import TransportMetrics
from repro.transport.pipeline import (
    DEFAULT_CHUNK_BYTES,
    DEFAULT_QUEUE_CHUNKS,
    ChunkPipeline,
    pump_stream,
)
from repro.transport.worker import (
    SERVE_MODES,
    WorkerServer,
    WorkerSpec,
    worker_main,
)

__all__ = [
    "AsyncWorkerServer",
    "ChunkPipeline",
    "DEFAULT_CHUNK_BYTES",
    "DEFAULT_QUEUE_CHUNKS",
    "FrameConnection",
    "FrameCorruptionError",
    "HandshakeError",
    "LocalAsyncWorker",
    "MuxEpochClient",
    "RemoteWorkerError",
    "SERVE_MODES",
    "TransportClosed",
    "TransportError",
    "TransportMetrics",
    "TransportTimeout",
    "WorkerClient",
    "WorkerHandle",
    "WorkerServer",
    "WorkerSpec",
    "WorkerStartupError",
    "connect_with_retry",
    "graph_digest",
    "pump_stream",
    "semantic_graph_digest",
    "worker_main",
]
