"""B-FLEET — the N-node fabric: coordinator, worker fleets, p2p shuffle.

Per fleet size (2/4/8 workers behind one coordinator): a driver graph is
broadcast twice (FULL bootstrap, then a delta epoch) with every worker's
semantic digest agreeing; every ordered worker pair ships the graph
peer-to-peer over a coordinator-assigned channel (sender and receiver
digests must match per transfer); and the failure drill SIGKILLs one
worker mid-run — survivors complete with the casualty typed as
``PeerGoneError``, and after a restart the re-HELLO'd worker resyncs with
a forced FULL while the survivors stay on deltas.
"""

from repro.bench.fleet_experiments import (
    fleet_checks_pass,
    format_fleet_report,
    run_fleet_experiment,
)

from conftest import bench_scale, emit_json, publish


def test_fleet_fabric_end_to_end(benchmark):
    vertices = max(300, int(1_500 * bench_scale()))
    result = benchmark.pedantic(
        lambda: run_fleet_experiment(vertices=vertices),
        rounds=1, iterations=1,
    )

    publish("fleet", format_fleet_report(result))
    emit_json("fleet", result)

    checks = result["checks"]
    assert checks["p2p_digests_match_sender"], (
        "a peer-to-peer transfer delivered a heap whose digest diverged "
        "from the sender's"
    )
    assert checks["restart_forced_full_resync"], (
        "a restarted worker's channel did not recover via forced FULL"
    )
    assert fleet_checks_pass(result), f"B-FLEET gate failed: {checks}"
