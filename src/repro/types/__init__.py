"""Type system: field descriptors, class definitions, and class loading.

Classes are described by :class:`~repro.types.classdef.ClassDef` (the
"class file"), published on a :class:`~repro.types.classdef.ClassPath`
shared by the cluster, and loaded per-JVM by a
:class:`~repro.types.loader.ClassLoader` into
:class:`~repro.heap.klass.Klass` meta-objects with concrete field offsets.
Skyway's global type numbering (paper §4.1) hooks the loader.
"""

from repro.types.descriptors import (
    ARRAY_PREFIX,
    PRIMITIVE_DESCRIPTORS,
    alignment_of,
    component_of,
    is_array,
    is_primitive,
    is_reference,
    object_descriptor,
    referenced_class,
    size_of,
)
from repro.types.classdef import ClassDef, ClassPath, FieldDef


def __getattr__(name):
    # Lazy: the loader depends on repro.heap, which depends on this
    # package's descriptors module — a direct top-level import would cycle.
    if name in ("ClassLoader", "ClassNotFoundError"):
        from repro.types import loader

        return getattr(loader, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ARRAY_PREFIX",
    "PRIMITIVE_DESCRIPTORS",
    "alignment_of",
    "component_of",
    "is_array",
    "is_primitive",
    "is_reference",
    "object_descriptor",
    "referenced_class",
    "size_of",
    "ClassDef",
    "ClassPath",
    "FieldDef",
    "ClassLoader",
    "ClassNotFoundError",
]
