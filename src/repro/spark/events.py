"""Engine event log: the simulator's equivalent of Spark's UI/event data.

Every task execution and shuffle file movement appends a structured event;
tests and debugging tools read them to check *how* a job executed (task
placement, shuffle fan-out, cache hits), not just what it produced.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterator, List, Optional


@dataclasses.dataclass(frozen=True)
class Event:
    kind: str
    details: Dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.details[key]


class EventLog:
    """Append-only event record for one SparkContext."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    def emit(self, kind: str, **details: Any) -> None:
        self._events.append(Event(kind, details))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def of_kind(self, kind: str) -> List[Event]:
        return [e for e in self._events if e.kind == kind]

    def clear(self) -> None:
        self._events.clear()

    # -- summaries -----------------------------------------------------------

    def task_counts_by_node(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.of_kind("task"):
            node = event["node"]
            counts[node] = counts.get(node, 0) + 1
        return counts

    def shuffle_fanout(self, shuffle_id: int) -> Dict[str, int]:
        """files written / fetched / remote fetches for one shuffle."""
        writes = [e for e in self.of_kind("shuffle_write")
                  if e["shuffle_id"] == shuffle_id]
        fetches = [e for e in self.of_kind("shuffle_fetch")
                   if e["shuffle_id"] == shuffle_id]
        return {
            "files_written": len(writes),
            "bytes_written": sum(e["bytes"] for e in writes),
            "fetches": len(fetches),
            "remote_fetches": sum(1 for e in fetches if e["remote"]),
        }

    def render(self, limit: int = 50) -> str:
        lines = [f"event log ({len(self._events)} events)"]
        for event in self._events[:limit]:
            detail = " ".join(f"{k}={v}" for k, v in event.details.items())
            lines.append(f"  {event.kind:<14} {detail}")
        if len(self._events) > limit:
            lines.append(f"  ... {len(self._events) - limit} more")
        return "\n".join(lines)
