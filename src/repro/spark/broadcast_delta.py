"""Delta-aware heap broadcast — now a thin veneer over the policy plane.

:class:`DeltaHeapBroadcast` predates ``SparkContext.send``: it was the
iterative-state broadcast that shipped FULL once and DELTA thereafter.
All of that behavior now lives in :class:`~repro.spark.send.PolicySend`
with a mutation-crossover policy; this class pins the legacy default
(crossover, not adaptive) and the legacy single-root constructor shape so
existing callers and benchmarks keep their exact epoch-by-epoch behavior.
New code should call ``SparkContext.send(root, policy=...)``.
"""

from __future__ import annotations

from typing import Optional

from repro.exchange.service import Exchange
from repro.net.cluster import Cluster
from repro.spark.send import PolicySend, PushReport

__all__ = ["DeltaHeapBroadcast", "PushReport"]


class DeltaHeapBroadcast(PolicySend):
    """A driver-heap value broadcast incrementally to every worker."""

    def __init__(
        self,
        cluster: Cluster,
        root: int,
        policy=None,
        exchange: Optional[Exchange] = None,
    ) -> None:
        super().__init__(
            cluster, root, policy=policy, exchange=exchange,
            default_policy="crossover",
        )
