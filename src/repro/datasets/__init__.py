"""Synthetic datasets standing in for the paper's inputs.

The paper evaluates over four real graphs (Table 1) and TPC-H data; neither
is shippable here, so generators produce synthetic equivalents with the
*shape* properties the experiments depend on: power-law degree skew (drives
shuffle volume imbalance) and published vertex/edge ratios, at a documented
scale-down.  Every generator is seeded and deterministic.
"""

from repro.datasets.graphs import (
    GRAPH_PROFILES,
    GraphProfile,
    generate_graph,
    table1_rows,
)
from repro.datasets.text import generate_text_corpus

__all__ = [
    "GraphProfile",
    "GRAPH_PROFILES",
    "generate_graph",
    "table1_rows",
    "generate_text_corpus",
]
