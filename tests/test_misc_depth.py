"""Cross-cutting depth tests: registry interleaving, codec properties,
engine-level lazy deserialization costing, runtime phase semantics."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.runtime import attach_skyway
from repro.core.adapter import SkywaySerializer
from repro.jvm.jvm import JVM
from repro.jvm.marshal import from_heap, to_heap
from repro.simtime import Category
from repro.types import descriptors

from tests.conftest import sample_classpath


class TestRegistryInterleaving:
    def test_interleaved_worker_loads_stay_consistent(self, classpath):
        """Workers loading disjoint and overlapping classes in interleaved
        order must agree on every tID (the CAS-free driver owns IDs)."""
        driver = JVM("ri-driver", classpath=classpath)
        workers = [JVM(f"ri-w{i}", classpath=classpath) for i in range(4)]
        attach_skyway(driver, workers)
        schedule = [
            (0, "Date"), (1, "Mixed"), (2, "Date"), (3, "ListNode"),
            (1, "Date"), (0, "ListNode"), (2, "Mixed"), (3, "Date"),
            (0, "[LDate;"), (2, "[LDate;"),
        ]
        for worker_index, class_name in schedule:
            workers[worker_index].loader.load(class_name)
        for name in ("Date", "Mixed", "ListNode", "[LDate;"):
            tids = {
                w.loader.load(name).tid for w in workers
            } | {driver.loader.load(name).tid}
            assert len(tids) == 1, name

    def test_ids_dense_over_the_cluster(self, classpath):
        driver = JVM("d2", classpath=classpath)
        w = JVM("w2", classpath=classpath)
        attach_skyway(driver, [w])
        w.loader.load("Date")
        registry = driver.skyway.driver_registry
        # Loading is lazy: Date pulls its superclass chain (Object) but not
        # its field classes.
        assert "Date" in registry
        assert "java.lang.Object" in registry
        assert len(registry) >= 2


class TestSerialExports:
    def test_public_surface(self):
        import repro.serial as serial

        assert serial.SchemaCompiledSerializer().name == "schema"
        assert serial.JavaSerializer().name == "java"
        assert serial.KryoSerializer().name == "kryo"
        with pytest.raises(serial.SerializationError.__mro__[0]
                           if False else Exception):
            raise serial.CycleError("x")


class TestCompactCodecProperty:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(value=st.recursive(
        st.one_of(st.integers(min_value=-(2**40), max_value=2**40),
                  st.text(max_size=8),
                  st.floats(allow_nan=False, allow_infinity=False)),
        lambda c: st.one_of(st.lists(c, max_size=3),
                            st.dictionaries(st.text(max_size=4), c,
                                            max_size=3)),
        max_leaves=10,
    ))
    def test_compact_roundtrip_any_value(self, value):
        cp = sample_classpath()
        src = JVM("cp-src", classpath=cp)
        dst = JVM("cp-dst", classpath=cp)
        attach_skyway(src, [dst])
        ser = SkywaySerializer(compress_headers=True)
        addr = to_heap(src, value)
        back = from_heap(dst, ser.deserialize(dst, ser.serialize(src, addr)))
        assert back == value


class TestDescriptorValidation:
    @given(st.text(max_size=6))
    def test_validate_never_crashes_oddly(self, text):
        """validate() either accepts or raises ValueError — nothing else."""
        try:
            descriptors.validate(text)
        except ValueError:
            pass

    @given(st.sampled_from(list("ZBCSIFJD")), st.integers(0, 3))
    def test_array_nesting(self, prim, depth):
        desc = "[" * depth + prim
        descriptors.validate(desc)
        assert descriptors.size_of(desc) == (
            descriptors.PRIMITIVE_DESCRIPTORS[prim] if depth == 0 else 8
        )


class TestFlinkLazyDeserEngineLevel:
    def test_projection_narrow_access_charges_less(self):
        """The same shuffle with a narrow accessed-fields list must charge
        less deserialization than full access (lazy deser, paper §5.3)."""
        from repro.flink.engine import Table
        from repro.flink.types import FieldKind as K, RowType
        from tests.test_flink import make_env

        wide = RowType.of(
            "wide", *[(f"c{i}", K.LONG) for i in range(10)]
        )
        rows = [tuple(range(i, i + 10)) for i in range(200)]

        def run(accessed):
            env = make_env("builtin")
            ds = env.from_table(Table(wide, rows))
            env.shuffle(ds, lambda r: r[0], accessed_fields=accessed)
            total = env.cluster.total_clock()
            return total.total(Category.DESERIALIZATION)

        assert run([0]) < run(None)


class TestRuntimePhases:
    def test_shuffle_start_clears_buffers_and_bumps_sid(self, classpath):
        src = JVM("rp", classpath=classpath)
        dst = JVM("rp-d", classpath=classpath)
        attach_skyway(src, [dst])
        buffer = src.skyway.output_buffer("peer")
        buffer.reserve(64)
        assert buffer.logical_size > 0
        sid = src.skyway.sid
        src.skyway.shuffle_start()
        assert src.skyway.sid == sid + 1
        assert buffer.logical_size == 0
