"""Dedicated tests for the schema-compiled serializer family."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.jvm.jvm import JVM
from repro.jvm.marshal import Obj, from_heap, to_heap
from repro.serial.schema_compiled import (
    CycleError,
    SchemaCompiledSerializer,
    _unzigzag,
    _zigzag,
)
from repro.types.classdef import ClassPath
from repro.types.corelib import install_core_classes

from tests.conftest import sample_classpath


def fresh_pair():
    cp = sample_classpath()
    return JVM("sc-src", classpath=cp), JVM("sc-dst", classpath=cp)


class TestZigzag:
    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_roundtrip(self, v):
        assert _unzigzag(_zigzag(v)) == v

    def test_small_negative_small_encoding(self):
        # Zigzag keeps small-magnitude values small on the wire.
        assert _zigzag(-1) == 1
        assert _zigzag(1) == 2
        assert _zigzag(0) == 0


class TestDeclaredTypeOptimization:
    def test_exact_declared_type_carries_no_name(self):
        src, _ = fresh_pair()
        ser = SchemaCompiledSerializer()
        date = src.new_instance("Date")
        leaf = src.new_instance("Year4D")
        src.set_field(leaf, "year", 2000)
        src.set_field(date, "year", leaf)
        data = ser.serialize(src, date)
        # Date itself is root (typed), but Year4D matches the declared
        # field type and must not appear as a string.
        assert b"Year4D" not in data
        assert data.count(b"Date") == 1

    def test_dictionary_encoded_repeats(self):
        src, _ = fresh_pair()
        ser = SchemaCompiledSerializer()
        stream = ser.new_stream(src)
        for _ in range(5):
            d = src.new_instance("Date")
            stream.write_object(d)
        data = stream.close()
        assert data.count(b"Date") == 1  # later roots use the dictionary

    def test_object_typed_fields_carry_typeref(self):
        src, dst = fresh_pair()
        ser = SchemaCompiledSerializer()
        addr = to_heap(src, [("a", 1)])  # ArrayList -> Object[] elements
        received = ser.deserialize(dst, ser.serialize(src, addr))
        assert from_heap(dst, received) == [("a", 1)]


class TestFraming:
    def test_frame_overhead_bytes(self):
        src, dst = fresh_pair()
        plain = SchemaCompiledSerializer(frame_overhead=0)
        framed = SchemaCompiledSerializer(name="thrift-ish", frame_overhead=8)
        date = src.new_instance("Date")
        assert len(framed.serialize(src, date)) == \
            len(plain.serialize(src, date)) + 8
        received = framed.deserialize(dst, framed.serialize(src, date))
        assert dst.klass_of(received).name == "Date"

    def test_cost_factors_scale_charges(self):
        src1, _ = fresh_pair()
        src2, _ = fresh_pair()
        date1 = src1.new_instance("Mixed")
        date2 = src2.new_instance("Mixed")
        cheap = SchemaCompiledSerializer(field_cost_factor=1.0)
        dear = SchemaCompiledSerializer(field_cost_factor=4.0)
        before1 = src1.clock.total()
        cheap.serialize(src1, date1)
        cost1 = src1.clock.total() - before1
        before2 = src2.clock.total()
        dear.serialize(src2, date2)
        cost2 = src2.clock.total() - before2
        assert cost2 > 2 * cost1


class TestTreeSemantics:
    def test_shared_subobject_duplicated(self):
        """Protobuf-style tree encoding: sharing is lost (unlike Skyway,
        Kryo, and the Java serializer) — documented library semantics."""
        src, dst = fresh_pair()
        ser = SchemaCompiledSerializer()
        shared = src.new_instance("Day2D")
        src.set_field(shared, "day", 5)
        d1, d2 = src.new_instance("Date"), src.new_instance("Date")
        src.set_field(d1, "day", shared)
        src.set_field(d2, "day", shared)
        data = ser.serialize_many(src, [d1, d2])
        r1, r2 = ser.deserialize_all(dst, data)
        leaf1, leaf2 = dst.get_field(r1, "day"), dst.get_field(r2, "day")
        assert leaf1 != leaf2  # duplicated, not shared
        assert dst.get_field(leaf1, "day") == dst.get_field(leaf2, "day") == 5

    def test_self_cycle_rejected(self):
        src, _ = fresh_pair()
        node = src.new_instance("ListNode")
        src.set_field(node, "next", node)
        with pytest.raises(CycleError):
            SchemaCompiledSerializer().serialize(src, node)

    def test_diamond_is_fine(self):
        # DAG sharing without a cycle serializes (duplicating the leaf).
        src, dst = fresh_pair()
        ser = SchemaCompiledSerializer()
        a = src.new_instance("ListNode")
        b = src.new_instance("ListNode")
        src.set_field(a, "next", b)
        received = ser.deserialize(dst, ser.serialize(src, a))
        assert dst.get_field(received, "next") != 0

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.recursive(
        st.one_of(st.integers(min_value=-100, max_value=100),
                  st.text(max_size=6),
                  st.floats(allow_nan=False, allow_infinity=False, width=32)),
        lambda c: st.one_of(st.lists(c, max_size=3), st.tuples(c, c)),
        max_leaves=8,
    ))
    def test_tree_values_roundtrip(self, value):
        src, dst = fresh_pair()
        ser = SchemaCompiledSerializer()
        addr = to_heap(src, value)
        assert from_heap(dst, ser.deserialize(dst, ser.serialize(src, addr))) == value
