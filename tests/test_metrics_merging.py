"""Ledger edge cases the obs snapshot leans on: loopback ExchangeMetrics
(no transport), concurrent TransportMetrics merging, and zero-baseline
Breakdown normalization."""

import json
import threading

import pytest

from repro.delta.policy import ChannelStats
from repro.exchange.metrics import ExchangeMetrics
from repro.simtime import Breakdown, Category
from repro.transport.metrics import TransportMetrics


class TestExchangeMetricsLoopback:
    def test_build_with_no_transport(self):
        metrics = ExchangeMetrics.build(
            substrate="loopback",
            destination="worker-0",
            channel_id=7,
            capabilities={"delta": True, "kernel": True},
            sends=2,
            wire_bytes=123,
            nack_recoveries=0,
            sim_totals={Category.SERIALIZATION: 0.5,
                        Category.DESERIALIZATION: 0.25},
            stats=ChannelStats(epochs=2, full_sends=1, delta_sends=1),
            transport=None,
        )
        d = metrics.as_dict()
        assert d["transport"] is None
        assert d["breakdown"]["serialization"] == 0.5
        assert d["breakdown"]["total"] == 0.75
        assert d["breakdown"]["bytes_written"] == 123.0
        assert d["delta"]["epochs"] == 2
        json.dumps(d)  # the registry source must be JSON-safe as-is

    def test_to_json_round_trips(self):
        metrics = ExchangeMetrics.build(
            substrate="loopback", destination="d", channel_id=1,
            capabilities={}, sends=0, wire_bytes=0, nack_recoveries=0,
            sim_totals={}, stats=ChannelStats(),
        )
        assert json.loads(metrics.to_json())["wire_bytes"] == 0


class TestTransportMetricsMerge:
    def test_concurrent_merges_are_exact(self):
        target = TransportMetrics()
        parts = []
        for _ in range(8):
            part = TransportMetrics()
            for _ in range(100):
                part.note_frame_sent(3)
            part.add_phase("send", 0.001)
            parts.append(part)
        threads = [threading.Thread(target=target.merge, args=(p,))
                   for p in parts]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert target.frames_sent == 800
        assert target.bytes_sent == 2400
        assert target.phases["send"] == pytest.approx(0.008)

    def test_merge_while_source_still_updating(self):
        src = TransportMetrics()
        total = 5000

        def writer():
            for _ in range(total):
                src.note_chunk_sent()

        t = threading.Thread(target=writer)
        t.start()
        seen = 0
        while t.is_alive():
            agg = TransportMetrics.merged([src])
            assert agg.chunks_sent >= seen  # consistent, monotone snapshots
            seen = agg.chunks_sent
        t.join()
        assert TransportMetrics.merged([src]).chunks_sent == total

    def test_merge_into_self_rejected(self):
        metrics = TransportMetrics()
        with pytest.raises(ValueError):
            metrics.merge(metrics)


class TestBreakdownZeroBaseline:
    def test_zero_valued_baseline_categories(self):
        baseline = Breakdown()  # all categories zero
        mine = Breakdown(serialization=1.0, bytes_written=10)
        ratios = mine.normalized_to(baseline)
        assert ratios["ser"] == float("inf")
        assert ratios["size"] == float("inf")
        assert ratios["write"] == 0.0  # 0/0 reads as "no change"
        assert ratios["des"] == 0.0

    def test_zero_over_zero_everywhere(self):
        zero = Breakdown()
        assert all(v == 0.0 for v in zero.normalized_to(zero).values())

    def test_mixed_baseline(self):
        baseline = Breakdown(serialization=2.0, bytes_written=100)
        mine = Breakdown(serialization=1.0, write_io=0.5, bytes_written=50)
        ratios = mine.normalized_to(baseline)
        assert ratios["ser"] == 0.5
        assert ratios["size"] == 0.5
        assert ratios["write"] == float("inf")
