"""A-COMPACT — ablation: the §5.2 future-work header/padding compression.

"Since headers and paddings dominate these extra bytes, future work could
focus on compressing headers and paddings during sending."  This bench
implements and measures that option: wire bytes saved vs per-field CPU
added, on a Spark-like record population.
"""

from repro.core.runtime import attach_skyway
from repro.core.streams import SkywayObjectInputStream, SkywayObjectOutputStream
from repro.jvm.jvm import JVM
from repro.jvm.marshal import to_heap
from repro.bench.report import format_kv_section
from repro.types.corelib import standard_classpath

from conftest import bench_scale, publish


def run_variant(records, compress: bool):
    classpath = standard_classpath()
    src = JVM("cmp-src", classpath=classpath, old_bytes=128 * 1024 * 1024)
    dst = JVM("cmp-dst", classpath=classpath, old_bytes=128 * 1024 * 1024)
    attach_skyway(src, [dst])
    pins = [src.pin(to_heap(src, record)) for record in records]

    out = SkywayObjectOutputStream(src.skyway, destination="p",
                                   compress_headers=compress)
    for pin in pins:
        out.write_object(pin.address)
    data = out.close()
    inp = SkywayObjectInputStream(dst.skyway)
    inp.accept(data)
    cpu = src.clock.total() + dst.clock.total()
    return len(data), cpu


def test_ablation_compact(benchmark):
    n = max(100, int(600 * bench_scale()))
    records = [(i % 50, (i, float(i), f"tag{i % 7}")) for i in range(n)]

    def run():
        return {
            "plain": run_variant(records, compress=False),
            "compact": run_variant(records, compress=True),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    plain_bytes, plain_cpu = results["plain"]
    compact_bytes, compact_cpu = results["compact"]

    publish("ablation_compact", format_kv_section(
        "A-COMPACT — header/padding compression (paper §5.2 future work)",
        {
            "records": n,
            "plain wire bytes": plain_bytes,
            "compact wire bytes": compact_bytes,
            "bytes saved": f"{1 - compact_bytes / plain_bytes:.1%}",
            "plain CPU (us)": plain_cpu * 1e6,
            "compact CPU (us)": compact_cpu * 1e6,
            "CPU added": f"{compact_cpu / plain_cpu - 1:.1%}",
        },
    ))

    # The tradeoff: substantial byte savings, real CPU cost.
    assert compact_bytes < 0.7 * plain_bytes
    assert compact_cpu > plain_cpu
    benchmark.extra_info["bytes_saved_frac"] = round(
        1 - compact_bytes / plain_bytes, 3)
