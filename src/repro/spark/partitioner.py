"""Hash partitioning with a process-stable hash.

Python's builtin ``hash`` is salted per process; shuffle placement must be
deterministic across runs (and across the simulated JVMs), so keys are
hashed with CRC32 over a canonical encoding — playing the role of Java's
stable ``Object.hashCode`` for value types.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any


def stable_hash(key: Any) -> int:
    """A deterministic 32-bit hash of a record key."""
    return zlib.crc32(_canonical_bytes(key)) & 0x7FFFFFFF


def _canonical_bytes(key: Any) -> bytes:
    if key is None:
        return b"\x00N"
    if isinstance(key, bool):
        return b"\x01T" if key else b"\x01F"
    if isinstance(key, int):
        return b"\x02" + key.to_bytes((key.bit_length() + 8) // 8 + 1,
                                      "little", signed=True)
    if isinstance(key, float):
        return b"\x03" + struct.pack("<d", key)
    if isinstance(key, str):
        return b"\x04" + key.encode("utf-8")
    if isinstance(key, bytes):
        return b"\x05" + key
    if isinstance(key, tuple):
        out = [b"\x06", len(key).to_bytes(4, "little")]
        for item in key:
            part = _canonical_bytes(item)
            out.append(len(part).to_bytes(4, "little"))
            out.append(part)
        return b"".join(out)
    raise TypeError(f"unhashable shuffle key type: {type(key).__name__}")


class HashPartitioner:
    """Spark's default partitioner: ``hash(key) mod numPartitions``."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        self.num_partitions = num_partitions

    def partition_of(self, key: Any) -> int:
        return stable_hash(key) % self.num_partitions

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HashPartitioner)
            and other.num_partitions == self.num_partitions
        )

    def __hash__(self) -> int:  # pragma: no cover - trivial
        return hash(("HashPartitioner", self.num_partitions))
