"""Incremental graph algorithms over heap-resident vertex graphs.

The shuffle-based PageRank/CC in :mod:`repro.apps.pagerank` and
:mod:`repro.apps.connected_components` rebuild their per-iteration state
as fresh RDD records — every iteration serializes everything.  The
variants here keep the algorithm state *as a heap object graph* (one
vertex object per vertex, mutated in place through the typed field API),
which is exactly the shape Skyway-Delta transfers well: after the first
full epoch, only mutated vertices cross the wire.

Heap schema (installed by :func:`install_incremental_classes`)::

    DeltaVertex { rank: D, label: J, adj: [J }   # adj = out-neighbour ids
    DeltaGraph  { vertices: [Ljava.lang.Object;, n: J }

Both algorithms are *selective writers*: a vertex object is only written
when its value actually changes, so the write-barrier dirt (and hence the
delta bytes) tracks algorithmic activity.  ``IncrementalPageRank.step``
additionally takes an ``active_fraction`` knob that bounds how many
vertices are recomputed per step — the benchmark's direct control over
the per-epoch mutation rate.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.jvm.jvm import JVM
from repro.types.classdef import ClassPath

VERTEX_CLASS = "DeltaVertex"
GRAPH_CLASS = "DeltaGraph"


def install_incremental_classes(cp: ClassPath) -> ClassPath:
    """Define the vertex-graph schema (idempotent)."""
    if VERTEX_CLASS not in cp:
        cp.define(VERTEX_CLASS, [("rank", "D"), ("label", "J"), ("adj", "[J")])
    if GRAPH_CLASS not in cp:
        cp.define(
            GRAPH_CLASS, [("vertices", "[Ljava.lang.Object;"), ("n", "J")]
        )
    return cp


def build_vertex_graph(jvm: JVM, edges: List[Tuple[int, int]]) -> int:
    """Materialize an edge list as a heap-resident DeltaGraph.

    Returns the (pinned-by-caller) graph root address.  Vertex ids are
    normalized to ``0..n-1``; each vertex starts at rank 1.0 and label =
    its own id (the CC starting state).
    """
    n = 0
    adjacency: Dict[int, List[int]] = {}
    for src, dst in edges:
        n = max(n, src + 1, dst + 1)
        adjacency.setdefault(src, []).append(dst)

    graph = jvm.new_instance(GRAPH_CLASS)
    graph_pin = jvm.pin(graph)
    try:
        vertices = jvm.new_array("Ljava.lang.Object;", n)
        jvm.set_field(graph_pin.address, "vertices", vertices)
        jvm.set_field(graph_pin.address, "n", n)
        for vid in range(n):
            out = adjacency.get(vid, ())
            vertex = jvm.new_instance(VERTEX_CLASS)
            vertex_pin = jvm.pin(vertex)  # new_array below may GC-move it
            try:
                adj = jvm.new_array("J", len(out))
                jvm.set_field(vertex_pin.address, "rank", 1.0)
                jvm.set_field(vertex_pin.address, "label", vid)
                jvm.set_field(vertex_pin.address, "adj", adj)
                for i, dst in enumerate(out):
                    jvm.heap.write_element(adj, i, dst)
                # Allocation may have moved the vertices array: re-read it
                # through the pinned graph root before installing.
                varr = jvm.get_field(graph_pin.address, "vertices")
                jvm.heap.write_element(varr, vid, vertex_pin.address)
            finally:
                jvm.unpin(vertex_pin)
        return graph_pin.address
    finally:
        jvm.unpin(graph_pin)


def _vertex(jvm: JVM, graph: int, vid: int) -> int:
    return jvm.heap.read_element(jvm.get_field(graph, "vertices"), vid)


def read_ranks(jvm: JVM, graph: int) -> List[float]:
    n = jvm.get_field(graph, "n")
    return [
        jvm.get_field(_vertex(jvm, graph, v), "rank") for v in range(n)
    ]


def read_labels(jvm: JVM, graph: int) -> List[int]:
    n = jvm.get_field(graph, "n")
    return [
        jvm.get_field(_vertex(jvm, graph, v), "label") for v in range(n)
    ]


class IncrementalPageRank:
    """PageRank with in-place rank updates and bounded per-step activity.

    ``step(active_fraction)`` recomputes the ranks of a rotating window of
    ``ceil(n * active_fraction)`` vertices from the current in-bound
    contributions and writes back only those that changed — so the
    fraction is an upper bound on the epoch's heap mutation rate.
    ``active_fraction=1.0`` is classic synchronous-sweep PageRank.
    """

    def __init__(self, jvm: JVM, graph: int, damping: float = 0.85) -> None:
        self.jvm = jvm
        self.graph = graph
        self.damping = damping
        self.n = jvm.get_field(graph, "n")
        self._window_start = 0
        # In-neighbour lists + out-degrees, read once from the heap graph.
        self._in: Dict[int, List[int]] = {v: [] for v in range(self.n)}
        self._outdeg: List[int] = [0] * self.n
        heap = jvm.heap
        for v in range(self.n):
            adj = jvm.get_field(_vertex(jvm, graph, v), "adj")
            deg = heap.array_length(adj)
            self._outdeg[v] = deg
            for i in range(deg):
                self._in[heap.read_element(adj, i)].append(v)

    def step(self, active_fraction: float = 1.0) -> int:
        """One superstep; returns how many vertex objects were written."""
        jvm, graph = self.jvm, self.graph
        active = max(1, math.ceil(self.n * active_fraction))
        start = self._window_start
        self._window_start = (start + active) % self.n
        written = 0
        for k in range(active):
            v = (start + k) % self.n
            contribution = 0.0
            for u in self._in[v]:
                rank_u = jvm.get_field(_vertex(jvm, graph, u), "rank")
                contribution += rank_u / self._outdeg[u]
            new_rank = (1.0 - self.damping) + self.damping * contribution
            vertex = _vertex(jvm, graph, v)
            if jvm.get_field(vertex, "rank") != new_rank:
                jvm.set_field(vertex, "rank", new_rank)
                written += 1
        return written


class IncrementalConnectedComponents:
    """Label propagation with in-place label updates.

    Each ``step()`` propagates the minimum label across every edge (both
    directions) and writes back only labels that shrank; activity decays
    to zero as components converge, which delta transfer turns directly
    into shrinking epochs.
    """

    def __init__(self, jvm: JVM, graph: int) -> None:
        self.jvm = jvm
        self.graph = graph
        self.n = jvm.get_field(graph, "n")
        heap = jvm.heap
        self._edges: List[Tuple[int, int]] = []
        for v in range(self.n):
            adj = jvm.get_field(_vertex(jvm, graph, v), "adj")
            for i in range(heap.array_length(adj)):
                self._edges.append((v, heap.read_element(adj, i)))

    def step(self) -> int:
        """One propagation round; returns how many labels changed."""
        jvm, graph = self.jvm, self.graph
        labels = read_labels(jvm, graph)
        best = list(labels)
        for u, v in self._edges:
            if best[v] > best[u]:
                best[v] = best[u]
            if best[u] > best[v]:
                best[u] = best[v]
        written = 0
        for v in range(self.n):
            if best[v] != labels[v]:
                jvm.set_field(_vertex(jvm, graph, v), "label", best[v])
                written += 1
        return written

    def run_to_convergence(self, max_steps: int = 64) -> int:
        """Iterate until quiescent; returns the number of steps taken."""
        for step in range(1, max_steps + 1):
            if self.step() == 0:
                return step
        return max_steps
