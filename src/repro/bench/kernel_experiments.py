"""B-KERNEL — compiled clone kernels and the multi-stream parallel send.

Two measured claims, both wall-clock (the kernels change *Python* work,
not modeled work — the simulated clock charges the same seconds either
way, which is itself asserted by the clock-parity test suite):

1. **Kernel speedup.**  The same vertex graph is serialized in-process
   twice — interpreted per-field traversal versus the compiled-kernel
   path — and must produce *byte-identical* framed streams (checked
   directly on the bytes AND via the position-independent
   :func:`~repro.transport.digest.graph_digest` of an in-process receive).
   The kernel path must be at least ~2x faster; in practice it lands well
   above that.

2. **Multi-stream parallel send.**  The same roots go to one spawned
   worker over N connections/streams (distinct ``thread_id`` per stream,
   one shared shuffle phase — §4.2's per-thread output buffers as real
   sockets).  On a paced wire, N streams divide the serialization +
   transfer wall-clock; digest parity between a kernel run and an
   interpreted run proves the kernel path byte-exact under concurrency
   too (each stream's digest list must match element-wise).

``--smoke`` runs a shrunken graph with no pacing and exits non-zero on
any parity failure — the CI gate that the kernels never drift from the
interpreted semantics.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.apps.incremental import build_vertex_graph
from repro.core.runtime import SkywayRuntime
from repro.core.streams import SkywayObjectInputStream, SkywayObjectOutputStream
from repro.jvm.jvm import JVM
from repro.transport import WorkerClient, WorkerHandle, WorkerSpec, graph_digest
from repro.transport.bootstrap import MB, build_runtime
from repro.transport.parallel import ParallelGraphSender
from repro.transport.testing import (
    SAMPLE_FACTORY,
    ring_edges,
    sample_worker_classpath,
)

DEFAULT_VERTICES = 40_000
DEFAULT_STREAMS = 4
DEFAULT_WIRE_MBPS = 8.0
SMOKE_VERTICES = 1_500


def _reference_digest(driver: SkywayRuntime, data: bytes) -> str:
    """In-process receive of the framed bytes, digest-normalized."""
    ref_jvm = JVM("kernel-ref", classpath=sample_worker_classpath(),
                  old_bytes=512 * MB)
    ref_runtime = SkywayRuntime(ref_jvm, driver.driver_registry,
                                is_driver=False)
    stream = SkywayObjectInputStream(ref_runtime)
    stream.accept(data)
    return graph_digest(ref_jvm, stream.receiver)


def _serialize_once(driver: SkywayRuntime, root: int, use_kernels: bool):
    """One in-process serialization pass; returns (seconds, framed bytes)."""
    driver.use_kernels = use_kernels
    driver.shuffle_start()
    out = SkywayObjectOutputStream(driver, destination="bench-kernel")
    started = time.perf_counter()
    out.write_object(root)
    data = out.close()
    return time.perf_counter() - started, data


def run_kernel_experiment(
    vertices: int = DEFAULT_VERTICES,
    streams: int = DEFAULT_STREAMS,
    wire_mbps: Optional[float] = DEFAULT_WIRE_MBPS,
    repeats: int = 3,
    smoke: bool = False,
) -> Dict[str, object]:
    """Returns a JSON-serializable result dict (see module docstring)."""
    if smoke:
        vertices = min(vertices, SMOKE_VERTICES)
        wire_mbps = None
        repeats = 1

    driver = build_runtime("kernel-driver", SAMPLE_FACTORY, old_bytes=512 * MB)
    jvm = driver.jvm
    edges = ring_edges(vertices, vertices)
    root = jvm.pin(build_vertex_graph(jvm, edges))

    # -- claim 1: in-process kernel vs interpreted traversal ---------------
    _serialize_once(driver, root.address, True)  # warm classes + kernels
    _serialize_once(driver, root.address, False)
    kernel_t, kernel_data = min(
        (_serialize_once(driver, root.address, True) for _ in range(repeats)),
        key=lambda pair: pair[0],
    )
    interp_t, interp_data = min(
        (_serialize_once(driver, root.address, False) for _ in range(repeats)),
        key=lambda pair: pair[0],
    )
    bytes_identical = kernel_data == interp_data
    kernel_digest = _reference_digest(driver, kernel_data)
    interp_digest = _reference_digest(driver, interp_data)
    driver.use_kernels = True

    # -- claim 2: multi-stream parallel send over real sockets -------------
    handle = WorkerHandle.spawn(WorkerSpec(
        name="kernel-worker", classpath_factory=SAMPLE_FACTORY,
        old_bytes=512 * MB, read_timeout=300.0,
    ))
    clients: List[WorkerClient] = []
    try:
        clients = [
            WorkerClient(driver, handle.host, handle.port,
                         read_timeout=300.0).connect()
            for _ in range(max(1, streams))
        ]
        # Per-vertex roots so the set shards: each DeltaVertex subgraph
        # (vertex + its long[] adjacency) is disjoint, so stream counts
        # add up exactly and parallelism is root-level.
        varr = jvm.get_field(root.address, "vertices")
        n = jvm.get_field(root.address, "n")
        roots = [jvm.heap.read_element(varr, i) for i in range(n)]

        single = clients[0]
        single.send_graph(roots[: min(64, len(roots))])  # warm the wire
        started = time.perf_counter()
        single_result, single_data = single.send_graph(
            roots, throttle_mbps=wire_mbps,
        )
        single_t = time.perf_counter() - started

        fan = ParallelGraphSender(clients)
        parallel = fan.send(roots, throttle_mbps=wire_mbps)

        # Digest parity under concurrency: interpreted rerun must match
        # the kernel run stream for stream.
        driver.use_kernels = False
        parallel_interp = fan.send(roots, throttle_mbps=wire_mbps)
        driver.use_kernels = True
        parallel_parity = parallel.digests == parallel_interp.digests
    finally:
        for client in clients:
            try:
                client.close()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
        handle.stop()

    return {
        "graph": {
            "vertices": vertices,
            "edges": len(edges),
            "stream_bytes": len(kernel_data),
            "stream_mb": round(len(kernel_data) / 1e6, 2),
        },
        "smoke": smoke,
        "traversal": {
            "interpreted_seconds": round(interp_t, 4),
            "kernel_seconds": round(kernel_t, 4),
            "speedup": round(interp_t / kernel_t, 2),
            "bytes_identical": bytes_identical,
            "digest_identical": kernel_digest == interp_digest,
            "digest": kernel_digest,
        },
        "parallel": {
            "streams": len(clients),
            "wire_mbps": wire_mbps,
            "single_stream_seconds": round(single_t, 4),
            "parallel_seconds": round(parallel.elapsed_seconds, 4),
            "speedup": round(single_t / parallel.elapsed_seconds, 2),
            "single_objects": single_result["objects"],
            "parallel_objects": parallel.total_objects,
            "digest_parity": parallel_parity,
            "digests": parallel.digests,
        },
    }


def kernel_checks_pass(result: Dict[str, object]) -> bool:
    """The parity gates the smoke run (and CI) enforce."""
    traversal = result["traversal"]
    parallel = result["parallel"]
    return bool(
        traversal["bytes_identical"]
        and traversal["digest_identical"]
        and parallel["digest_parity"]
        and parallel["single_objects"] == parallel["parallel_objects"]
    )


def format_kernel_report(result: Dict[str, object]) -> str:
    graph = result["graph"]
    traversal = result["traversal"]
    parallel = result["parallel"]
    wire = (f"{parallel['wire_mbps']} Mbps/conn"
            if parallel["wire_mbps"] else "unthrottled loopback")
    return "\n".join([
        "B-KERNEL — compiled clone kernels + multi-stream parallel send",
        f"  graph: {graph['vertices']} vertices, {graph['edges']} edges, "
        f"{graph['stream_mb']} MB framed stream",
        "",
        "  traversal (in-process, one stream):",
        f"    interpreted     {traversal['interpreted_seconds']:>8.3f} s",
        f"    kernel          {traversal['kernel_seconds']:>8.3f} s"
        f"   -> {traversal['speedup']:.2f}x",
        f"    byte-identical streams: {traversal['bytes_identical']}, "
        f"digest-identical: {traversal['digest_identical']}",
        "",
        f"  parallel send ({parallel['streams']} streams, {wire}):",
        f"    single stream   {parallel['single_stream_seconds']:>8.3f} s"
        f"   ({parallel['single_objects']} objects)",
        f"    {parallel['streams']} streams       "
        f"{parallel['parallel_seconds']:>8.3f} s"
        f"   -> {parallel['speedup']:.2f}x",
        f"    kernel vs interpreted per-stream digest parity: "
        f"{parallel['digest_parity']}",
        "",
        f"  all parity checks pass: {kernel_checks_pass(result)}",
    ])
