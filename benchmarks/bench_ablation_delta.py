"""A-DELTA — ablation: delta transfer across the mutation-rate sweep.

Delta transfer is only a win while mutations are sparse; past the
policy's byte crossover the channel must revert to the paper's plain
full send on its own.  The sweep shows both regimes: low mutation rates
ship small DELTA epochs, the 100% point auto-falls back to a FULL epoch
costing within 10% of the baseline full send.
"""

from repro.bench.delta_experiments import run_mutation_sweep

from conftest import bench_scale, emit_json, publish


def _format_rows(rows) -> str:
    lines = [
        "A-DELTA — update-epoch bytes vs per-epoch mutation rate (LJ)",
        f"{'mutation':>10} {'mode':>6} {'bytes':>10} {'vs full':>9}  reason",
    ]
    for row in rows:
        lines.append(
            f"{row['mutation_fraction']:>10.0%} {row['mode']:>6} "
            f"{row['update_bytes']:>10} {row['update_vs_full']:>8.1%}  "
            f"{row['reason']}"
        )
    return "\n".join(lines)


def test_ablation_delta(benchmark):
    rows = benchmark.pedantic(
        lambda: run_mutation_sweep(
            graph_key="LJ",
            scale=bench_scale(0.2),
            fractions=[0.01, 0.05, 0.1, 0.25, 0.5, 1.0],
        ),
        rounds=1, iterations=1,
    )
    publish("ablation_delta", _format_rows(rows))
    emit_json("ablation_delta", rows)

    by_fraction = {row["mutation_fraction"]: row for row in rows}
    # Sparse mutation: a small delta epoch.
    assert by_fraction[0.01]["mode"] == "delta", rows
    assert by_fraction[0.01]["update_vs_full"] < 0.2, rows
    # Saturated mutation: automatic fallback to a full send whose cost is
    # within 10% of the baseline full epoch.
    assert by_fraction[1.0]["mode"] == "full", rows
    assert by_fraction[1.0]["update_bytes"] <= 1.1 * by_fraction[1.0]["full_bytes"], rows
    # Epoch bytes grow monotonically-ish with the mutation rate: the
    # saturated point costs more than the sparsest point.
    assert by_fraction[1.0]["update_bytes"] > by_fraction[0.01]["update_bytes"], rows
