"""Klass meta-objects: the per-JVM runtime representation of a type.

In HotSpot every object's header points at a "klass" meta-object.  Skyway
adds a ``tID`` field to each klass (paper Figure 5: "klass for
java.lang.Object / tID / Old Contents") holding the cluster-global type ID
assigned by the driver's type registry; the sender writes the tID into the
klass slot of every buffered object and the receiver maps it back.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.heap.layout import HeapLayout
from repro.types import descriptors


@dataclasses.dataclass(frozen=True)
class FieldInfo:
    """A resolved instance field with its concrete byte offset."""

    name: str
    descriptor: str
    offset: int
    declaring_class: str

    @property
    def is_reference(self) -> bool:
        return descriptors.is_reference(self.descriptor)

    @property
    def size(self) -> int:
        return descriptors.size_of(self.descriptor)


class Klass:
    """Runtime type metadata for one class in one JVM.

    Instances are created by the class loader (regular classes via
    :meth:`for_instance_class`, array classes via :meth:`for_array`), never
    shared between JVMs — different JVMs hold different klass meta-objects
    for the same type, which is exactly why raw klass pointers cannot cross
    the wire and Skyway needs global type numbering.
    """

    def __init__(
        self,
        name: str,
        layout: HeapLayout,
        super_klass: Optional["Klass"],
        own_fields: Sequence[FieldInfo],
        instance_size: int,
        element_descriptor: Optional[str] = None,
    ) -> None:
        self.name = name
        self.layout = layout
        self.super_klass = super_klass
        self.own_fields: Tuple[FieldInfo, ...] = tuple(own_fields)
        self.instance_size = instance_size
        self.element_descriptor = element_descriptor
        #: Compiled clone/receive kernels (repro.core.kernels); cached here
        #: so a tID rewrite (transport registry merge) can invalidate them.
        self.clone_kernel = None
        self.receive_kernel = None
        #: Skyway global type ID; written by the type registry on load.
        self.tid: Optional[int] = None
        #: Per-JVM klass-word value; assigned by the loader.
        self.klass_id: Optional[int] = None

        self._all_fields = self._resolve_all_fields()
        self._fields_by_name = {f.name: f for f in self._all_fields}
        self.oop_offsets: Tuple[int, ...] = tuple(
            f.offset for f in self._all_fields if f.is_reference
        )

    # -- construction ------------------------------------------------------

    @classmethod
    def for_instance_class(
        cls,
        name: str,
        layout: HeapLayout,
        super_klass: Optional["Klass"],
        declared_fields: Sequence[Tuple[str, str]],
    ) -> "Klass":
        inherited_end = (
            super_klass.instance_size if super_klass is not None else layout.header_size
        )
        placed, size = layout.compute_field_offsets(inherited_end, declared_fields)
        infos = [FieldInfo(n, d, off, name) for n, d, off in placed]
        return cls(name, layout, super_klass, infos, size)

    @classmethod
    def for_array(
        cls, element_descriptor: str, layout: HeapLayout, object_klass: "Klass"
    ) -> "Klass":
        descriptors.validate(element_descriptor)
        name = descriptors.ARRAY_PREFIX + element_descriptor
        return cls(
            name,
            layout,
            object_klass,
            own_fields=(),
            instance_size=layout.header_size,  # varies per instance
            element_descriptor=element_descriptor,
        )

    # -- queries -----------------------------------------------------------

    @property
    def tid(self) -> Optional[int]:
        """Skyway global type ID; written by the type registry on load."""
        return self._tid

    @tid.setter
    def tid(self, value: Optional[int]) -> None:
        # The transport handshake renumbers tIDs after a registry merge;
        # a compiled clone kernel bakes the tID into its header pack, so
        # any rewrite must drop it (it recompiles lazily on next use).
        self._tid = value
        self.clone_kernel = None

    @property
    def is_array(self) -> bool:
        return self.element_descriptor is not None

    @property
    def has_reference_elements(self) -> bool:
        return self.is_array and descriptors.is_reference(self.element_descriptor or "")

    @property
    def element_size(self) -> int:
        if not self.is_array:
            raise TypeError(f"{self.name} is not an array class")
        return descriptors.size_of(self.element_descriptor or "")

    def all_fields(self) -> Tuple[FieldInfo, ...]:
        """Inherited + declared fields, superclass-first, offset order."""
        return self._all_fields

    def field(self, name: str) -> FieldInfo:
        try:
            return self._fields_by_name[name]
        except KeyError:
            raise KeyError(f"{self.name} has no field {name!r}") from None

    def has_field(self, name: str) -> bool:
        return name in self._fields_by_name

    def object_size(self, array_length: Optional[int] = None) -> int:
        """Total byte size of an instance (arrays need their length)."""
        if self.is_array:
            if array_length is None:
                raise ValueError(f"array class {self.name} needs a length")
            return self.layout.array_size(self.element_descriptor or "", array_length)
        return self.instance_size

    def super_chain(self) -> List["Klass"]:
        """This class followed by its superclasses up to the root."""
        chain: List[Klass] = []
        node: Optional[Klass] = self
        while node is not None:
            chain.append(node)
            node = node.super_klass
        return chain

    def is_subclass_of(self, other: "Klass") -> bool:
        return any(k is other or k.name == other.name for k in self.super_chain())

    def _resolve_all_fields(self) -> Tuple[FieldInfo, ...]:
        fields: List[FieldInfo] = []
        if self.super_klass is not None:
            fields.extend(self.super_klass.all_fields())
        fields.extend(self.own_fields)
        fields.sort(key=lambda f: f.offset)
        return tuple(fields)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "array" if self.is_array else "class"
        return f"Klass({kind} {self.name}, size={self.instance_size}, tid={self.tid})"


def describe_layout(klass: Klass) -> str:
    """A human-readable field map, used by examples and debugging."""
    lines = [f"{klass.name} (instance size {klass.instance_size} bytes)"]
    lines.append(f"  [0:8)   mark word")
    lines.append(f"  [8:16)  klass word")
    if klass.layout.has_baddr:
        lines.append(f"  [16:24) baddr word (Skyway)")
    for f in klass.all_fields():
        end = f.offset + f.size
        lines.append(
            f"  [{f.offset}:{end})  {f.name}: {descriptors.java_name(f.descriptor)}"
            f"  (from {f.declaring_class})"
        )
    return "\n".join(lines)
