"""Shared benchmark utilities.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md's experiment index), prints it, and archives it under
``benchmarks/results/`` so EXPERIMENTS.md can cite the exact output.

Scale knob: ``REPRO_BENCH_SCALE`` (float, default 1.0) multiplies each
benchmark's default workload scale — raise it for higher-fidelity (slower)
runs; results are reported in simulated time, so ratios are stable across
scales.
"""

import json
import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale(default: float = 1.0) -> float:
    return default * float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def publish(name: str, text: str) -> None:
    """Print a report and archive it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_json(name: str, result) -> pathlib.Path:
    """Archive a machine-readable result (dict/list of plain values) as
    ``benchmarks/results/<name>.json``, for tooling that tracks results
    across runs (the human-readable report still goes through publish)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(
        json.dumps(result, indent=2, sort_keys=True, default=str) + "\n"
    )
    return path
