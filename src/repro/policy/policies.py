"""Send policies as declarative decision tables.

A policy is a :class:`DecisionTable`: an ordered list of
``Rule(reason, when, make)`` rows walked top to bottom; the first row
whose predicate matches the epoch's :class:`ChannelSignals` emits the
:class:`SendPlan` (stamped with the rule's reason and the table's name).
Every table shares the same guard prefix — forced resync, delta declined,
heterogeneous layout, first epoch, GC moved the record — so the protocol
invariants hold whatever policy sits below them.

Four policies behind the one protocol:

* :class:`AlwaysFull` / :class:`AlwaysDelta` — the static corners, the
  hand-picked baselines B-POLICY measures the adaptive engine against.
* :class:`CrossoverPolicy` — the mutation-byte crossover that used to be
  hardcoded in ``repro/delta/policy.py`` (§4.3's full-vs-delta argument),
  now one table row.  Behavior-identical to the legacy ``DeltaPolicy``,
  including the post-encode budget and the negative-crossover degenerate
  case (``byte_crossover < 0`` forces full every epoch).
* :class:`AdaptivePolicy` — the closed loop: EWMA-smoothed byte fraction
  with a hysteresis band (enter full above ``enter_full``, return to
  delta only below ``exit_full`` — oscillating workloads don't flap),
  and measured-bandwidth stream selection (a full resync whose estimated
  wire time exceeds ``parallel_wire_seconds`` asks for ``max_streams``;
  the capability clamp bounds it).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence

from repro.policy.plan import SendPlan
from repro.policy.signals import ChannelSignals


class PolicyError(RuntimeError):
    pass


@dataclasses.dataclass(frozen=True)
class Rule:
    """One table row: first matching predicate wins."""

    reason: str
    when: Callable[[ChannelSignals], bool]
    make: Callable[[ChannelSignals], SendPlan]


class DecisionTable:
    """An ordered rule list behind the one ``decide(signals)`` protocol."""

    name = "table"

    def __init__(self, name: str, rules: Sequence[Rule]) -> None:
        self.name = name
        self.rules = list(rules)

    def decide(self, signals: ChannelSignals) -> SendPlan:
        for rule in self.rules:
            if rule.when(signals):
                plan = rule.make(signals)
                return dataclasses.replace(
                    plan, reason=rule.reason, policy=self.name
                )
        raise PolicyError(
            f"decision table {self.name!r} has no matching rule "
            f"(epoch {signals.epoch} to {signals.destination!r})"
        )

    def rule_reasons(self) -> List[str]:
        return [rule.reason for rule in self.rules]


# ---------------------------------------------------------------------------
# plan constructors
# ---------------------------------------------------------------------------

def _bare_full(_signals: ChannelSignals) -> SendPlan:
    """A guard-rule full: no mutation observation backs it, so it carries
    the legacy zero rate/estimate (``EpochDecision`` parity)."""
    return SendPlan(mode="full")


def _measured_full(signals: ChannelSignals, streams: int = 1,
                   digest: bool = False,
                   compact: bool = False) -> SendPlan:
    return SendPlan(
        mode="full", streams=streams, digest=digest,
        compact_headers=compact,
        mutation_rate=signals.dirty_fraction,
        estimated_bytes=signals.estimated_delta_bytes,
    )


def _delta(signals: ChannelSignals,
           byte_budget: Optional[float] = None,
           digest: bool = False) -> SendPlan:
    return SendPlan(
        mode="delta", digest=digest, byte_budget=byte_budget,
        mutation_rate=signals.dirty_fraction,
        estimated_bytes=signals.estimated_delta_bytes,
    )


def guard_rules(first_epoch_digest: bool = False) -> List[Rule]:
    """The shared guard prefix every policy table starts with."""
    def first_full(signals: ChannelSignals) -> SendPlan:
        return SendPlan(mode="full", digest=first_epoch_digest)

    return [
        Rule("forced", lambda s: s.forced_full, _bare_full),
        Rule("delta_disabled", lambda s: not s.delta_capable, _bare_full),
        Rule("heterogeneous", lambda s: s.heterogeneous, _bare_full),
        Rule("first_epoch", lambda s: s.first_epoch, first_full),
        Rule("gc_moved", lambda s: s.gc_moved, _bare_full),
    ]


# ---------------------------------------------------------------------------
# the policies
# ---------------------------------------------------------------------------

class AlwaysFull(DecisionTable):
    """Static corner: every epoch FULL, optionally over N streams."""

    def __init__(self, streams: int = 1, digest: bool = False,
                 compact_headers: bool = False) -> None:
        self.streams = max(1, int(streams))
        name = "always_full" if self.streams == 1 \
            else f"always_full[{self.streams}]"
        super().__init__(name, guard_rules() + [
            Rule("static_full", lambda s: True,
                 lambda s: _measured_full(
                     s, streams=self.streams, digest=digest,
                     compact=compact_headers)),
        ])


class AlwaysDelta(DecisionTable):
    """Static corner: every epoch DELTA, no byte budget (never reverts
    post-encode) — the baseline that shows where deltas stop paying."""

    def __init__(self) -> None:
        super().__init__("always_delta", guard_rules() + [
            Rule("delta", lambda s: True, _delta),
        ])


class CrossoverPolicy(DecisionTable):
    """The legacy mutation-byte crossover as one table row."""

    def __init__(self, byte_crossover: float = 0.5) -> None:
        self.byte_crossover = byte_crossover
        super().__init__("crossover", guard_rules() + [
            Rule("mutation_crossover",
                 lambda s: (s.estimated_delta_bytes
                            > byte_crossover * s.resident_bytes),
                 _measured_full),
            Rule("delta", lambda s: True,
                 lambda s: _delta(
                     s, byte_budget=byte_crossover * s.resident_bytes)),
        ])


class AdaptivePolicy(DecisionTable):
    """The closed loop: EWMA byte fraction + hysteresis + bandwidth."""

    def __init__(
        self,
        enter_full: float = 0.5,
        exit_full: float = 0.35,
        max_streams: int = 4,
        parallel_wire_seconds: float = 0.25,
        digest_bootstrap: bool = True,
    ) -> None:
        if exit_full > enter_full:
            raise PolicyError(
                f"hysteresis band inverted: exit_full {exit_full} > "
                f"enter_full {enter_full}"
            )
        self.enter_full = enter_full
        self.exit_full = exit_full
        self.max_streams = max(1, int(max_streams))
        self.parallel_wire_seconds = parallel_wire_seconds
        super().__init__(
            "adaptive",
            guard_rules(first_epoch_digest=digest_bootstrap) + [
                Rule("mutation_crossover", self._in_full_regime,
                     self._full_plan),
                Rule("delta", lambda s: True,
                     lambda s: _delta(
                         s, byte_budget=self.enter_full * s.resident_bytes)),
            ])

    def _fraction(self, signals: ChannelSignals) -> float:
        if signals.byte_fraction_ewma is not None:
            return signals.byte_fraction_ewma
        return signals.byte_fraction

    def _in_full_regime(self, signals: ChannelSignals) -> bool:
        fraction = self._fraction(signals)
        if signals.last_mode == "full":
            # Already in the full regime: stay until the smoothed
            # fraction drops *below the band* — an oscillating mutation
            # rate straddling one threshold cannot flap the mode.
            return fraction > self.exit_full
        return fraction > self.enter_full

    def _full_plan(self, signals: ChannelSignals) -> SendPlan:
        streams = 1
        if (self.max_streams > 1 and signals.root_count > 1
                and signals.bandwidth_bps):
            wire_seconds = signals.resident_bytes / signals.bandwidth_bps
            if wire_seconds > self.parallel_wire_seconds:
                streams = self.max_streams
        return _measured_full(signals, streams=streams)


# ---------------------------------------------------------------------------
# name resolution
# ---------------------------------------------------------------------------

_FACTORIES = {
    "crossover": CrossoverPolicy,
    "adaptive": AdaptivePolicy,
    "full": AlwaysFull,
    "always_full": AlwaysFull,
    "delta": AlwaysDelta,
    "always_delta": AlwaysDelta,
}


def resolve_policy(policy) -> DecisionTable:
    """A :class:`DecisionTable` from a name or an instance."""
    if isinstance(policy, DecisionTable):
        return policy
    if isinstance(policy, str):
        factory = _FACTORIES.get(policy)
        if factory is None:
            raise PolicyError(
                f"unknown policy {policy!r} "
                f"(known: {', '.join(sorted(_FACTORIES))})"
            )
        return factory()
    raise PolicyError(
        f"cannot resolve a send policy from {type(policy).__name__}"
    )
