"""Generational garbage collection (Parallel Scavenge semantics).

The paper modifies OpenJDK 8's default collector; Skyway interacts with it
in two ways this module must support:

* received input buffers live in the **old generation** and their outgoing
  pointers are made GC-visible through **card-table updates** (paper §4.3);
* the sender stores buffer positions in the ``baddr`` header word — those
  are *buffer-relative* values, not heap addresses, so the collector copies
  them verbatim and never "fixes" them.

Two collections are provided:

``minor``
    A Cheney-style scavenge of the young generation.  Roots are the handle
    table plus old→young pointers discovered by scanning dirty cards.
    Survivors age; objects past the tenuring threshold (or overflowing the
    survivor space) are promoted to the old generation.  Promotion failure
    (a full old generation mid-scavenge) rolls the whole scavenge back via
    an undo log and re-raises, so the caller can fall back to a full
    collection over an intact heap — the moral equivalent of HotSpot's
    promotion-failure handling.

``full``
    A copying compaction: the live graph is traced from the handle table
    and evacuated into a freshly packed old generation (everything is
    tenured), young spaces are reset, and the card table is rebuilt.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro import obs
from repro.heap import markword
from repro.heap.handles import HandleTable
from repro.heap.heap import ManagedHeap, NULL, OutOfMemoryError, Region
from repro.heap.layout import OBJECT_ALIGNMENT, align_up

_REF = "Ljava.lang.Object;"


@dataclasses.dataclass
class GCStats:
    minor_collections: int = 0
    full_collections: int = 0
    bytes_scavenged: int = 0
    bytes_promoted: int = 0
    bytes_compacted: int = 0


class GarbageCollector:
    """Collector for one :class:`ManagedHeap` with one root set."""

    def __init__(
        self,
        heap: ManagedHeap,
        handles: HandleTable,
        tenuring_threshold: int = 6,
    ) -> None:
        if not 1 <= tenuring_threshold <= markword.MAX_AGE:
            raise ValueError(f"bad tenuring threshold: {tenuring_threshold}")
        self.heap = heap
        self.handles = handles
        self.tenuring_threshold = tenuring_threshold
        self.stats = GCStats()
        self._undo = None

    # ------------------------------------------------------------------
    # minor collection (scavenge)
    # ------------------------------------------------------------------

    def minor(self) -> None:
        with obs.span("gc.minor"):
            self._minor()

    def _minor(self) -> None:
        heap = self.heap
        to_space = heap.survivor_to
        if to_space.used:
            raise RuntimeError("to-space not empty before scavenge")

        self._begin_undo_log()
        try:
            self._scavenge(to_space)
        except OutOfMemoryError:
            # Promotion failure: undo every effect so the heap is exactly
            # as before the scavenge, then let the caller run a full GC.
            self._rollback()
            raise
        finally:
            self._undo = None

        # Young spaces flip.
        heap.eden.reset()
        heap.survivor_from.reset()
        heap.survivor_from, heap.survivor_to = heap.survivor_to, heap.survivor_from
        self._rebuild_card_table()
        self.stats.minor_collections += 1

    def _scavenge(self, to_space: Region) -> None:
        heap = self.heap
        # Scan cursors: objects appended to these regions from here on are
        # fresh copies that the Cheney scan must visit.
        to_cursor = [0]
        old_cursor = [len(heap.old.object_starts)]

        # Evacuate roots: handles first.
        for handle in self.handles.roots():
            new_address = self._evacuate(handle.address)
            if new_address != handle.address:
                self._undo["handles"].append((handle, handle.address))
                handle.address = new_address

        # Then old->young pointers found through dirty cards.  Cards were
        # dirtied by the write barrier; promoted copies land past
        # ``old_cursor`` and are handled by the scan instead.
        old_top_at_start = self._undo["old_top"]
        for lo, hi in list(heap.card_table.dirty_ranges()):
            for obj in self._objects_overlapping(heap.old, lo, hi):
                for offset in heap.reference_offsets(obj):
                    ref = heap.read_word(obj + offset)
                    if ref != NULL and heap.is_young(ref):
                        if obj < old_top_at_start:
                            self._undo["slots"].append((obj + offset, ref))
                        heap.write_slot(obj, offset, _REF, self._evacuate(ref))

        # Cheney scan to quiescence: scanning either destination region can
        # evacuate more objects into both, so loop until neither advances.
        progress = True
        while progress:
            progress = self._scan_from(to_space, to_cursor)
            progress |= self._scan_from(heap.old, old_cursor)

    # -- scavenge undo log (promotion-failure recovery) --------------------

    def _begin_undo_log(self) -> None:
        heap = self.heap
        self._undo = {
            "marks": [],      # (from-space address, original mark word)
            "slots": [],      # (absolute slot address, original word)
            "handles": [],    # (handle, original address)
            "old_top": heap.old.top,
            "old_count": len(heap.old.object_starts),
            "cards": heap.card_table.snapshot(),
        }

    def _rollback(self) -> None:
        heap = self.heap
        undo = self._undo
        for address, mark in undo["marks"]:
            heap.write_mark(address, mark)
        for slot, word in undo["slots"]:
            heap.write_word(slot, word)
        for handle, address in undo["handles"]:
            handle.address = address
        heap.old.top = undo["old_top"]
        del heap.old.object_starts[undo["old_count"]:]
        heap.survivor_to.reset()
        heap.card_table.restore(undo["cards"])

    def _evacuate(self, address: int) -> int:
        """Copy a young object out of the collected space, returning its new
        address; idempotent through forwarding pointers."""
        heap = self.heap
        if address == NULL or not heap.is_young(address):
            return address
        if heap.survivor_to.contains(address):
            return address  # already a fresh copy
        mark = heap.read_mark(address)
        if markword.is_forwarded(mark):
            return markword.forwarding_target(mark)

        size = heap.object_size(address)
        age = markword.get_age(mark)
        target_region = self._choose_target(size, age)
        new_address = self._raw_copy(address, size, target_region)

        # Age the copy (promotions ignore age); preserve hash & lock state.
        new_mark = markword.set_age(mark, min(age + 1, markword.MAX_AGE))
        heap.write_mark(new_address, new_mark)
        self._undo["marks"].append((address, mark))
        heap.write_mark(address, markword.make_forwarding(new_address))

        self.stats.bytes_scavenged += size
        if target_region is heap.old:
            self.stats.bytes_promoted += size
        return new_address

    def _choose_target(self, size: int, age: int) -> Region:
        heap = self.heap
        if age + 1 >= self.tenuring_threshold:
            return heap.old
        if heap.survivor_to.free >= align_up(size, OBJECT_ALIGNMENT):
            return heap.survivor_to
        return heap.old  # survivor overflow promotes

    def _raw_copy(self, address: int, size: int, region: Region) -> int:
        heap = self.heap
        aligned = align_up(size, OBJECT_ALIGNMENT)
        if region.free < aligned:
            raise OutOfMemoryError(
                f"{region.name} full during scavenge (need {aligned} bytes)"
            )
        new_address = region.top
        region.top += aligned
        region.object_starts.append(new_address)
        heap.write_bytes(new_address, heap.read_bytes(address, size))
        return new_address

    def _scan_from(self, region: Region, cursor: List[int]) -> bool:
        """Visit objects appended to ``region`` since ``cursor``, evacuating
        their young referents; returns whether anything was scanned."""
        heap = self.heap
        starts = region.object_starts
        scanned = False
        while cursor[0] < len(starts):
            obj = starts[cursor[0]]
            cursor[0] += 1
            scanned = True
            for offset in heap.reference_offsets(obj):
                ref = heap.read_word(obj + offset)
                if ref != NULL and heap.is_young(ref):
                    heap.write_slot(obj, offset, _REF, self._evacuate(ref))
        return scanned

    def _objects_overlapping(self, region: Region, lo: int, hi: int) -> List[int]:
        """Objects whose byte range intersects ``[lo, hi)`` (card scanning)."""
        heap = self.heap
        result = []
        for obj in region.object_starts:
            if obj >= hi:
                break
            if obj + heap.object_size(obj) > lo:
                result.append(obj)
        return result

    def _rebuild_card_table(self) -> None:
        """Re-derive dirty cards: any old-gen slot holding a young pointer."""
        heap = self.heap
        heap.card_table.clear()
        for obj in heap.old.object_starts:
            for offset in heap.reference_offsets(obj):
                ref = heap.read_word(obj + offset)
                if ref != NULL and heap.is_young(ref):
                    heap.card_table.mark(obj + offset)

    # ------------------------------------------------------------------
    # full collection (copying compaction)
    # ------------------------------------------------------------------

    def full(self) -> None:
        with obs.span("gc.full"):
            self._full()

    def _full(self) -> None:
        heap = self.heap

        # 1. Trace the live graph (BFS from handles), assigning each live
        #    object a new address packed from old.start in discovery order.
        forwarding: Dict[int, int] = {}
        order: List[int] = []
        cursor = heap.old.start
        queue: List[int] = [h.address for h in self.handles.roots()]
        head = 0
        while head < len(queue):
            addr = queue[head]
            head += 1
            if addr == NULL or addr in forwarding:
                continue
            size = align_up(heap.object_size(addr), OBJECT_ALIGNMENT)
            if cursor + size > heap.old.end:
                raise OutOfMemoryError("old generation full during full GC")
            forwarding[addr] = cursor
            order.append(addr)
            cursor += size
            for offset in heap.reference_offsets(addr):
                ref = heap.read_word(addr + offset)
                if ref != NULL:
                    queue.append(ref)

        # 2. Stage the compacted image, rewriting references via the map.
        staging = bytearray(cursor - heap.old.start)
        new_starts: List[int] = []
        for addr in order:
            size = heap.object_size(addr)
            new_addr = forwarding[addr]
            rel = new_addr - heap.old.start
            staging[rel : rel + size] = heap.read_bytes(addr, size)
            new_starts.append(new_addr)
        for addr in order:
            rel = forwarding[addr] - heap.old.start
            for offset in heap.reference_offsets(addr):
                ref = heap.read_word(addr + offset)
                if ref != NULL:
                    target = forwarding[ref].to_bytes(8, "little")
                    staging[rel + offset : rel + offset + 8] = target
            # Everything is tenured now; reset age, keep hash & lock state.
            mark = int.from_bytes(staging[rel : rel + 8], "little")
            staging[rel : rel + 8] = markword.set_age(mark, 0).to_bytes(8, "little")

        # 3. Install the new old generation and reset young spaces.
        heap.old.reset()
        heap.write_bytes(heap.old.start, bytes(staging))
        heap.old.top = heap.old.start + len(staging)
        heap.old.object_starts = new_starts
        heap.eden.reset()
        heap.survivor_from.reset()
        heap.survivor_to.reset()

        # 4. Update roots; no young objects remain so the card table clears.
        for handle in self.handles.roots():
            handle.address = forwarding[handle.address]
        heap.card_table.clear()

        self.stats.full_collections += 1
        self.stats.bytes_compacted += len(staging)
