"""Tests for the experiment harness and report renderers."""

import pytest

from repro.bench.extra_bytes import average_composition, measure_extra_byte_composition
from repro.bench.flink_experiments import run_flink_query
from repro.bench.memory import measure_baddr_overhead
from repro.bench.report import (
    format_breakdown_table,
    format_bytes_table,
    format_kv_section,
    format_normalized_table,
    format_table1,
    geometric_mean,
)
from repro.bench.spark_experiments import (
    check_results_agree,
    run_spark_app,
    summarize_table2,
)
from repro.datasets import table1_rows
from repro.simtime import Breakdown


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_ignores_nonpositive(self):
        assert geometric_mean([0.0, 2.0, 8.0]) == pytest.approx(4.0)


class TestRenderers:
    def test_breakdown_table_contains_components(self):
        rows = {"kryo": Breakdown(computation=1.0, serialization=0.5)}
        text = format_breakdown_table(rows, "T", "ms")
        assert "kryo" in text
        assert "Serialization" in text
        assert "1500.000" in text  # 1.5s total in ms

    def test_bytes_table(self):
        text = format_bytes_table({"java": (10, 20)}, "B")
        assert "10" in text and "30" in text

    def test_normalized_table_ranges(self):
        norms = {"Skyway": [
            {"overall": 0.5, "ser": 1.0, "write": 1.0, "des": 1.0,
             "read": 1.0, "size": 2.0},
            {"overall": 2.0, "ser": 1.0, "write": 1.0, "des": 1.0,
             "read": 1.0, "size": 2.0},
        ]}
        text = format_normalized_table(norms, "T2")
        assert "0.50 ~  2.00 (1.00)" in text

    def test_normalized_table_skips_infinite(self):
        norms = {"X": [{"overall": float("inf"), "ser": 1.0, "write": 1.0,
                        "des": 1.0, "read": 1.0, "size": 1.0}]}
        text = format_normalized_table(norms, "T")
        assert "-" in text

    def test_table1_renderer(self):
        text = format_table1(table1_rows(scale=0.02))
        assert "LiveJournal" in text and "Twitter-2010" in text

    def test_kv_section(self):
        text = format_kv_section("Title", {"a": 1.23456, "b": "x"})
        assert "Title" in text and "1.235" in text and "x" in text


class TestSparkRunners:
    def test_run_spark_app_returns_breakdown(self):
        result = run_spark_app("WC", "LJ", "kryo", scale=0.01)
        assert result.breakdown.total > 0
        assert result.breakdown.serialization > 0
        assert result.app == "WC"

    def test_summarize_table2_normalizes(self):
        runs = {}
        for s in ("java", "kryo"):
            runs[("WC", "LJ", s)] = run_spark_app("WC", "LJ", s, scale=0.01)
        summary = summarize_table2(runs)
        assert len(summary["Kryo"]) == 1
        assert summary["Skyway"] == []  # no skyway run provided
        assert 0 < summary["Kryo"][0]["overall"] < 1.5

    def test_check_results_agree_detects_mismatch(self):
        runs = {}
        for s in ("java", "kryo"):
            runs[("WC", "LJ", s)] = run_spark_app("WC", "LJ", s, scale=0.01)
        assert check_results_agree(runs) == []
        bad = dict(runs)
        import dataclasses
        bad[("WC", "LJ", "kryo")] = dataclasses.replace(
            bad[("WC", "LJ", "kryo")], result_digest="corrupted")
        assert check_results_agree(bad) == [("WC", "LJ")]


class TestFlinkRunner:
    def test_run_flink_query_both_modes(self):
        for mode in ("builtin", "skyway"):
            result = run_flink_query("QA", mode, micro_scale=0.2)
            assert result.rows > 0
            assert result.breakdown.total > 0


class TestMemoryAndBytes:
    def test_baddr_overhead_in_plausible_band(self):
        overheads = measure_baddr_overhead(apps=("PR", "TC"), scale=0.1)
        for app, v in overheads.items():
            assert 0.0 < v < 0.35, app
        # Array-heavy TC amortizes headers better than tuple-heavy PR.
        assert overheads["TC"] < overheads["PR"]

    def test_extra_byte_composition_sums_to_one(self):
        per_app = measure_extra_byte_composition(apps=("PR",), scale=0.05)
        comp = average_composition(per_app)
        assert comp["headers"] + comp["padding"] + comp["pointers"] == \
            pytest.approx(1.0)
        assert comp["headers"] > comp["pointers"]


class TestCli:
    def test_cli_table1(self, capsys):
        from repro.bench.__main__ import main
        assert main(["table1", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "LiveJournal" in out

    def test_cli_memory(self, capsys):
        from repro.bench.__main__ import main
        assert main(["memory", "--scale", "0.05"]) == 0
        assert "baddr" in capsys.readouterr().out

    def test_cli_rejects_unknown(self):
        from repro.bench.__main__ import main
        with pytest.raises(SystemExit):
            main(["nope"])
