"""ConnectedComponents via label propagation (paper §5.2: "a label
propagation application, which finishes in 3-5 iterations")."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.spark.context import SparkContext


def connected_components(
    sc: SparkContext,
    edges: List[Tuple[int, int]],
    max_iterations: int = 20,
    num_partitions: int = None,
) -> Dict[int, int]:
    """Assign every vertex the minimum vertex id of its component."""
    # Undirected adjacency.
    adjacency = (
        sc.parallelize(edges, num_partitions)
        .flat_map(lambda e: [(e[0], e[1]), (e[1], e[0])], name="undirect")
        .group_by_key()
        .cache()
    )
    labels = adjacency.map(lambda kv: (kv[0], kv[0]), name="init-labels")

    for _ in range(max_iterations):
        # Propagate each vertex's label to its neighbors; keep the minimum.
        propagated = adjacency.join(labels).flat_map(
            lambda kv: [(n, kv[1][1]) for n in kv[1][0]] + [(kv[0], kv[1][1])],
            name="propagate",
        )
        new_labels = propagated.reduce_by_key(min)
        # Convergence check (driver-side, like Spark accumulator patterns).
        old = dict(labels.collect())
        new = dict(new_labels.collect())
        labels = new_labels
        if old == new:
            break

    return dict(labels.collect())
