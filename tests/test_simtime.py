"""Unit tests for the simulated-time substrate."""

import pytest

from repro.simtime import Breakdown, Category, CostModel, DEFAULT_COST_MODEL, SimClock


class TestSimClock:
    def test_starts_empty(self):
        clock = SimClock()
        assert clock.total() == 0.0
        assert all(v == 0.0 for v in clock.totals().values())

    def test_charge_default_category_is_computation(self):
        clock = SimClock()
        clock.charge(1.5)
        assert clock.total(Category.COMPUTATION) == 1.5
        assert clock.total() == 1.5

    def test_charge_explicit_category(self):
        clock = SimClock()
        clock.charge(2.0, Category.SERIALIZATION)
        assert clock.total(Category.SERIALIZATION) == 2.0
        assert clock.total(Category.COMPUTATION) == 0.0

    def test_negative_charge_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.charge(-1.0)

    def test_phase_context_routes_charges(self):
        clock = SimClock()
        with clock.phase(Category.DESERIALIZATION):
            clock.charge(0.25)
        clock.charge(0.5)
        assert clock.total(Category.DESERIALIZATION) == 0.25
        assert clock.total(Category.COMPUTATION) == 0.5

    def test_nested_phases_restore_outer(self):
        clock = SimClock()
        with clock.phase(Category.SERIALIZATION):
            with clock.phase(Category.WRITE_IO):
                clock.charge(1.0)
            clock.charge(2.0)
        assert clock.total(Category.WRITE_IO) == 1.0
        assert clock.total(Category.SERIALIZATION) == 2.0

    def test_cannot_pop_base_context(self):
        clock = SimClock()
        with pytest.raises(RuntimeError):
            clock.pop()

    def test_snapshot_and_since(self):
        clock = SimClock()
        clock.charge(1.0, Category.READ_IO)
        snap = clock.snapshot()
        clock.charge(0.5, Category.READ_IO)
        delta = clock.since(snap)
        assert delta[Category.READ_IO] == pytest.approx(0.5)
        assert delta[Category.COMPUTATION] == 0.0

    def test_reset(self):
        clock = SimClock()
        clock.charge(3.0, Category.NETWORK)
        clock.reset()
        assert clock.total() == 0.0

    def test_merge(self):
        a, b = SimClock("a"), SimClock("b")
        a.charge(1.0, Category.COMPUTATION)
        b.charge(2.0, Category.COMPUTATION)
        b.charge(0.5, Category.NETWORK)
        a.merge(b)
        assert a.total(Category.COMPUTATION) == 3.0
        assert a.total(Category.NETWORK) == 0.5


class TestCostModel:
    def test_default_exists(self):
        assert isinstance(DEFAULT_COST_MODEL, CostModel)

    def test_reflection_much_costlier_than_generated_access(self):
        m = DEFAULT_COST_MODEL
        assert m.reflective_access > 5 * m.generated_access

    def test_memcpy_linear(self):
        m = DEFAULT_COST_MODEL
        assert m.memcpy(2000) == pytest.approx(2 * m.memcpy(1000))

    def test_network_transfer_includes_latency(self):
        m = DEFAULT_COST_MODEL
        assert m.network_transfer(0) == pytest.approx(m.network_latency)
        assert m.network_transfer(1_000_000) > m.network_transfer(0)

    def test_disk_costs_positive_and_read_faster_than_write(self):
        m = DEFAULT_COST_MODEL
        assert m.disk_read_per_byte < m.disk_write_per_byte
        assert m.disk_write(1024) > 0

    def test_scaled_override(self):
        m = DEFAULT_COST_MODEL.scaled(reflective_access=1.0)
        assert m.reflective_access == 1.0
        assert m.generated_access == DEFAULT_COST_MODEL.generated_access

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COST_MODEL.reflective_access = 0.0  # type: ignore[misc]

    def test_string_cost(self):
        m = DEFAULT_COST_MODEL
        assert m.string_cost("java.lang.Object") == pytest.approx(
            len("java.lang.Object") * m.string_char
        )


class TestBreakdown:
    def test_total_sums_five_components(self):
        b = Breakdown(
            computation=1, serialization=2, write_io=3, deserialization=4, read_io=5
        )
        assert b.total == 15

    def test_from_totals_folds_network_into_read_io(self):
        totals = {Category.READ_IO: 1.0, Category.NETWORK: 0.5}
        b = Breakdown.from_totals(totals)
        assert b.read_io == pytest.approx(1.5)
        assert b.network == pytest.approx(0.5)

    def test_sd_fraction(self):
        b = Breakdown(computation=4, serialization=3, deserialization=3)
        assert b.sd_fraction == pytest.approx(0.6)

    def test_sd_fraction_empty(self):
        assert Breakdown().sd_fraction == 0.0

    def test_add_and_sum(self):
        a = Breakdown(computation=1, bytes_written=10)
        b = Breakdown(computation=2, bytes_written=20, remote_bytes=5)
        s = Breakdown.sum([a, b])
        assert s.computation == 3
        assert s.bytes_written == 30
        assert s.remote_bytes == 5

    def test_normalized_to(self):
        base = Breakdown(
            computation=10, serialization=10, write_io=10,
            deserialization=10, read_io=10, bytes_written=100,
        )
        mine = Breakdown(
            computation=10, serialization=5, write_io=10,
            deserialization=2, read_io=10, bytes_written=150,
        )
        norm = mine.normalized_to(base)
        assert norm["ser"] == pytest.approx(0.5)
        assert norm["des"] == pytest.approx(0.2)
        assert norm["size"] == pytest.approx(1.5)
        assert norm["overall"] == pytest.approx(37 / 50)

    def test_normalized_to_zero_baseline(self):
        norm = Breakdown(serialization=1.0).normalized_to(Breakdown())
        assert norm["ser"] == float("inf")
        assert norm["des"] == 0.0

    def test_as_dict_round_trip_keys(self):
        d = Breakdown(computation=1.0).as_dict()
        assert d["computation"] == 1.0
        assert "total" in d and "bytes_written" in d
