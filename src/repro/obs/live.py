"""The fleet telemetry plane: delta encoding, bounded series, stragglers.

PR 5's obs stack sees deeply into *one* process; this module is the part
that makes a whole fleet observable while it runs, with no extra
connections and bounded memory everywhere:

* :class:`TelemetrySampler` — worker side.  Folds the local
  :class:`~repro.obs.registry.MetricsRegistry` (counters / gauges /
  histograms, flattened numeric source leaves such as GC pause totals and
  aserve loop counters) into a *compact delta* since the last acked
  sample: only changed series ship, bucket counts ship as deltas, and the
  flight-recorder's new entries ride along.  An unacked sample (the
  heartbeat that carried it failed) is **merged** into the next one, so a
  coordinator outage loses no counts — sequence numbers stay exact.

* :class:`WorkerTelemetry` / :class:`FleetTelemetry` — coordinator side.
  Each worker gets cumulative totals plus a bounded ring of recent samples
  (``window`` deque) and a bounded ring of flight-recorder entries; both
  survive the worker's death, which is what makes the postmortem op work.
  :meth:`FleetTelemetry.ingest` validates the payload shape hard: any
  malformed field raises :class:`TelemetryError` (the coordinator maps it
  onto a typed ``ClusterProtocolError`` ERROR frame) — a fuzzer bit-flip
  must never hang or kill the membership service.

* **Straggler detection** — :meth:`FleetTelemetry.detect` computes each
  worker's windowed mean epoch-receive latency and bytes/sec bandwidth,
  takes the fleet median, and flags workers beyond
  ``straggler_factor`` × median (with an absolute floor so microsecond
  jitter can't flag an idle fleet).  Flags are edge-triggered: one
  ``straggler`` event on the way up, one ``recovered`` on the way down,
  into a bounded event ring the driver reads.

Import discipline: stdlib only, like the rest of :mod:`repro.obs` — the
cluster layer imports *this*, never the reverse.
"""

from __future__ import annotations

import math
import statistics
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.obs.recorder import FlightRecorder
from repro.obs.registry import (
    DEFAULT_BUCKET_BOUNDS,
    MetricsRegistry,
    quantile_from_buckets,
)

#: Telemetry payload schema version (bumped on incompatible change; the
#: coordinator rejects versions it does not speak).
TELEMETRY_VERSION = 1

#: Per-worker bounded sample window at the coordinator: 120 samples at
#: the default 0.2 s heartbeat ≈ the last 24 s of fleet history.
DEFAULT_WINDOW = 120

#: Flight-recorder entries kept per worker at the coordinator.
DEFAULT_RECORDER_KEEP = 256

#: Straggler rule defaults: flagged when windowed mean epoch-receive
#: latency exceeds ``factor`` × fleet median, the median is meaningful
#: (>= ``min_seconds``), and at least ``min_samples`` epochs landed in
#: the window.  ``factor`` also gates recovery (drop back under it).
DEFAULT_STRAGGLER_FACTOR = 3.0
DEFAULT_STRAGGLER_MIN_SAMPLES = 3
DEFAULT_STRAGGLER_MIN_SECONDS = 1e-3

#: The histogram series straggler latency is read from (observed by the
#: worker around each epoch's receive — wire arrival included, so a paced
#: or congested link shows up here, not just a slow heap).
LATENCY_SERIES = "worker.epoch_receive_seconds"
#: Counter series feeding the bandwidth rollup.
BYTES_SERIES = "worker.epoch_bytes"
EPOCHS_SERIES = "worker.epochs"

#: Cap on recorder entries carried by one payload (merged retries could
#: otherwise grow without bound during a long coordinator outage).
MAX_RECORDER_ENTRIES = 512


class TelemetryError(ValueError):
    """A telemetry payload failed validation.  The coordinator maps this
    onto a typed ``ClusterProtocolError`` ERROR frame; it must never
    surface as a bare KeyError/TypeError that kills the connection."""


# ---------------------------------------------------------------------------
# worker side: the sampler
# ---------------------------------------------------------------------------

def _is_num(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool) \
        and math.isfinite(value)


def _flatten_numeric(prefix: str, value: Any, out: Dict[str, float]) -> None:
    if isinstance(value, Mapping):
        for k in value:
            key = f"{prefix}.{k}" if prefix else str(k)
            _flatten_numeric(key, value[k], out)
    elif _is_num(value):
        out[prefix] = float(value)


class TelemetrySampler:
    """Folds a registry (+ recorder + extras) into heartbeat-sized deltas.

    ``sample()`` returns the payload to piggyback; the caller reports the
    outcome with ``ack(seq)`` (delivered) or nothing (the next ``sample``
    merges the undelivered delta in).  Thread-safe: the membership beat
    runs on its own thread/loop.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        recorder: Optional[FlightRecorder] = None,
        extra: Optional[Callable[[], Mapping[str, Any]]] = None,
        include_sources: bool = True,
    ) -> None:
        self.registry = registry
        self.recorder = recorder
        self.extra = extra
        self.include_sources = include_sources
        self._lock = threading.Lock()
        self._seq = 0
        self._acked_seq = 0
        self._last_counters: Dict[str, float] = {}
        self._last_gauges: Dict[str, float] = {}
        self._last_hists: Dict[str, Dict[str, Any]] = {}
        self._rec_seq = 0
        self._pending: Optional[Dict[str, Any]] = None
        self.samples_taken = 0
        self.recorder_dropped = 0

    # -- collection --------------------------------------------------------

    def _gauge_view(self) -> Dict[str, float]:
        """Current gauges: registry gauges plus flattened numeric leaves
        of every snapshot source and the extra callable."""
        snap = self.registry.snapshot()
        gauges: Dict[str, float] = {
            k: float(v) for k, v in snap["gauges"].items() if _is_num(v)
        }
        if self.include_sources:
            for name, value in snap["sources"].items():
                _flatten_numeric(f"src.{name}", value, gauges)
        if self.extra is not None:
            try:
                _flatten_numeric("", dict(self.extra()), gauges)
            except Exception:  # noqa: BLE001 - extras are best-effort
                pass
        return gauges, snap

    def _hist_delta(self, key: str,
                    hist: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
        prev = self._last_hists.get(key)
        d_count = hist["count"] - (prev["count"] if prev else 0.0)
        if d_count <= 0:
            return None
        delta = {
            "count": d_count,
            "sum": hist["sum"] - (prev["sum"] if prev else 0.0),
            "min": hist["min"],
            "max": hist["max"],
        }
        buckets = hist.get("buckets")
        if buckets:
            prev_buckets = prev.get("buckets") if prev else None
            if prev_buckets and len(prev_buckets) == len(buckets):
                delta["buckets"] = [b - p for b, p
                                    in zip(buckets, prev_buckets)]
            else:
                delta["buckets"] = list(buckets)
        return delta

    def sample(self) -> Dict[str, Any]:
        """One delta payload since the last *acked* sample."""
        with self._lock:
            gauges, snap = self._gauge_view()
            counters: Dict[str, float] = snap["counters"]
            hists: Dict[str, Dict[str, Any]] = snap["histograms"]

            c_delta = {
                k: v - self._last_counters.get(k, 0.0)
                for k, v in counters.items()
                if v != self._last_counters.get(k, 0.0)
            }
            g_delta = {
                k: v for k, v in gauges.items()
                if v != self._last_gauges.get(k)
            }
            h_delta: Dict[str, Any] = {}
            for key, hist in hists.items():
                d = self._hist_delta(key, hist)
                if d is not None:
                    h_delta[key] = d

            rec: List[Dict[str, Any]] = []
            if self.recorder is not None:
                rec = self.recorder.drain_since(self._rec_seq)
                if rec:
                    self._rec_seq = rec[-1]["seq"]

            self._last_counters = dict(counters)
            self._last_gauges = dict(gauges)
            self._last_hists = {k: dict(v) for k, v in hists.items()}
            self._seq += 1
            self.samples_taken += 1

            payload: Dict[str, Any] = {
                "v": TELEMETRY_VERSION, "seq": self._seq, "t": time.time(),
            }
            if c_delta:
                payload["c"] = c_delta
            if g_delta:
                payload["g"] = g_delta
            if h_delta:
                payload["h"] = h_delta
            if rec:
                payload["rec"] = rec

            if self._pending is not None:
                payload = self._merge(self._pending, payload)
            self._pending = payload
            return payload

    def _merge(self, old: Dict[str, Any],
               new: Dict[str, Any]) -> Dict[str, Any]:
        """Fold an undelivered delta into the next one (counts add,
        gauges take the newest value, recorder entries concatenate up to
        :data:`MAX_RECORDER_ENTRIES`)."""
        merged: Dict[str, Any] = {
            "v": TELEMETRY_VERSION, "seq": new["seq"], "t": new["t"],
        }
        c = dict(old.get("c", {}))
        for k, v in new.get("c", {}).items():
            c[k] = c.get(k, 0.0) + v
        if c:
            merged["c"] = c
        g = dict(old.get("g", {}))
        g.update(new.get("g", {}))
        if g:
            merged["g"] = g
        h = {k: dict(v) for k, v in old.get("h", {}).items()}
        for k, d in new.get("h", {}).items():
            prev = h.get(k)
            if prev is None:
                h[k] = dict(d)
                continue
            prev["count"] += d["count"]
            prev["sum"] += d["sum"]
            prev["min"] = min(prev["min"], d["min"])
            prev["max"] = max(prev["max"], d["max"])
            if "buckets" in d and "buckets" in prev \
                    and len(prev["buckets"]) == len(d["buckets"]):
                prev["buckets"] = [a + b for a, b
                                   in zip(prev["buckets"], d["buckets"])]
            elif "buckets" in d:
                prev["buckets"] = list(d["buckets"])
        if h:
            merged["h"] = h
        rec = list(old.get("rec", [])) + list(new.get("rec", []))
        if len(rec) > MAX_RECORDER_ENTRIES:
            self.recorder_dropped += len(rec) - MAX_RECORDER_ENTRIES
            rec = rec[-MAX_RECORDER_ENTRIES:]
        if rec:
            merged["rec"] = rec
        return merged

    def ack(self, seq: int) -> None:
        """The payload carrying ``seq`` was delivered: stop re-merging it."""
        with self._lock:
            if self._pending is not None and self._pending["seq"] <= seq:
                self._pending = None
            self._acked_seq = max(self._acked_seq, seq)


# ---------------------------------------------------------------------------
# payload validation (the coordinator's fuzz armor)
# ---------------------------------------------------------------------------

def _require(cond: bool, what: str) -> None:
    if not cond:
        raise TelemetryError(f"telemetry payload rejected: {what}")


def _check_num_map(value: Any, what: str) -> Dict[str, float]:
    _require(isinstance(value, Mapping), f"{what} is not a mapping")
    out: Dict[str, float] = {}
    for k, v in value.items():
        _require(isinstance(k, str) and k, f"{what} key {k!r} is not a name")
        _require(_is_num(v), f"{what}[{k!r}] is not a finite number")
        out[k] = float(v)
    return out


def validate_telemetry(payload: Any) -> Dict[str, Any]:
    """Validate one piggybacked payload; returns it normalized.  Raises
    :class:`TelemetryError` on any malformed field — never KeyError /
    TypeError / unbounded allocation."""
    _require(isinstance(payload, Mapping), "payload is not a mapping")
    version = payload.get("v")
    _require(version == TELEMETRY_VERSION,
             f"unknown telemetry version {version!r}")
    seq = payload.get("seq")
    _require(isinstance(seq, int) and not isinstance(seq, bool) and seq > 0,
             f"seq {seq!r} is not a positive integer")
    t = payload.get("t")
    _require(_is_num(t), f"timestamp {t!r} is not a finite number")
    out: Dict[str, Any] = {"v": TELEMETRY_VERSION, "seq": seq,
                           "t": float(t)}
    if "c" in payload:
        out["c"] = _check_num_map(payload["c"], "counters")
    if "g" in payload:
        out["g"] = _check_num_map(payload["g"], "gauges")
    if "h" in payload:
        _require(isinstance(payload["h"], Mapping),
                 "histograms is not a mapping")
        hists: Dict[str, Dict[str, Any]] = {}
        for key, hist in payload["h"].items():
            _require(isinstance(key, str) and key,
                     f"histogram key {key!r} is not a name")
            _require(isinstance(hist, Mapping),
                     f"histogram {key!r} is not a mapping")
            entry: Dict[str, Any] = {}
            for field in ("count", "sum", "min", "max"):
                value = hist.get(field)
                _require(_is_num(value),
                         f"histogram {key!r}.{field} is not finite")
                entry[field] = float(value)
            _require(entry["count"] > 0,
                     f"histogram {key!r} carries no observations")
            buckets = hist.get("buckets")
            if buckets is not None:
                _require(isinstance(buckets, (list, tuple))
                         and len(buckets) <= len(DEFAULT_BUCKET_BOUNDS) + 1,
                         f"histogram {key!r}.buckets malformed")
                checked: List[float] = []
                for b in buckets:
                    _require(_is_num(b),
                             f"histogram {key!r} bucket count not finite")
                    checked.append(float(b))
                entry["buckets"] = checked
            hists[key] = entry
        out["h"] = hists
    if "rec" in payload:
        rec = payload["rec"]
        _require(isinstance(rec, (list, tuple))
                 and len(rec) <= MAX_RECORDER_ENTRIES,
                 "recorder block malformed or oversized")
        entries: List[Dict[str, Any]] = []
        for e in rec:
            _require(isinstance(e, Mapping), "recorder entry not a mapping")
            eseq = e.get("seq")
            _require(isinstance(eseq, int) and not isinstance(eseq, bool),
                     f"recorder entry seq {eseq!r} is not an integer")
            _require(isinstance(e.get("kind"), str),
                     "recorder entry has no kind")
            entries.append(dict(e))
        out["rec"] = entries
    return out


# ---------------------------------------------------------------------------
# coordinator side: per-worker state and fleet aggregation
# ---------------------------------------------------------------------------

class WorkerTelemetry:
    """One worker's accumulated telemetry at the coordinator.  Bounded:
    cumulative totals (dict of floats), a ring of recent samples, a ring
    of flight-recorder entries.  Kept after the worker dies — this *is*
    the postmortem."""

    def __init__(self, name: str, generation: int,
                 window: int = DEFAULT_WINDOW,
                 recorder_keep: int = DEFAULT_RECORDER_KEEP) -> None:
        self.name = name
        self.generation = generation
        self.window: deque = deque(maxlen=window)
        self.recorder: deque = deque(maxlen=recorder_keep)
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.hists: Dict[str, Dict[str, Any]] = {}
        self.last_seq = 0
        self.last_sample_t = 0.0
        self.samples = 0
        self.gaps = 0
        self.straggler_since: Optional[float] = None

    def ingest(self, payload: Dict[str, Any], generation: int) -> None:
        seq = payload["seq"]
        if generation != self.generation:
            # A fresh incarnation restarts its sampler sequence; totals
            # keep accumulating (they are fleet-lifetime totals).
            self.generation = generation
            self.last_seq = 0
        if seq <= self.last_seq:
            return  # duplicate (a retried beat); deltas already folded
        if self.last_seq and seq != self.last_seq + 1:
            self.gaps += 1
        self.last_seq = seq
        self.last_sample_t = payload["t"]
        self.samples += 1
        for k, v in payload.get("c", {}).items():
            self.counters[k] = self.counters.get(k, 0.0) + v
        self.gauges.update(payload.get("g", {}))
        for k, d in payload.get("h", {}).items():
            total = self.hists.get(k)
            if total is None:
                self.hists[k] = {
                    "count": d["count"], "sum": d["sum"],
                    "min": d["min"], "max": d["max"],
                    "buckets": list(d.get("buckets", [])),
                }
            else:
                total["count"] += d["count"]
                total["sum"] += d["sum"]
                total["min"] = min(total["min"], d["min"])
                total["max"] = max(total["max"], d["max"])
                buckets = d.get("buckets")
                if buckets:
                    if len(total["buckets"]) == len(buckets):
                        total["buckets"] = [a + b for a, b
                                            in zip(total["buckets"], buckets)]
                    else:
                        total["buckets"] = list(buckets)
        self.window.append(payload)
        for entry in payload.get("rec", []):
            self.recorder.append(entry)

    # -- windowed rollups --------------------------------------------------

    def _windowed_hist(self, series: str) -> Dict[str, float]:
        count = 0.0
        total = 0.0
        for sample in self.window:
            d = sample.get("h", {}).get(series)
            if d:
                count += d["count"]
                total += d["sum"]
        return {"count": count, "sum": total}

    def _windowed_counter(self, series: str) -> float:
        return sum(sample.get("c", {}).get(series, 0.0)
                   for sample in self.window)

    def rollup(self) -> Dict[str, Any]:
        """Windowed per-worker rollup: mean/p95 epoch-receive latency,
        effective bandwidth, epochs, GC pause total."""
        lat = self._windowed_hist(LATENCY_SERIES)
        bytes_window = self._windowed_counter(BYTES_SERIES)
        epochs_window = self._windowed_counter(EPOCHS_SERIES)
        mean = lat["sum"] / lat["count"] if lat["count"] else 0.0
        bandwidth = bytes_window / lat["sum"] if lat["sum"] > 0 else 0.0
        total_hist = self.hists.get(LATENCY_SERIES)
        p95 = (quantile_from_buckets(total_hist, 0.95)
               if total_hist else 0.0)
        gc_collections = 0.0
        for key, value in self.gauges.items():
            if key.startswith("src.gc.") and (
                    key.endswith(".minor_collections")
                    or key.endswith(".full_collections")):
                gc_collections += value
        return {
            "epoch_receive_mean_s": mean,
            "epoch_receive_p95_s": p95,
            "epochs_window": epochs_window,
            "epoch_samples_window": lat["count"],
            "bandwidth_bps": bandwidth,
            "bytes_window": bytes_window,
            "gc_collections": gc_collections,
        }

    def series_points(self, series: str) -> List[List[float]]:
        """``[t, value]`` points of one series across the window (counter
        and histogram-sum deltas per sample; gauges verbatim)."""
        points: List[List[float]] = []
        for sample in self.window:
            t = sample["t"]
            if series in sample.get("c", {}):
                points.append([t, sample["c"][series]])
            elif series in sample.get("g", {}):
                points.append([t, sample["g"][series]])
            else:
                d = sample.get("h", {}).get(series)
                if d:
                    points.append([t, d["sum"]])
        return points

    def series_names(self) -> List[str]:
        names = set(self.counters) | set(self.gauges) | set(self.hists)
        return sorted(names)

    def as_dict(self, include_window: bool = False) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "generation": self.generation,
            "last_seq": self.last_seq,
            "last_sample_t": self.last_sample_t,
            "samples": self.samples,
            "gaps": self.gaps,
            "window_len": len(self.window),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: {f: (list(v[f]) if f == "buckets" else v[f])
                               for f in v}
                           for k, v in self.hists.items()},
            "rollup": self.rollup(),
            "straggler": self.straggler_since is not None,
            "straggler_since": self.straggler_since,
        }
        if include_window:
            out["window"] = [dict(s) for s in self.window]
        return out


class FleetTelemetry:
    """All workers' telemetry plus fleet rollups and straggler state."""

    def __init__(
        self,
        window: int = DEFAULT_WINDOW,
        recorder_keep: int = DEFAULT_RECORDER_KEEP,
        straggler_factor: float = DEFAULT_STRAGGLER_FACTOR,
        straggler_min_samples: int = DEFAULT_STRAGGLER_MIN_SAMPLES,
        straggler_min_seconds: float = DEFAULT_STRAGGLER_MIN_SECONDS,
        event_keep: int = 256,
    ) -> None:
        self.window = window
        self.recorder_keep = recorder_keep
        self.straggler_factor = straggler_factor
        self.straggler_min_samples = straggler_min_samples
        self.straggler_min_seconds = straggler_min_seconds
        self._lock = threading.Lock()
        self._workers: Dict[str, WorkerTelemetry] = {}
        self.events: deque = deque(maxlen=event_keep)
        self._event_seq = 0
        self.samples_ingested = 0
        self.payloads_rejected = 0

    # -- ingest ------------------------------------------------------------

    def ingest(self, worker: str, generation: int, payload: Any) -> None:
        """Validate and fold one heartbeat-piggybacked payload.  Raises
        :class:`TelemetryError` on malformed input (after counting it)."""
        try:
            checked = validate_telemetry(payload)
        except TelemetryError:
            with self._lock:
                self.payloads_rejected += 1
            raise
        with self._lock:
            state = self._workers.get(worker)
            if state is None:
                state = self._workers[worker] = WorkerTelemetry(
                    worker, generation, window=self.window,
                    recorder_keep=self.recorder_keep,
                )
            state.ingest(checked, generation)
            self.samples_ingested += 1

    # -- reading -----------------------------------------------------------

    def worker(self, name: str) -> Optional[WorkerTelemetry]:
        with self._lock:
            return self._workers.get(name)

    def worker_names(self) -> List[str]:
        with self._lock:
            return sorted(self._workers)

    def fleet_rollup(self, alive: Optional[List[str]] = None
                     ) -> Dict[str, Any]:
        """Fleet-wide medians over the reporting (optionally alive-only)
        workers — the context :class:`~repro.policy.engine.PolicyEngine`
        can fold into its plans."""
        with self._lock:
            states = [
                s for name, s in self._workers.items()
                if alive is None or name in alive
            ]
        latencies = []
        bandwidths = []
        for s in states:
            roll = s.rollup()
            if roll["epoch_samples_window"] >= 1:
                latencies.append(roll["epoch_receive_mean_s"])
                if roll["bandwidth_bps"] > 0:
                    bandwidths.append(roll["bandwidth_bps"])
        out: Dict[str, Any] = {
            "workers_reporting": len(states),
            "workers_with_epochs": len(latencies),
            "stragglers": sorted(
                s.name for s in states if s.straggler_since is not None
            ),
        }
        if latencies:
            out["fleet_median_receive_s"] = statistics.median(latencies)
        if bandwidths:
            out["fleet_median_bandwidth_bps"] = statistics.median(bandwidths)
        return out

    # -- straggler detection -----------------------------------------------

    def _emit(self, kind: str, worker: str, **fields: Any) -> Dict[str, Any]:
        self._event_seq += 1
        event = {"seq": self._event_seq, "t": time.time(),
                 "event": kind, "worker": worker, **fields}
        self.events.append(event)
        return event

    def detect(self, alive: Optional[List[str]] = None,
               now: Optional[float] = None) -> List[Dict[str, Any]]:
        """One detection pass; returns newly emitted events.  Needs at
        least two reporting workers (a fleet of one has no median to be
        slower than)."""
        if now is None:
            now = time.time()
        with self._lock:
            states = [
                s for name, s in self._workers.items()
                if alive is None or name in alive
            ]
            rollups = {s.name: s.rollup() for s in states}
            eligible = {
                name: roll for name, roll in rollups.items()
                if roll["epoch_samples_window"] >= self.straggler_min_samples
            }
            emitted: List[Dict[str, Any]] = []
            if len(eligible) >= 2:
                median = statistics.median(
                    r["epoch_receive_mean_s"] for r in eligible.values()
                )
                threshold = max(
                    self.straggler_factor * median,
                    self.straggler_min_seconds,
                )
                for s in states:
                    roll = eligible.get(s.name)
                    if roll is None:
                        continue
                    value = roll["epoch_receive_mean_s"]
                    if value > threshold and median > 0:
                        if s.straggler_since is None:
                            s.straggler_since = now
                            emitted.append(self._emit(
                                "straggler", s.name,
                                metric="epoch_receive_mean_s",
                                value=value, median=median,
                                factor=self.straggler_factor,
                                generation=s.generation,
                            ))
                    elif s.straggler_since is not None:
                        emitted.append(self._emit(
                            "recovered", s.name,
                            metric="epoch_receive_mean_s",
                            value=value, median=median,
                            flagged_for_s=now - s.straggler_since,
                            generation=s.generation,
                        ))
                        s.straggler_since = None
            return emitted

    def events_since(self, seq: int) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(e) for e in self.events if e["seq"] > seq]

    # -- documents ---------------------------------------------------------

    def document(self, worker: Optional[str] = None,
                 include_window: bool = False,
                 alive: Optional[List[str]] = None,
                 include_workers: bool = True) -> Dict[str, Any]:
        """The JSON telemetry doc the ``telemetry`` RPC answers and every
        front end (top / prometheus / benches) renders.
        ``include_workers=False`` answers rollups + events only — the
        cheap form ``Fleet`` polls for policy context."""
        with self._lock:
            if not include_workers:
                names: List[str] = []
            elif worker is None:
                names = sorted(self._workers)
            else:
                names = [worker] if worker in self._workers else []
            workers = {
                name: self._workers[name].as_dict(
                    include_window=include_window)
                for name in names
            }
            events = [dict(e) for e in self.events]
            stats = {
                "samples_ingested": self.samples_ingested,
                "payloads_rejected": self.payloads_rejected,
                "window": self.window,
                "straggler_factor": self.straggler_factor,
            }
        return {
            "kind": "fleet_telemetry",
            "t": time.time(),
            "workers": workers,
            "rollups": self.fleet_rollup(alive=alive),
            "events": events,
            "stats": stats,
        }

    def postmortem(self, worker: str) -> Optional[Dict[str, Any]]:
        """Everything the coordinator still holds for one (possibly dead)
        worker: final series, totals, and the flight-recorder dump its
        last heartbeat carried."""
        with self._lock:
            state = self._workers.get(worker)
            if state is None:
                return None
            out = state.as_dict(include_window=True)
            out["recorder"] = [dict(e) for e in state.recorder]
            return out


# ---------------------------------------------------------------------------
# terminal rendering (the `repro.obs top` table)
# ---------------------------------------------------------------------------

def _fmt_rate(bps: float) -> str:
    if bps >= 1e9:
        return f"{bps / 1e9:6.2f}GB/s"
    if bps >= 1e6:
        return f"{bps / 1e6:6.2f}MB/s"
    if bps >= 1e3:
        return f"{bps / 1e3:6.2f}KB/s"
    return f"{bps:6.1f} B/s"


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:7.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:6.2f}ms"
    return f"{seconds * 1e6:6.1f}µs"


def render_top(doc: Mapping[str, Any],
               alive: Optional[Mapping[str, bool]] = None) -> str:
    """One ``top``-style frame from a telemetry document."""
    workers = doc.get("workers", {})
    rollups = doc.get("rollups", {})
    lines: List[str] = []
    lines.append(
        f"fleet telemetry — {len(workers)} workers reporting, "
        f"median receive "
        f"{_fmt_s(rollups.get('fleet_median_receive_s', 0.0))}, "
        f"median bw {_fmt_rate(rollups.get('fleet_median_bandwidth_bps', 0.0))}"
    )
    header = (f"{'worker':<16} {'st':<4} {'gen':>4} {'seq':>6} "
              f"{'epochs':>7} {'recv mean':>10} {'recv p95':>10} "
              f"{'bandwidth':>10} {'gc':>6} {'flag':<9}")
    lines.append(header)
    lines.append("-" * len(header))
    for name in sorted(workers):
        w = workers[name]
        roll = w.get("rollup", {})
        if alive is None:
            status = "?"
        else:
            status = "up" if alive.get(name, False) else "DOWN"
        flag = "STRAGGLER" if w.get("straggler") else ""
        lines.append(
            f"{name:<16} {status:<4} {w.get('generation', 0):>4} "
            f"{w.get('last_seq', 0):>6} "
            f"{int(w.get('counters', {}).get(EPOCHS_SERIES, 0)):>7} "
            f"{_fmt_s(roll.get('epoch_receive_mean_s', 0.0)):>10} "
            f"{_fmt_s(roll.get('epoch_receive_p95_s', 0.0)):>10} "
            f"{_fmt_rate(roll.get('bandwidth_bps', 0.0)):>10} "
            f"{int(roll.get('gc_collections', 0)):>6} "
            f"{flag:<9}"
        )
    events = doc.get("events", [])
    if events:
        lines.append("")
        lines.append("recent events:")
        for event in events[-5:]:
            lines.append(
                f"  [{event.get('event', '?'):<10}] {event.get('worker', '?')}"
                f"  value={_fmt_s(event.get('value', 0.0))}"
                f" median={_fmt_s(event.get('median', 0.0))}"
            )
    return "\n".join(lines)
