"""A framed connection over one TCP socket, with typed failures.

Wraps a connected socket in the frame protocol from
:mod:`repro.transport.frames` and converts every raw socket failure into
the :mod:`repro.transport.errors` taxonomy at the boundary — no caller
above this layer ever sees ``OSError``/``socket.timeout``/``struct.error``.
"""

from __future__ import annotations

import socket
import time
from typing import Optional, Tuple

from repro.transport import frames
from repro.transport.errors import (
    RemoteWorkerError,
    TransportClosed,
    TransportTimeout,
)
from repro.transport.metrics import TransportMetrics

_RECV_BYTES = 256 * 1024


def connect_with_retry(
    host: str,
    port: int,
    connect_timeout: float = 2.0,
    attempts: int = 1,
    backoff: float = 0.05,
    metrics: Optional[TransportMetrics] = None,
) -> socket.socket:
    """Dial ``host:port``, retrying refused/timed-out connects with
    exponential backoff (``backoff * 2**n`` between tries).

    Raises :class:`TransportTimeout` when every attempt fails — the retry
    budget *is* the deadline here, so "out of attempts" and "timed out"
    are one condition.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    last_error: Optional[Exception] = None
    for attempt in range(attempts):
        if metrics is not None:
            metrics.note_connect_attempt(retry=bool(attempt))
        try:
            return socket.create_connection((host, port), timeout=connect_timeout)
        except (ConnectionError, socket.timeout, OSError) as exc:
            last_error = exc
            if attempt + 1 < attempts:
                time.sleep(backoff * (2 ** attempt))
    raise TransportTimeout(
        f"could not connect to {host}:{port} after {attempts} "
        f"attempt(s): {last_error}"
    )


class FrameConnection:
    """send_frame/recv_frame over a socket, CRC-verified both ways."""

    def __init__(
        self,
        sock: socket.socket,
        read_timeout: Optional[float] = None,
        metrics: Optional[TransportMetrics] = None,
    ) -> None:
        self._sock = sock
        self._decoder = frames.FrameDecoder()
        self._closed = False
        self.metrics = metrics if metrics is not None else TransportMetrics()
        sock.settimeout(read_timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - e.g. AF_UNIX
            pass

    @property
    def raw_socket(self) -> socket.socket:
        """The underlying socket (tests assert its options; don't read or
        write through it behind the framing layer's back)."""
        return self._sock

    # -- sending -----------------------------------------------------------

    def send_frame(self, ftype: int, payload: bytes = b"") -> None:
        data = frames.encode_frame(ftype, payload)
        try:
            self._sock.sendall(data)
        except socket.timeout as exc:
            raise TransportTimeout(
                f"timed out sending {frames.frame_name(ftype)} frame"
            ) from exc
        except OSError as exc:
            raise TransportClosed(
                f"peer closed while sending {frames.frame_name(ftype)} "
                f"frame: {exc}"
            ) from exc
        self.metrics.note_frame_sent(len(data))

    # -- receiving ---------------------------------------------------------

    def recv_frame(self) -> Tuple[int, bytes]:
        """The next complete frame, reading from the socket as needed."""
        while True:
            frame = self._decoder.next_frame()
            if frame is not None:
                self.metrics.note_frame_received(
                    frames.HEADER_BYTES + len(frame[1])
                )
                return frame
            try:
                data = self._sock.recv(_RECV_BYTES)
            except socket.timeout as exc:
                raise TransportTimeout("timed out waiting for a frame") from exc
            except OSError as exc:
                raise TransportClosed(f"connection reset: {exc}") from exc
            if not data:
                raise TransportClosed(
                    "peer closed the connection mid-conversation"
                    + (f" ({self._decoder.buffered} bytes of a partial frame"
                       " buffered)" if self._decoder.buffered else "")
                )
            self._decoder.feed(data)

    def expect_frame(self, ftype: int) -> bytes:
        """Receive one frame that must be ``ftype``; an ERROR frame raises
        the remote failure, anything else is a protocol violation."""
        got, payload = self.recv_frame()
        if got == ftype:
            return payload
        if got == frames.ERROR:
            kind, message = frames.decode_error(payload)
            raise RemoteWorkerError(kind, message)
        raise TransportClosed(
            f"protocol violation: expected {frames.frame_name(ftype)}, "
            f"peer sent {frames.frame_name(got)}"
        )

    def expect_frame_oneof(self, ftypes: Tuple[int, ...]) -> Tuple[int, bytes]:
        """Like :meth:`expect_frame` for several acceptable types; returns
        ``(type, payload)``."""
        got, payload = self.recv_frame()
        if got in ftypes:
            return got, payload
        if got == frames.ERROR:
            kind, message = frames.decode_error(payload)
            raise RemoteWorkerError(kind, message)
        wanted = "/".join(frames.frame_name(t) for t in ftypes)
        raise TransportClosed(
            f"protocol violation: expected {wanted}, "
            f"peer sent {frames.frame_name(got)}"
        )

    def pending_remote_error(self, wait: float = 0.25) -> Optional[RemoteWorkerError]:
        """Best-effort peek for an ERROR frame after a send failed.

        A worker that rejects the stream (CRC failure, decode error) sends
        ERROR and closes; the driver's next ``sendall`` then fails with a
        reset *before* it has read that explanation.  This drains the
        socket briefly so the typed remote error wins over a generic
        :class:`TransportClosed`."""
        try:
            self._sock.settimeout(wait)
        except OSError:
            return None
        try:
            while True:
                ftype, payload = self.recv_frame()
                if ftype == frames.ERROR:
                    kind, message = frames.decode_error(payload)
                    return RemoteWorkerError(kind, message)
        except Exception:
            return None

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "FrameConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
