"""E-F7 — Figure 7: JSBS serializer comparison (paper §5.1).

Skyway against the 27 fastest of 90 S/D libraries (plus the Java serializer
and the "other 63" bucket), on media-content objects over a 5-node cluster.
Headline claims: Skyway fastest overall; 2.2x faster than kryo-manual on
S/D; 67.3x faster than the Java serializer.
"""

from repro.bench.report import format_figure7
from repro.jsbs.harness import run_jsbs
from repro.jsbs.libraries import LIBRARY_CATALOG

from conftest import bench_scale, publish


def test_fig7_jsbs(benchmark):
    objects = max(4, int(8 * bench_scale()))

    results = benchmark.pedantic(
        lambda: run_jsbs(LIBRARY_CATALOG, nodes=5, objects=objects, rounds=2),
        rounds=1, iterations=1,
    )

    report = format_figure7(results)
    by_name = {r.library: r for r in results}
    sky = by_name["skyway"]
    sky_sd = sky.serialization + sky.deserialization

    def sd_ratio(name: str) -> float:
        r = by_name[name]
        return (r.serialization + r.deserialization) / sky_sd

    claims = [
        "",
        f"skyway is rank #{[r.library for r in results].index('skyway') + 1} "
        f"of {len(results)} by total (paper: fastest of all)",
        f"kryo-manual S/D = {sd_ratio('kryo-manual'):.2f}x skyway (paper: 2.2x)",
        f"java-built-in S/D = {sd_ratio('java-built-in'):.1f}x skyway (paper: 67.3x)",
        f"colfer S/D = {sd_ratio('colfer'):.2f}x skyway (paper: ~1.5x total)",
    ]
    publish("fig7_jsbs", report + "\n".join(claims))

    assert results[0].library == "skyway", "Skyway must rank fastest"
    assert 1.5 < sd_ratio("kryo-manual") < 3.5
    assert sd_ratio("java-built-in") > 30
    assert sd_ratio("colfer") > 1.1
    benchmark.extra_info["kryo_ratio"] = round(sd_ratio("kryo-manual"), 2)
    benchmark.extra_info["java_ratio"] = round(sd_ratio("java-built-in"), 1)
