"""The §5.2 memory-overhead experiment.

"To understand the overhead of the extra word field baddr in each object
header, we ran the Spark programs with the unmodified HotSpot and compared
peak heap consumption with that of Skyway... this overhead varies from 2.1%
to 21.8%, with an average of 15.4%."

The reproduction materializes each workload's shuffle-record population on
two JVMs that differ only in heap layout (with/without the baddr word) and
compares heap bytes consumed — the same quantity `pmap` peaks measure,
without the noise.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.datasets import GRAPH_PROFILES, generate_graph, generate_text_corpus
from repro.heap.layout import BASELINE_LAYOUT, SKYWAY_LAYOUT
from repro.jvm.jvm import JVM
from repro.jvm.marshal import to_heap
from repro.types.corelib import standard_classpath


def _workload_records(app: str, scale: float) -> List[object]:
    """A representative sample of the shuffle records each app moves."""
    if app == "WC":
        lines = generate_text_corpus(lines=int(300 * scale) + 20,
                                     words_per_line=8)
        return [(w, 1) for line in lines for w in line.split()]
    edges = generate_graph(GRAPH_PROFILES["LJ"], scale=scale * 0.3)
    if app == "PR":
        # rank contributions: (vertex, float)
        return [(dst, 1.0 / (1 + src % 7)) for src, dst in edges]
    if app == "CC":
        # label messages: (vertex, label)
        return [(dst, min(src, dst)) for src, dst in edges]
    if app == "TC":
        # adjacency groups: (vertex, [neighbors])
        adj: Dict[int, List[int]] = {}
        for src, dst in edges:
            adj.setdefault(min(src, dst), []).append(max(src, dst))
        return list(adj.items())
    raise ValueError(app)


def measure_baddr_overhead(
    apps: Tuple[str, ...] = ("WC", "PR", "CC", "TC"),
    scale: float = 0.2,
) -> Dict[str, float]:
    """Per app: (skyway_heap_bytes / baseline_heap_bytes) - 1."""
    out: Dict[str, float] = {}
    for app in apps:
        records = _workload_records(app, scale)
        sizes = {}
        for label, layout in (("baseline", BASELINE_LAYOUT),
                              ("skyway", SKYWAY_LAYOUT)):
            jvm = JVM(f"{app}-{label}", classpath=standard_classpath(),
                      layout=layout, young_bytes=8 * 1024 * 1024,
                      old_bytes=192 * 1024 * 1024)
            pins = [jvm.pin(to_heap(jvm, record)) for record in records]
            jvm.gc.full()  # compact: live bytes only (the peak-heap analog)
            sizes[label] = jvm.heap.old.used
            del pins
        out[app] = sizes["skyway"] / sizes["baseline"] - 1.0
    return out
