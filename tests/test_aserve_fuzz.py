"""Adversarial schedules for the async front-end.

Two properties the event loop must hold under hostile interleavings:

* **order independence** — EPOCH/MUX_DATA/MUX_TRAILER frames from many
  channels spliced onto one connection in seeded-random order must
  reassemble to exactly the heaps a sequential, one-channel-at-a-time
  classic sender produces (per-channel semantic digests agree three
  ways: shuffled receiver, sequential receiver, sender);
* **bounded buffering** — a worker whose applier stalls must stop
  *reading* once the per-connection high-water mark is hit (real
  backpressure, not an unbounded inbound queue), then drain to a fully
  correct state once the applier resumes.
"""

import random
import threading
import time

import pytest

from repro.delta.channel import DeltaSendChannel
from repro.transport import (
    LocalAsyncWorker,
    MuxEpochClient,
    WorkerClient,
    WorkerHandle,
    WorkerSpec,
    semantic_graph_digest,
)
from repro.transport.testing import SAMPLE_FACTORY

from tests.conftest import make_list

CHANNELS = 16
NODES = 24


def test_shuffled_interleave_matches_sequential_per_channel(
        transport_driver):
    """One FULL round then three delta rounds, each spliced with a
    different seed: for every channel and every round, the shuffled mux
    receiver, a sequential classic receiver, and the sender agree on the
    semantic digest."""
    driver = transport_driver
    shuffled = WorkerHandle.spawn(WorkerSpec(
        name="fuzz-shuffled", classpath_factory=SAMPLE_FACTORY,
        serve_mode="async",
    ))
    sequential = WorkerHandle.spawn(WorkerSpec(
        name="fuzz-sequential", classpath_factory=SAMPLE_FACTORY,
        serve_mode="async",
    ))
    # Tiny chunks: every channel's stream becomes many MUX_DATA frames,
    # so the shuffle actually interleaves mid-stream.
    mux = MuxEpochClient(driver, shuffled.host, shuffled.port,
                         chunk_bytes=96).connect()
    classic = WorkerClient(driver, sequential.host,
                           sequential.port).connect()
    heads, pins, channels = [], [], []
    for i in range(CHANNELS):
        head = make_list(driver.jvm, range(i * 1000, i * 1000 + NODES))
        pins.append(driver.jvm.pin(head))
        heads.append(head)
        channels.append(DeltaSendChannel(
            driver, "fuzz", channel_id=100 + i))
    try:
        for round_no, seed in enumerate((None, 7, 23, 1999)):
            jobs, want, modes = [], {}, set()
            for channel, head in zip(channels, heads):
                frame = channel.send([head])
                jobs.append((channel.channel_id, channel.epoch, frame))
                want[channel.channel_id] = semantic_graph_digest(
                    driver.jvm, [head])
                modes.add(channel.last_decision.mode)
            assert modes == ({"full"} if round_no == 0 else {"delta"})

            rng = random.Random(seed) if seed is not None else None
            results = mux.send_epochs(jobs, rng=rng)
            for channel_id, epoch, frame in jobs:
                outcome = results[channel_id]
                assert outcome["result"]["ok"], outcome
                assert outcome["result"]["digest"] == want[channel_id], (
                    f"seed {seed}: shuffled digest diverged on "
                    f"channel {channel_id}"
                )
                seq = classic.send_epoch(frame, channel_id, epoch)
                assert seq["digest"] == want[channel_id], (
                    f"seed {seed}: sequential digest diverged on "
                    f"channel {channel_id}"
                )
            for head in heads:
                value = driver.jvm.get_field(head, "payload")
                driver.jvm.set_field(head, "payload", value + 1)
    finally:
        mux.close()
        classic.close()
        shuffled.stop()
        sequential.stop()
        for channel in channels:
            channel.close()
        for pin in pins:
            driver.jvm.unpin(pin)


def test_stalled_applier_pauses_reads_then_drains(transport_driver):
    """With heap application switched off, inbound mux bytes must stop at
    the connection's high-water mark — the loop deregisters the socket
    from READ instead of buffering without bound — and once application
    resumes, every channel completes with the right digest."""
    driver = transport_driver
    high_water = 64 * 1024
    spec = WorkerSpec(name="slow-reader", classpath_factory=SAMPLE_FACTORY,
                      read_timeout=60.0)
    with LocalAsyncWorker(spec, high_water_bytes=high_water) as local:
        local.loop.processing_enabled = False
        # One chunk per stream: each channel's trailer lands right after
        # its data, so the ready queue fills (and the pause sticks) long
        # before the burst has been read.
        mux = MuxEpochClient(driver, local.host, local.port,
                             read_timeout=60.0,
                             chunk_bytes=128 * 1024).connect()
        heads, pins, channels, jobs = [], [], [], []
        want = {}
        for i in range(32):
            head = make_list(driver.jvm, range(i * 10_000,
                                               i * 10_000 + 1600))
            pins.append(driver.jvm.pin(head))
            heads.append(head)
            channel = DeltaSendChannel(driver, "slow", channel_id=500 + i)
            channels.append(channel)
            frame = channel.send([head])
            jobs.append((channel.channel_id, channel.epoch, frame))
            want[channel.channel_id] = semantic_graph_digest(
                driver.jvm, [head])
        total_bytes = sum(len(frame) for _c, _e, frame in jobs)
        assert total_bytes > 4 * high_water  # the stall must actually bite

        outcome = {}

        def ship():
            outcome["results"] = mux.send_epochs(jobs)

        sender = threading.Thread(target=ship, daemon=True)
        try:
            sender.start()
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                if local.loop.reads_paused_total >= 1:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("loop never paused reads while the applier "
                            "was stalled")

            # Reads are off: what crossed into user space is bounded, far
            # short of the full burst, and nothing touched the heap.
            time.sleep(0.3)
            queued = sum(c.queued_bytes for c in local.loop._conns)
            assert 0 < queued < total_bytes // 2
            assert local.loop.epochs_applied == 0
            assert not outcome  # sender still blocked on its results

            local.loop.processing_enabled = True
            sender.join(timeout=60.0)
            assert not sender.is_alive()
        finally:
            local.loop.processing_enabled = True
            mux.close()

        results = outcome["results"]
        assert set(results) == set(want)
        for channel_id, got in results.items():
            assert got["result"]["ok"], got
            assert got["result"]["digest"] == want[channel_id]
        assert local.loop.epochs_applied == len(jobs)
        assert local.loop.reads_paused_total >= 1

    for channel in channels:
        channel.close()
    for pin in pins:
        driver.jvm.unpin(pin)
