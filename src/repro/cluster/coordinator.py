"""The cluster coordinator: membership, channel ids, placement, liveness.

One coordinator per fleet, its own process (or a daemon thread in tests),
speaking the same CRC32 frame protocol as the workers
(:mod:`repro.transport.frames`): CALL frames carrying JSON ops, RESULT or
ERROR back, BYE to end a connection.  It holds no heap and moves no graph
bytes — it is the fleet's name service and allocator:

``register``
    A worker announces (name, host, port, pid) as it comes up.  The
    coordinator assigns a fleet-wide monotonic *generation*; re-registering
    the same name (a restarted worker re-HELLOing) gets a fresh generation,
    which is how every other party detects the restart.
``heartbeat``
    Liveness, worker → coordinator, every ``heartbeat_interval``.  A
    heartbeat naming a generation the coordinator doesn't know (it
    restarted, or the record was replaced) answers ``known=False`` — the
    worker's membership loop reacts by re-registering.
``lookup`` / ``workers``
    Name → (host, port, alive, generation); the fleet resolves every
    channel target through this.
``alloc_channels``
    Globally unique channel ids for (sender → receiver) channels.  Id 0 is
    reserved coordinator-wide (never allocated); allocating toward a dead
    or unknown receiver answers a typed ``PeerGoneError`` ERROR frame.
``report_dead``
    A peer found dead under a send (connection refused, mid-stream reset)
    is reported so the whole fleet converges immediately instead of
    waiting out the heartbeat window.

A monitor thread marks workers dead after ``miss_limit`` missed
heartbeats.  Dead records are kept (not erased): a lookup of a dead worker
must answer "dead", not "unknown", so senders can distinguish a vanished
peer from a name that never existed.
"""

from __future__ import annotations

import dataclasses
import itertools
import logging
import threading
import time
from typing import Dict, List, Optional

from repro.cluster.errors import ClusterProtocolError, PeerGoneError
from repro.obs.live import FleetTelemetry, TelemetryError
from repro.transport import frames
from repro.transport.bootstrap import bind_listener
from repro.transport.connection import FrameConnection
from repro.transport.errors import TransportClosed, TransportError, WorkerStartupError

#: Channel id 0 is reserved coordinator-wide: it can never be allocated,
#: and every receiving worker rejects an EPOCH frame naming it with a
#: typed :class:`ClusterProtocolError` (a zeroed header field must never
#: silently route into real channel state).
RESERVED_CHANNEL_ID = 0


@dataclasses.dataclass
class CoordinatorSpec:
    """Everything a spawned coordinator needs, in picklable form."""

    name: str = "coordinator"
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; actual port reported back over the pipe
    #: Seconds between worker heartbeats (dictated to workers at register).
    heartbeat_interval: float = 0.2
    #: Consecutive missed heartbeats before a worker is marked dead.
    miss_limit: int = 3
    read_timeout: float = 10.0
    #: Telemetry plane: per-worker bounded sample window (heartbeats kept)
    #: and flight-recorder entries retained for postmortems.
    telemetry_window: int = 120
    recorder_keep: int = 256
    #: Straggler rule: flag a worker whose windowed mean epoch-receive
    #: latency exceeds ``straggler_factor`` × the fleet median (with at
    #: least ``straggler_min_samples`` epochs in its window and a median
    #: above ``straggler_min_seconds`` so idle jitter can't flag anyone).
    straggler_factor: float = 3.0
    straggler_min_samples: int = 3
    straggler_min_seconds: float = 1e-3


@dataclasses.dataclass
class WorkerRecord:
    """One registered worker, living or dead."""

    name: str
    host: str
    port: int
    pid: int
    generation: int
    alive: bool = True
    registered_at: float = 0.0
    last_heartbeat: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "host": self.host,
            "port": self.port,
            "pid": self.pid,
            "generation": self.generation,
            "alive": self.alive,
        }


class CoordinatorServer:
    """The in-process coordinator object (runs inside its own process, or
    a daemon thread for tests)."""

    def __init__(self, spec: CoordinatorSpec) -> None:
        self.spec = spec
        self._running = True
        self._lock = threading.Lock()
        self._records: Dict[str, WorkerRecord] = {}
        self._generations = itertools.count(1)
        #: Channel allocation starts at 1: id 0 is reserved fleet-wide.
        self._channel_ids = itertools.count(RESERVED_CHANNEL_ID + 1)
        #: channel id -> {"sender", "receiver", "generation"}.
        self.assignments: Dict[int, Dict[str, object]] = {}
        self.rpcs_served = 0
        self.deaths_detected = 0
        self._conn_threads: List[threading.Thread] = []
        #: The fleet telemetry store: per-worker bounded series + recorder
        #: rings (kept after death — that is the postmortem), fleet
        #: rollups, and edge-triggered straggler events.
        self.telemetry = FleetTelemetry(
            window=spec.telemetry_window,
            recorder_keep=spec.recorder_keep,
            straggler_factor=spec.straggler_factor,
            straggler_min_samples=spec.straggler_min_samples,
            straggler_min_seconds=spec.straggler_min_seconds,
        )
        self.log = logging.getLogger(f"repro.coordinator.{spec.name}")

    # -- membership --------------------------------------------------------

    def _op_ping(self, call: dict) -> dict:
        return {"op": "ping", "echo": call.get("echo"),
                "coordinator": self.spec.name}

    def _op_register(self, call: dict) -> dict:
        name = call.get("name")
        if not name:
            raise ClusterProtocolError("register requires a worker name")
        now = time.monotonic()
        with self._lock:
            previous = self._records.get(name)
            record = WorkerRecord(
                name=name,
                host=call.get("host", "127.0.0.1"),
                port=int(call.get("port", 0)),
                pid=int(call.get("pid", 0)),
                generation=next(self._generations),
                registered_at=now,
                last_heartbeat=now,
            )
            self._records[name] = record
        self.log.info(
            "registered worker %s at %s:%d generation %d%s",
            name, record.host, record.port, record.generation,
            " (re-registration)" if previous is not None else "",
        )
        return {
            "op": "register",
            "worker": name,
            "generation": record.generation,
            "heartbeat_interval": self.spec.heartbeat_interval,
            "reregistered": previous is not None,
        }

    def _op_heartbeat(self, call: dict) -> dict:
        name = call.get("name")
        generation = int(call.get("generation", 0))
        telemetry = call.get("telemetry")
        now = time.monotonic()
        with self._lock:
            record = self._records.get(name)
            if record is None or record.generation != generation:
                # The coordinator restarted, or this worker's record was
                # superseded: the worker must re-register.
                return {"op": "heartbeat", "known": False, "alive": False}
            record.last_heartbeat = now
            if not record.alive:
                # A worker declared dead but still beating (e.g. a long GC
                # pause) comes back; channels it lost stay lost — senders
                # re-open against the same generation.
                record.alive = True
                self.log.info("worker %s resumed heartbeats", name)
        result = {"op": "heartbeat", "known": True, "alive": True}
        if telemetry is not None:
            # Liveness is already booked: a malformed piggyback payload
            # rejects as a typed ERROR (connection survives) without
            # un-beating the worker.
            try:
                self.telemetry.ingest(name, generation, telemetry)
            except TelemetryError as exc:
                raise ClusterProtocolError(str(exc)) from exc
            result["telemetry_seq"] = telemetry.get("seq")
        return result

    def _op_lookup(self, call: dict) -> dict:
        name = call.get("name")
        with self._lock:
            record = self._records.get(name)
            if record is None:
                return {"op": "lookup", "found": False, "name": name}
            return {"op": "lookup", "found": True, **record.as_dict()}

    def _op_workers(self, call: dict) -> dict:
        with self._lock:
            records = [r.as_dict() for r in self._records.values()]
        records.sort(key=lambda r: r["name"])
        return {"op": "workers", "workers": records}

    def _op_alloc_channels(self, call: dict) -> dict:
        receiver = call.get("receiver")
        count = max(1, int(call.get("count", 1)))
        with self._lock:
            record = self._records.get(receiver)
            if record is None:
                raise PeerGoneError(
                    receiver or "?", "cannot assign channels: receiver was "
                    "never registered with this coordinator",
                )
            if not record.alive:
                raise PeerGoneError(
                    receiver, "cannot assign channels: receiver is dead",
                    generation=record.generation,
                )
            ids = [next(self._channel_ids) for _ in range(count)]
            for channel_id in ids:
                self.assignments[channel_id] = {
                    "sender": call.get("sender", "?"),
                    "receiver": receiver,
                    "generation": record.generation,
                }
        return {
            "op": "alloc_channels",
            "channel_ids": ids,
            "receiver": receiver,
            "generation": record.generation,
        }

    def _op_report_dead(self, call: dict) -> dict:
        name = call.get("name")
        generation = int(call.get("generation", 0))
        with self._lock:
            record = self._records.get(name)
            if record is None or record.generation != generation \
                    or not record.alive:
                # Stale report: the worker already re-registered (newer
                # generation) or is already marked — don't kill the fresh
                # incarnation on old news.
                return {"op": "report_dead", "marked": False}
            record.alive = False
            self.deaths_detected += 1
        self.log.warning("worker %s reported dead (generation %d)",
                         name, generation)
        return {"op": "report_dead", "marked": True}

    def _op_deregister(self, call: dict) -> dict:
        name = call.get("name")
        with self._lock:
            record = self._records.get(name)
            if record is not None:
                record.alive = False
        return {"op": "deregister", "worker": name}

    def _op_stats(self, call: dict) -> dict:
        with self._lock:
            alive = sum(1 for r in self._records.values() if r.alive)
            total = len(self._records)
            channels = len(self.assignments)
        return {
            "op": "stats",
            "coordinator": self.spec.name,
            "workers_alive": alive,
            "workers_total": total,
            "channels_assigned": channels,
            "rpcs_served": self.rpcs_served,
            "deaths_detected": self.deaths_detected,
            "heartbeat_interval": self.spec.heartbeat_interval,
            "miss_limit": self.spec.miss_limit,
        }

    def _op_shutdown(self, call: dict) -> dict:
        self._running = False
        return {"op": "shutdown", "ok": True}

    # -- telemetry ---------------------------------------------------------

    def _alive_names(self) -> List[str]:
        with self._lock:
            return [r.name for r in self._records.values() if r.alive]

    def _op_telemetry(self, call: dict) -> dict:
        doc = self.telemetry.document(
            worker=call.get("worker"),
            include_window=bool(call.get("include_window", False)),
            alive=self._alive_names(),
            include_workers=bool(call.get("include_workers", True)),
        )
        with self._lock:
            doc["alive"] = {name: r.alive
                            for name, r in self._records.items()}
        return {"op": "telemetry", "telemetry": doc}

    def _op_postmortem(self, call: dict) -> dict:
        name = call.get("name")
        if not name:
            raise ClusterProtocolError("postmortem requires a worker name")
        doc = self.telemetry.postmortem(name)
        if doc is None:
            return {"op": "postmortem", "found": False, "worker": name}
        with self._lock:
            record = self._records.get(name)
            alive = record.alive if record is not None else False
        return {"op": "postmortem", "found": True, "worker": name,
                "alive": alive, "postmortem": doc}

    def _op_events(self, call: dict) -> dict:
        since = int(call.get("since", 0))
        return {"op": "events",
                "events": self.telemetry.events_since(since)}

    _OPS = {
        "ping": _op_ping,
        "register": _op_register,
        "heartbeat": _op_heartbeat,
        "lookup": _op_lookup,
        "workers": _op_workers,
        "alloc_channels": _op_alloc_channels,
        "report_dead": _op_report_dead,
        "deregister": _op_deregister,
        "stats": _op_stats,
        "telemetry": _op_telemetry,
        "postmortem": _op_postmortem,
        "events": _op_events,
        "shutdown": _op_shutdown,
    }

    # -- liveness ----------------------------------------------------------

    def sweep_liveness(self, now: Optional[float] = None) -> List[str]:
        """Mark workers whose heartbeats stopped; returns the newly dead.
        Called by the monitor thread, and directly by tests."""
        if now is None:
            now = time.monotonic()
        deadline = self.spec.heartbeat_interval * self.spec.miss_limit
        newly_dead: List[str] = []
        with self._lock:
            for record in self._records.values():
                if record.alive and now - record.last_heartbeat > deadline:
                    record.alive = False
                    self.deaths_detected += 1
                    newly_dead.append(record.name)
        for name in newly_dead:
            self.log.warning(
                "worker %s missed %d heartbeats; marked dead",
                name, self.spec.miss_limit,
            )
        return newly_dead

    def _monitor_loop(self) -> None:
        while self._running:
            time.sleep(self.spec.heartbeat_interval / 2)
            self.sweep_liveness()
            self.sweep_stragglers()

    def sweep_stragglers(self) -> List[dict]:
        """One straggler-detection pass over the alive workers' windowed
        series; returns (and logs) the newly emitted transition events.
        Called by the monitor thread, and directly by tests."""
        events = self.telemetry.detect(alive=self._alive_names())
        for event in events:
            if event["event"] == "straggler":
                self.log.warning(
                    "cluster.straggler: worker %s %s=%.6fs vs fleet "
                    "median %.6fs (factor %.1f)",
                    event["worker"], event["metric"], event["value"],
                    event["median"], event["factor"],
                )
            else:
                self.log.info("cluster.straggler recovered: worker %s",
                              event["worker"])
        return events

    # -- connection loop ---------------------------------------------------

    def serve_connection(self, conn: FrameConnection) -> None:
        """Serve one client (a fleet front-end or a worker's membership
        loop) to completion.  Typed cluster errors answer ERROR and keep
        the connection — an allocation toward a dead peer must not force
        the fleet to re-dial — while anything unexpected answers ERROR and
        closes."""
        while self._running:
            try:
                ftype, payload = conn.recv_frame()
            except TransportClosed:
                return
            if ftype == frames.BYE:
                return
            try:
                if ftype != frames.CALL:
                    raise ClusterProtocolError(
                        f"coordinator speaks CALL/RESULT only; got "
                        f"{frames.frame_name(ftype)}"
                    )
                call = frames.decode_json(payload, what="CALL")
                handler = self._OPS.get(call.get("op"))
                if handler is None:
                    raise ClusterProtocolError(
                        f"unknown coordinator op {call.get('op')!r}"
                    )
                self.rpcs_served += 1
                result = handler(self, call)
                conn.send_frame(frames.RESULT, frames.encode_json(result))
            except (ClusterProtocolError, PeerGoneError) as exc:
                try:
                    conn.send_frame(
                        frames.ERROR,
                        frames.encode_error(type(exc).__name__, str(exc)),
                    )
                except TransportError:
                    return
            except Exception as exc:  # noqa: BLE001 - reported as ERROR frame
                self.log.warning(
                    "coordinator op failed, closing connection: %s: %s",
                    type(exc).__name__, exc,
                )
                try:
                    conn.send_frame(
                        frames.ERROR,
                        frames.encode_error(type(exc).__name__, str(exc)),
                    )
                except TransportError:
                    pass
                return

    def _serve_thread(self, conn: FrameConnection) -> None:
        try:
            self.serve_connection(conn)
        finally:
            conn.close()

    def serve_forever(self, listener) -> None:
        listener.settimeout(0.25)  # poll so shutdown can exit the loop
        monitor = threading.Thread(
            target=self._monitor_loop, name="coordinator-liveness",
            daemon=True,
        )
        monitor.start()
        try:
            while self._running:
                try:
                    sock, _addr = listener.accept()
                except TimeoutError:
                    continue
                except OSError:
                    return
                conn = FrameConnection(
                    sock, read_timeout=self.spec.read_timeout,
                )
                thread = threading.Thread(
                    target=self._serve_thread, args=(conn,),
                    name=f"coordinator-conn-{len(self._conn_threads)}",
                    daemon=True,
                )
                self._conn_threads = [
                    t for t in self._conn_threads if t.is_alive()
                ]
                self._conn_threads.append(thread)
                thread.start()
        finally:
            for thread in self._conn_threads:
                thread.join(timeout=5.0)

    def stop(self) -> None:
        self._running = False


def coordinator_main(spec: CoordinatorSpec, port_pipe) -> None:
    """Entry point of the spawned coordinator process.  Binds (with the
    bounded port-in-use retry), reports the actual port, then serves."""
    from repro.transport.worker import configure_worker_logging

    configure_worker_logging()
    try:
        listener = bind_listener(spec.host, spec.port)
        server = CoordinatorServer(spec)
        server.log.info("listening on %s:%d",
                        spec.host, listener.getsockname()[1])
        port_pipe.send(("ok", listener.getsockname()[1]))
    except Exception as exc:  # noqa: BLE001 - parent re-raises as typed error
        port_pipe.send(("error", f"{type(exc).__name__}: {exc}"))
        port_pipe.close()
        return
    finally:
        try:
            port_pipe.close()
        except OSError:  # pragma: no cover - pipe already gone
            pass
    try:
        server.serve_forever(listener)
    finally:
        listener.close()


class CoordinatorHandle:
    """A spawned coordinator process and the port it listens on."""

    def __init__(self, spec: CoordinatorSpec, process, port: int) -> None:
        self.spec = spec
        self.process = process
        self.host = spec.host
        self.port = port

    @classmethod
    def spawn(cls, spec: CoordinatorSpec,
              startup_timeout: float = 30.0) -> "CoordinatorHandle":
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        parent_pipe, child_pipe = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=coordinator_main, args=(spec, child_pipe),
            name=f"skyway-coordinator-{spec.name}", daemon=True,
        )
        process.start()
        child_pipe.close()
        try:
            if not parent_pipe.poll(startup_timeout):
                raise WorkerStartupError(
                    f"coordinator {spec.name!r} reported no port within "
                    f"{startup_timeout}s"
                )
            status, value = parent_pipe.recv()
        except (EOFError, OSError) as exc:
            process.terminate()
            process.join(timeout=5)
            raise WorkerStartupError(
                f"coordinator {spec.name!r} died during startup: {exc}"
            ) from exc
        finally:
            parent_pipe.close()
        if status != "ok":
            process.join(timeout=5)
            raise WorkerStartupError(
                f"coordinator {spec.name!r} failed to start: {value}"
            )
        return cls(spec, process, int(value))

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def stop(self, timeout: float = 5.0) -> None:
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover - last resort
            self.process.kill()
            self.process.join(timeout=timeout)


class LocalCoordinator:
    """A coordinator served from a daemon thread in *this* process.

    Tests use it for protocol-level cases (no spawn latency) and for the
    coordinator-restart drill: stop one, start another on the same port,
    and watch workers re-register."""

    def __init__(self, spec: Optional[CoordinatorSpec] = None) -> None:
        self.spec = spec if spec is not None else CoordinatorSpec()
        self._listener = bind_listener(self.spec.host, self.spec.port)
        self.server = CoordinatorServer(self.spec)
        self.host = self.spec.host
        self.port = self._listener.getsockname()[1]
        self._thread = threading.Thread(
            target=self.server.serve_forever, args=(self._listener,),
            name=f"local-coordinator-{self.spec.name}", daemon=True,
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self.server.stop()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "LocalCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
