"""Simulated java.util collections: HashMap and ArrayList.

``HashMap`` matters to the reproduction: its bucket layout is a function of
*cached hashcodes*.  Ordinary serializers must re-insert ("reshuffle
key/value pairs... because the hash values of keys may have changed" —
paper §1) every entry on the receiving node, while Skyway transfers each
node's header verbatim, preserving identity hashcodes, so the received table
is immediately valid (§4.2 "Header Update").
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.heap.heap import NULL
from repro.jvm.jvm import JVM
from repro.types import corelib

_DEFAULT_CAPACITY = 16
_LOAD_FACTOR = 0.75


def java_hash_of(jvm: JVM, address: int) -> int:
    """``Object.hashCode()`` semantics: value hash for String and the boxes,
    identity hash (cached in the mark word) for everything else."""
    if address == NULL:
        return 0
    name = jvm.klass_of(address).name
    if name == corelib.STRING:
        return _as_int32(jvm.get_field(address, "hash"))
    if name in (corelib.INTEGER, corelib.BOOLEAN):
        return _as_int32(int(jvm.get_field(address, "value")))
    if name == corelib.LONG:
        v = jvm.get_field(address, "value")
        return _as_int32((v ^ (v >> 32)) & 0xFFFFFFFF)
    if name == corelib.DOUBLE:
        import struct as _struct

        bits = _struct.unpack("<q", _struct.pack("<d", jvm.get_field(address, "value")))[0]
        return _as_int32((bits ^ (bits >> 32)) & 0xFFFFFFFF)
    return jvm.identity_hash(address)


def _as_int32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value >= 1 << 31 else value


def _spread(h: int) -> int:
    """HashMap.hash(): xor the high bits down (Java 8)."""
    h &= 0xFFFFFFFF
    return (h ^ (h >> 16)) & 0xFFFFFFFF


def _keys_equal(jvm: JVM, a: int, b: int) -> bool:
    """``equals()``: value equality for core value classes, identity else."""
    if a == b:
        return True
    if a == NULL or b == NULL:
        return False
    ka, kb = jvm.klass_of(a).name, jvm.klass_of(b).name
    if ka != kb:
        return False
    if ka == corelib.STRING:
        return jvm.read_string(a) == jvm.read_string(b)
    if ka in (corelib.INTEGER, corelib.LONG, corelib.DOUBLE, corelib.BOOLEAN):
        return jvm.get_field(a, "value") == jvm.get_field(b, "value")
    return False


class HashMapOps:
    """Operations over simulated ``java.util.HashMap`` instances."""

    def __init__(self, jvm: JVM) -> None:
        self.jvm = jvm

    def new(self, capacity: int = _DEFAULT_CAPACITY) -> int:
        capacity = max(4, _next_pow2(capacity))
        jvm = self.jvm
        map_addr = jvm.new_instance(corelib.HASHMAP)
        pin = jvm.pin(map_addr)
        try:
            table = jvm.new_array(f"L{corelib.HASHMAP_NODE};", capacity)
            jvm.set_field(pin.address, "table", table)
            jvm.set_field(pin.address, "size", 0)
            jvm.set_field(pin.address, "threshold", int(capacity * _LOAD_FACTOR))
            return pin.address
        finally:
            jvm.unpin(pin)

    def put(self, map_addr: int, key: int, value: int, charge_hash: bool = False) -> int:
        """Insert/replace; returns the map address (which may have moved is
        not modeled — addresses here are only stable between GCs, so callers
        pin around bulk operations)."""
        jvm = self.jvm
        if charge_hash:
            jvm.clock.charge(jvm.cost_model.hash_insert)
        h = _spread(java_hash_of(jvm, key) & 0xFFFFFFFF)
        table = jvm.get_field(map_addr, "table")
        cap = jvm.heap.array_length(table)
        idx = h & (cap - 1)
        node = jvm.heap.read_element(table, idx)
        while node != NULL:
            if jvm.get_field(node, "hash") == _as_int32(h) and _keys_equal(
                jvm, jvm.get_field(node, "key"), key
            ):
                jvm.set_field(node, "value", value)
                return map_addr
            node = jvm.get_field(node, "next")

        pins = [jvm.pin(a) for a in (map_addr, key, value, table)]
        try:
            new_node = jvm.new_instance(corelib.HASHMAP_NODE)
            map_addr, key, value, table = (p.address for p in pins)
            jvm.set_field(new_node, "hash", _as_int32(h))
            jvm.set_field(new_node, "key", key)
            jvm.set_field(new_node, "value", value)
            head = jvm.heap.read_element(table, idx)
            jvm.set_field(new_node, "next", head)
            jvm.heap.write_element(table, idx, new_node)
            size = jvm.get_field(map_addr, "size") + 1
            jvm.set_field(map_addr, "size", size)
            if size > jvm.get_field(map_addr, "threshold"):
                map_addr = self._resize(map_addr)
            return map_addr
        finally:
            for p in pins:
                jvm.unpin(p)

    def get(self, map_addr: int, key: int) -> int:
        """Lookup using cached node hashes — works immediately after a
        Skyway transfer, fails (by design) if hashes were invalidated."""
        jvm = self.jvm
        h = _spread(java_hash_of(jvm, key) & 0xFFFFFFFF)
        table = jvm.get_field(map_addr, "table")
        cap = jvm.heap.array_length(table)
        node = jvm.heap.read_element(table, h & (cap - 1))
        while node != NULL:
            if jvm.get_field(node, "hash") == _as_int32(h) and _keys_equal(
                jvm, jvm.get_field(node, "key"), key
            ):
                return jvm.get_field(node, "value")
            node = jvm.get_field(node, "next")
        return NULL

    def size(self, map_addr: int) -> int:
        return self.jvm.get_field(map_addr, "size")

    def contains_key(self, map_addr: int, key: int) -> bool:
        jvm = self.jvm
        h = _spread(java_hash_of(jvm, key) & 0xFFFFFFFF)
        table = jvm.get_field(map_addr, "table")
        node = jvm.heap.read_element(table, h & (jvm.heap.array_length(table) - 1))
        while node != NULL:
            if jvm.get_field(node, "hash") == _as_int32(h) and _keys_equal(
                jvm, jvm.get_field(node, "key"), key
            ):
                return True
            node = jvm.get_field(node, "next")
        return False

    def remove(self, map_addr: int, key: int) -> int:
        """Unlink the entry for ``key``; returns the removed value (NULL if
        absent)."""
        jvm = self.jvm
        h = _spread(java_hash_of(jvm, key) & 0xFFFFFFFF)
        table = jvm.get_field(map_addr, "table")
        idx = h & (jvm.heap.array_length(table) - 1)
        node = jvm.heap.read_element(table, idx)
        prev = NULL
        while node != NULL:
            if jvm.get_field(node, "hash") == _as_int32(h) and _keys_equal(
                jvm, jvm.get_field(node, "key"), key
            ):
                value = jvm.get_field(node, "value")
                nxt = jvm.get_field(node, "next")
                if prev == NULL:
                    jvm.heap.write_element(table, idx, nxt)
                else:
                    jvm.set_field(prev, "next", nxt)
                jvm.set_field(map_addr, "size",
                              jvm.get_field(map_addr, "size") - 1)
                return value
            prev = node
            node = jvm.get_field(node, "next")
        return NULL

    def entries(self, map_addr: int) -> Iterator[Tuple[int, int]]:
        jvm = self.jvm
        table = jvm.get_field(map_addr, "table")
        for i in range(jvm.heap.array_length(table)):
            node = jvm.heap.read_element(table, i)
            while node != NULL:
                yield jvm.get_field(node, "key"), jvm.get_field(node, "value")
                node = jvm.get_field(node, "next")

    def rehash_in_place(self, map_addr: int, charge: bool = True) -> None:
        """What a deserializer must do when hashcodes were not preserved:
        recompute every node's hash from the (new) key hashcodes and relink
        the nodes into their buckets (paper §1: "reshuffle key/value pairs to
        correctly recreate the key-value array").  Charges ``hash_insert``
        per entry when ``charge`` is set."""
        jvm = self.jvm
        # Detach every node, then relink with freshly computed hashes.
        nodes: List[int] = []
        table = jvm.get_field(map_addr, "table")
        cap = jvm.heap.array_length(table)
        for i in range(cap):
            node = jvm.heap.read_element(table, i)
            while node != NULL:
                nodes.append(node)
                node = jvm.get_field(node, "next")
            jvm.heap.write_element(table, i, NULL)
        for node in nodes:
            if charge:
                jvm.clock.charge(jvm.cost_model.hash_insert)
            key = jvm.get_field(node, "key")
            h = _spread(java_hash_of(jvm, key) & 0xFFFFFFFF)
            idx = h & (cap - 1)
            jvm.set_field(node, "hash", _as_int32(h))
            jvm.set_field(node, "next", jvm.heap.read_element(table, idx))
            jvm.heap.write_element(table, idx, node)

    def _resize(self, map_addr: int) -> int:
        jvm = self.jvm
        old_entries = list(self.entries(map_addr))
        old_table = jvm.get_field(map_addr, "table")
        new_cap = jvm.heap.array_length(old_table) * 2
        pin = jvm.pin(map_addr)
        try:
            new_table = jvm.new_array(f"L{corelib.HASHMAP_NODE};", new_cap)
            map_addr = pin.address
            jvm.set_field(map_addr, "table", new_table)
            jvm.set_field(map_addr, "threshold", int(new_cap * _LOAD_FACTOR))
            jvm.set_field(map_addr, "size", 0)
            for key, value in old_entries:
                jvm.set_field(map_addr, "size", jvm.get_field(map_addr, "size"))
                self._relink_one(map_addr, key, value)
            jvm.set_field(map_addr, "size", len(old_entries))
            return map_addr
        finally:
            jvm.unpin(pin)

    def _relink_one(self, map_addr: int, key: int, value: int) -> None:
        jvm = self.jvm
        pins = [jvm.pin(a) for a in (map_addr, key, value)]
        try:
            node = jvm.new_instance(corelib.HASHMAP_NODE)
            map_addr, key, value = (p.address for p in pins)
            table = jvm.get_field(map_addr, "table")
            cap = jvm.heap.array_length(table)
            h = _spread(java_hash_of(jvm, key) & 0xFFFFFFFF)
            jvm.set_field(node, "hash", _as_int32(h))
            jvm.set_field(node, "key", key)
            jvm.set_field(node, "value", value)
            idx = h & (cap - 1)
            jvm.set_field(node, "next", jvm.heap.read_element(table, idx))
            jvm.heap.write_element(table, idx, node)
        finally:
            for p in pins:
                jvm.unpin(p)


class ArrayListOps:
    """Operations over simulated ``java.util.ArrayList`` instances."""

    def __init__(self, jvm: JVM) -> None:
        self.jvm = jvm

    def new(self, capacity: int = 8) -> int:
        jvm = self.jvm
        lst = jvm.new_instance(corelib.ARRAYLIST)
        pin = jvm.pin(lst)
        try:
            data = jvm.new_array("Ljava.lang.Object;", max(1, capacity))
            jvm.set_field(pin.address, "elementData", data)
            jvm.set_field(pin.address, "size", 0)
            return pin.address
        finally:
            jvm.unpin(pin)

    def append(self, lst: int, element: int) -> None:
        jvm = self.jvm
        size = jvm.get_field(lst, "size")
        data = jvm.get_field(lst, "elementData")
        cap = jvm.heap.array_length(data)
        if size == cap:
            pins = [jvm.pin(lst), jvm.pin(element), jvm.pin(data)]
            try:
                new_data = jvm.new_array("Ljava.lang.Object;", cap * 2)
                lst, element, data = (p.address for p in pins)
                for i in range(size):
                    jvm.heap.write_element(new_data, i, jvm.heap.read_element(data, i))
                jvm.set_field(lst, "elementData", new_data)
                data = new_data
            finally:
                for p in pins:
                    jvm.unpin(p)
        jvm.heap.write_element(data, size, element)
        jvm.set_field(lst, "size", size + 1)

    def get(self, lst: int, index: int) -> int:
        jvm = self.jvm
        size = jvm.get_field(lst, "size")
        if not 0 <= index < size:
            raise IndexError(f"index {index} out of bounds for size {size}")
        return jvm.heap.read_element(jvm.get_field(lst, "elementData"), index)

    def size(self, lst: int) -> int:
        return self.jvm.get_field(lst, "size")

    def items(self, lst: int) -> Iterator[int]:
        for i in range(self.size(lst)):
            yield self.get(lst, i)

    def set(self, lst: int, index: int, element: int) -> None:
        jvm = self.jvm
        size = jvm.get_field(lst, "size")
        if not 0 <= index < size:
            raise IndexError(f"index {index} out of bounds for size {size}")
        jvm.heap.write_element(jvm.get_field(lst, "elementData"), index, element)

    def index_of(self, lst: int, element: int) -> int:
        """First index holding exactly ``element`` (identity), or -1."""
        for i, item in enumerate(self.items(lst)):
            if item == element:
                return i
        return -1


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p
