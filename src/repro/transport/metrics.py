"""Transport-side counters and wall-clock phase timers.

The simulated cluster charges :class:`~repro.simtime.SimClock` time from a
cost model; the socket transport moves real bytes in real time, so it keeps
its own measured ledger.  Benchmarks report both side by side: the sim
clock says what the *model* predicts, these counters say what the wire
*did* (the pipelining win is a wall-clock fact, not a modeled one).

Thread safety: one metrics object is mutated from several threads at once —
the traversal thread feeds the chunk pipeline while its writer thread sends
DATA frames, and a multi-stream parallel send runs N connections against N
per-stream objects that later merge into one report.  Every mutation goes
through a ``note_*`` method holding the object's lock, and ``merge``/
``merged`` lock both sides (in a stable order) so aggregate counts are
exact, not racy ``+=`` approximations.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Sequence


class TransportMetrics:
    """Byte/chunk/retry counters plus per-phase wall-clock seconds."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0
        self.chunks_sent = 0
        self.chunks_received = 0
        self.connect_attempts = 0
        self.retries = 0
        self.queue_full_stalls = 0
        #: Seconds the feeding thread spent blocked on a full chunk queue —
        #: the direct measure of "traversal outran the wire".
        self.stall_seconds = 0.0
        self.phases: Dict[str, float] = {}

    # -- locked mutators ----------------------------------------------------

    def note_frame_sent(self, nbytes: int) -> None:
        with self._lock:
            self.frames_sent += 1
            self.bytes_sent += nbytes

    def note_frame_received(self, nbytes: int) -> None:
        with self._lock:
            self.frames_received += 1
            self.bytes_received += nbytes

    def note_chunk_sent(self) -> None:
        with self._lock:
            self.chunks_sent += 1

    def note_chunk_received(self) -> None:
        with self._lock:
            self.chunks_received += 1

    def note_connect_attempt(self, retry: bool = False) -> None:
        with self._lock:
            self.connect_attempts += 1
            if retry:
                self.retries += 1

    def note_stall(self, seconds: float) -> None:
        with self._lock:
            self.queue_full_stalls += 1
            self.stall_seconds += seconds

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Accumulate wall-clock time under ``name`` ("traverse", "send",
        "handshake", "place", ...)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_phase(name, time.perf_counter() - start)

    def add_phase(self, name: str, seconds: float) -> None:
        with self._lock:
            self.phases[name] = self.phases.get(name, 0.0) + seconds

    # -- merging ------------------------------------------------------------

    def merge(self, other: "TransportMetrics") -> None:
        """Fold ``other``'s counters into this object, exactly once each.

        Both locks are taken (in a stable ``id`` order, so two concurrent
        cross-merges cannot deadlock); the snapshot of ``other`` is
        therefore consistent even if its connection threads are still
        running.
        """
        if other is self:
            raise ValueError("cannot merge a TransportMetrics into itself")
        first, second = sorted((self, other), key=id)
        with first._lock, second._lock:
            self.bytes_sent += other.bytes_sent
            self.bytes_received += other.bytes_received
            self.frames_sent += other.frames_sent
            self.frames_received += other.frames_received
            self.chunks_sent += other.chunks_sent
            self.chunks_received += other.chunks_received
            self.connect_attempts += other.connect_attempts
            self.retries += other.retries
            self.queue_full_stalls += other.queue_full_stalls
            self.stall_seconds += other.stall_seconds
            for name, seconds in other.phases.items():
                self.phases[name] = self.phases.get(name, 0.0) + seconds

    @classmethod
    def merged(cls, parts: Sequence["TransportMetrics"]) -> "TransportMetrics":
        """A deterministic aggregate: a fresh object folding ``parts`` in
        the given order (the parallel sender passes streams in thread-id
        order, so two identical runs report identical aggregates)."""
        total = cls()
        for part in parts:
            total.merge(part)
        return total

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            return {
                "bytes_sent": self.bytes_sent,
                "bytes_received": self.bytes_received,
                "frames_sent": self.frames_sent,
                "frames_received": self.frames_received,
                "chunks_sent": self.chunks_sent,
                "chunks_received": self.chunks_received,
                "connect_attempts": self.connect_attempts,
                "retries": self.retries,
                "queue_full_stalls": self.queue_full_stalls,
                "stall_seconds": round(self.stall_seconds, 6),
                "phases": {k: round(v, 6)
                           for k, v in sorted(self.phases.items())},
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TransportMetrics({self.as_dict()!r})"
