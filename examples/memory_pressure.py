#!/usr/bin/env python
"""Input-buffer lifetime under memory pressure (paper §3.2 + §4.3).

Received Skyway buffers live in the old generation and are retained until
explicitly freed ("frameworks such as Spark cache all RDDs in memory and
thus Skyway keeps all input buffers").  This example receives several
rounds of data, shows old-generation growth and GC behavior, then frees
buffers and shows reclamation.

Run:  python examples/memory_pressure.py
"""

from repro.core.runtime import attach_skyway
from repro.core.streams import SkywayObjectInputStream, SkywayObjectOutputStream
from repro.jvm.jvm import JVM
from repro.jvm.marshal import to_heap
from repro.types.corelib import standard_classpath


def main() -> None:
    classpath = standard_classpath()
    sender = JVM("sender", classpath=classpath)
    receiver = JVM("receiver", classpath=classpath,
                   young_bytes=128 * 1024, old_bytes=4 * 1024 * 1024)
    attach_skyway(sender, [receiver])

    def receive_round(i: int) -> SkywayObjectInputStream:
        sender.skyway.shuffle_start()
        payload = to_heap(sender, [(i, j, float(j)) for j in range(400)])
        out = SkywayObjectOutputStream(sender.skyway, destination="rx")
        out.write_object(payload)
        inp = SkywayObjectInputStream(receiver.skyway)
        inp.accept(out.close())
        return inp

    print(f"{'round':>6} {'old-gen used':>14} {'retained buffers':>18} "
          f"{'retained bytes':>15}")
    streams = []
    for i in range(6):
        streams.append(receive_round(i))
        receiver.gc.full()  # buffers are rooted: nothing reclaimed
        stats = receiver.skyway.stats()
        print(f"{i:>6} {receiver.heap.old.used:>14,} "
              f"{stats['retained_input_buffers']:>18} "
              f"{stats['retained_input_bytes']:>15,}")

    print("\nfreeing the first four buffers (the explicit free API)...")
    for stream in streams[:4]:
        stream.close()
    before = receiver.heap.old.used
    receiver.gc.full()
    after = receiver.heap.old.used
    stats = receiver.skyway.stats()
    print(f"old gen: {before:,} -> {after:,} bytes "
          f"({before - after:,} reclaimed); "
          f"{stats['retained_input_buffers']} buffers still retained")
    assert after < before
    assert stats["retained_input_buffers"] == 2


if __name__ == "__main__":
    main()
