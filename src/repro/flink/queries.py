"""The five TPC-H-derived queries of the paper's Table 3.

=====  ==========================================================================
Query  Description (paper Table 3)
=====  ==========================================================================
QA     Report pricing details for all items shipped within the last 120 days.
QB     List the minimum cost supplier for each region for each item.
QC     Retrieve the shipping priority and potential revenue of pending orders.
QD     Count the number of late orders in each quarter of a given year.
QE     Report all items returned by customers sorted by the lost revenue.
=====  ==========================================================================

Each query is written against the DataSet engine (shuffles exercise the
configured serializer) with accessed-field lists driving Flink's lazy
deserialization.  Each also has a plain-Python reference implementation so
tests can verify result equality under every serializer.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Tuple

from repro.flink.engine import DataSet, FlinkEnvironment
from repro.flink.tpch import MAX_DATE, TpchDataset, YEAR
from repro.flink.types import FieldKind as K, RowType

Row = Tuple[Any, ...]


@dataclasses.dataclass(frozen=True)
class QuerySpec:
    key: str
    description: str
    run: Callable[[FlinkEnvironment, TpchDataset], List[Row]]
    reference: Callable[[TpchDataset], List[Row]]


# ---------------------------------------------------------------------------
# QA — pricing summary for items shipped in the last 120 days (TPC-H Q1 style)
# ---------------------------------------------------------------------------

_QA_CUTOFF = MAX_DATE - 120

_QA_OUT = RowType.of(
    "qa_out", ("flag", K.STRING), ("status", K.STRING),
    ("sum_qty", K.DOUBLE), ("sum_price", K.DOUBLE),
    ("sum_disc_price", K.DOUBLE), ("count", K.LONG),
)


def _qa_run(env: FlinkEnvironment, data: TpchDataset) -> List[Row]:
    lineitem = env.from_table(data.lineitem)
    recent = lineitem.filter(lambda r: r[9] >= _QA_CUTOFF)
    grouped = recent.group_by(
        lambda r: (r[7], r[8]),
        accessed_fields=[3, 4, 5, 7, 8],  # qty, price, discount, flag, status
    )

    def agg(key, rows):
        flag, status = key
        sq = sum(r[3] for r in rows)
        sp = sum(r[4] for r in rows)
        sdp = sum(r[4] * (1 - r[5]) for r in rows)
        return (flag, status, round(sq, 2), round(sp, 2), round(sdp, 2),
                len(rows))

    return sorted(grouped.aggregate(agg, _QA_OUT).collect())


def _qa_reference(data: TpchDataset) -> List[Row]:
    groups: Dict[Tuple[str, str], List[Row]] = {}
    for r in data.lineitem.rows:
        if r[9] >= _QA_CUTOFF:
            groups.setdefault((r[7], r[8]), []).append(r)
    out = []
    for (flag, status), rows in groups.items():
        out.append((
            flag, status,
            round(sum(r[3] for r in rows), 2),
            round(sum(r[4] for r in rows), 2),
            round(sum(r[4] * (1 - r[5]) for r in rows), 2),
            len(rows),
        ))
    return sorted(out)


# ---------------------------------------------------------------------------
# QB — minimum-cost supplier per (region, part) (TPC-H Q2 style)
# ---------------------------------------------------------------------------

_QB_OUT = RowType.of(
    "qb_out", ("region", K.STRING), ("part", K.LONG),
    ("min_cost", K.DOUBLE), ("supplier", K.STRING),
)


def _qb_run(env: FlinkEnvironment, data: TpchDataset) -> List[Row]:
    # partsupp ⋈ supplier on suppkey.
    ps = env.from_table(data.partsupp)
    supplier = env.from_table(data.supplier)
    ps_s = ps.join(supplier, left_key=1, right_key=0,
                   accessed_left=[0, 1, 3], accessed_right=[0, 1, 2])
    # ... ⋈ nation on s_nationkey (field 4+2=6 in joined row).
    nation = env.from_table(data.nation)
    ps_s_n = ps_s.join(nation, left_key=6, right_key=0)
    # nation carries regionkey; map to region name via broadcast-side dict
    # (region has 5 rows: Flink would broadcast it).
    region_names = {r[0]: r[1] for r in data.region.rows}
    grouped = ps_s_n.group_by(lambda r: (region_names[r[10]], r[0]))

    def agg(key, rows):
        region, part = key
        best = min(rows, key=lambda r: (r[3], r[5]))
        return (region, part, round(best[3], 2), best[5])

    return sorted(grouped.aggregate(agg, _QB_OUT).collect())


def _qb_reference(data: TpchDataset) -> List[Row]:
    suppliers = {s[0]: s for s in data.supplier.rows}
    nations = {n[0]: n for n in data.nation.rows}
    regions = {r[0]: r[1] for r in data.region.rows}
    best: Dict[Tuple[str, int], Tuple[float, str]] = {}
    for ps in data.partsupp.rows:
        s = suppliers[ps[1]]
        region = regions[nations[s[2]][2]]
        key = (region, ps[0])
        cand = (ps[3], s[1])
        if key not in best or cand < best[key]:
            best[key] = cand
    return sorted(
        (region, part, round(cost, 2), name)
        for (region, part), (cost, name) in best.items()
    )


# ---------------------------------------------------------------------------
# QC — shipping priority / potential revenue of pending orders (Q3 style)
# ---------------------------------------------------------------------------

_QC_DATE = 4 * YEAR  # orders not yet shipped as of this date

_QC_OUT = RowType.of(
    "qc_out", ("orderkey", K.LONG), ("revenue", K.DOUBLE),
    ("orderdate", K.DATE), ("shippriority", K.INT),
)


def _qc_run(env: FlinkEnvironment, data: TpchDataset) -> List[Row]:
    orders = env.from_table(data.orders).filter(lambda r: r[4] < _QC_DATE)
    lineitem = env.from_table(data.lineitem).filter(lambda r: r[9] > _QC_DATE)
    joined = orders.join(lineitem, left_key=0, right_key=0,
                         accessed_left=[0, 4, 6], accessed_right=[0, 4, 5])
    grouped = joined.group_by(lambda r: (r[0], r[4], r[6]))

    def agg(key, rows):
        orderkey, orderdate, shippriority = key
        revenue = sum(r[11] * (1 - r[12]) for r in rows)
        return (orderkey, round(revenue, 2), orderdate, shippriority)

    result = grouped.aggregate(agg, _QC_OUT).collect()
    return sorted(result, key=lambda r: (-r[1], r[2], r[0]))[:10]


def _qc_reference(data: TpchDataset) -> List[Row]:
    orders = {o[0]: o for o in data.orders.rows if o[4] < _QC_DATE}
    revenue: Dict[int, float] = {}
    for li in data.lineitem.rows:
        if li[9] > _QC_DATE and li[0] in orders:
            revenue[li[0]] = revenue.get(li[0], 0.0) + li[4] * (1 - li[5])
    rows = [
        (ok, round(rev, 2), orders[ok][4], orders[ok][6])
        for ok, rev in revenue.items()
    ]
    return sorted(rows, key=lambda r: (-r[1], r[2], r[0]))[:10]


# ---------------------------------------------------------------------------
# QD — late orders per quarter of a given year (Q4 style)
# ---------------------------------------------------------------------------

_QD_YEAR = 3  # year index 3 = 1995

_QD_OUT = RowType.of("qd_out", ("quarter", K.INT), ("late_orders", K.LONG))


def _qd_run(env: FlinkEnvironment, data: TpchDataset) -> List[Row]:
    orders = env.from_table(data.orders).filter(
        lambda r: _QD_YEAR * YEAR <= r[4] < (_QD_YEAR + 1) * YEAR
    )
    late_lines = env.from_table(data.lineitem).filter(
        lambda r: r[11] > r[10]  # receiptdate > commitdate
    ).project([0], name="late_keys")
    joined = orders.join(late_lines, left_key=0, right_key=0,
                         accessed_left=[0, 4], accessed_right=[0])
    grouped = joined.group_by(lambda r: (r[4] % YEAR) // 92)

    def agg(quarter, rows):
        return (int(quarter), len({r[0] for r in rows}))

    return sorted(grouped.aggregate(agg, _QD_OUT).collect())


def _qd_reference(data: TpchDataset) -> List[Row]:
    late_orders = {li[0] for li in data.lineitem.rows if li[11] > li[10]}
    counts: Dict[int, set] = {}
    for o in data.orders.rows:
        if _QD_YEAR * YEAR <= o[4] < (_QD_YEAR + 1) * YEAR and o[0] in late_orders:
            counts.setdefault((o[4] % YEAR) // 92, set()).add(o[0])
    return sorted((int(q), len(oks)) for q, oks in counts.items())


# ---------------------------------------------------------------------------
# QE — returned items by lost revenue (Q10 style)
# ---------------------------------------------------------------------------

_QE_OUT = RowType.of(
    "qe_out", ("custkey", K.LONG), ("name", K.STRING),
    ("lost_revenue", K.DOUBLE),
)


def _qe_run(env: FlinkEnvironment, data: TpchDataset) -> List[Row]:
    returned = env.from_table(data.lineitem).filter(lambda r: r[7] == "R")
    orders = env.from_table(data.orders)
    li_orders = returned.join(orders, left_key=0, right_key=0,
                              accessed_left=[0, 4, 5], accessed_right=[0, 1])
    customer = env.from_table(data.customer)
    # joined row: lineitem(12) + orders(7); o_custkey at index 13.
    full = li_orders.join(customer, left_key=13, right_key=0,
                          accessed_right=[0, 1])
    grouped = full.group_by(lambda r: (r[19], r[20]))

    def agg(key, rows):
        custkey, name = key
        lost = sum(r[4] * (1 - r[5]) for r in rows)
        return (custkey, name, round(lost, 2))

    result = grouped.aggregate(agg, _QE_OUT).collect()
    return sorted(result, key=lambda r: (-r[2], r[0]))


def _qe_reference(data: TpchDataset) -> List[Row]:
    orders = {o[0]: o for o in data.orders.rows}
    customers = {c[0]: c for c in data.customer.rows}
    lost: Dict[int, float] = {}
    for li in data.lineitem.rows:
        if li[7] == "R":
            cust = orders[li[0]][1]
            lost[cust] = lost.get(cust, 0.0) + li[4] * (1 - li[5])
    rows = [
        (ck, customers[ck][1], round(v, 2)) for ck, v in lost.items()
    ]
    return sorted(rows, key=lambda r: (-r[2], r[0]))


QUERIES: Dict[str, QuerySpec] = {
    "QA": QuerySpec(
        "QA",
        "Report pricing details for all items shipped within the last 120 days.",
        _qa_run, _qa_reference,
    ),
    "QB": QuerySpec(
        "QB",
        "List the minimum cost supplier for each region for each item in the database.",
        _qb_run, _qb_reference,
    ),
    "QC": QuerySpec(
        "QC",
        "Retrieve the shipping priority and potential revenue of all pending orders.",
        _qc_run, _qc_reference,
    ),
    "QD": QuerySpec(
        "QD",
        "Count the number of late orders in each quarter of a given year.",
        _qd_run, _qd_reference,
    ),
    "QE": QuerySpec(
        "QE",
        "Report all items returned by customers sorted by the lost revenue.",
        _qe_run, _qe_reference,
    ),
}


def run_query(key: str, env: FlinkEnvironment, data: TpchDataset) -> List[Row]:
    return QUERIES[key].run(env, data)
