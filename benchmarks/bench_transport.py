"""T-SOCKET — real-socket pipelined streaming vs store-and-forward.

The only benchmark in this suite that measures *wall-clock* rather than
simulated time: a spawned worker process receives the same ~8 MB vertex
graph over loopback TCP with the chunk pipeline overlapping traversal and
socket I/O (paper §4.2), and again store-and-forward.  The wire is paced
(16 Mb/s, matched to this reproduction's traversal throughput the way the
paper's 1000 Mb/s Ethernet matched Skyway's) so the overlap is visible;
an unthrottled pair of runs documents the traversal-bound regime.
"""

from repro.bench.transport_experiments import (
    format_transport_report,
    run_transport_experiment,
)

from conftest import bench_scale, emit_json, publish


def run(vertices: int):
    return run_transport_experiment(vertices=vertices)


def test_transport_pipelining(benchmark):
    vertices = max(4_000, int(80_000 * bench_scale()))
    result = benchmark.pedantic(lambda: run(vertices), rounds=1, iterations=1)

    publish("transport", format_transport_report(result))
    emit_json("transport", result)

    assert result["byte_identical"], (
        "socket round-trip diverged from the in-process receive path"
    )
    best = result["best"]
    # The §4.2 acceptance check: traversal overlapped with the (paced)
    # wire beats traverse-then-send outright.
    assert best["pipelined_seconds"] < best["store_and_forward_seconds"]
    # The overlap must have been exercised, not just fast by luck: the
    # bounded queue filled at least once while the wire drained.
    assert any(r["queue_full_stalls"] > 0 for r in result["runs"]
               if r["mode"] == "pipelined")
