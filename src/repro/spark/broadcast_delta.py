"""Delta-aware heap broadcast: iterative state shipped as epochs.

Spark's stock broadcast (``SparkContext.broadcast``) re-serializes the
whole value every time it is called — fine for read-only lookup tables,
wasteful for iterative algorithms whose shared state changes a little per
superstep (PageRank ranks, connected-components labels).

:class:`DeltaHeapBroadcast` keeps the authoritative copy of the value *on
the driver heap* and maintains one
:class:`~repro.exchange.channel.GraphChannel` per worker, opened through
the cluster's :class:`~repro.exchange.service.Exchange` — so the same
broadcast works over the in-process substrate and over socket workers.
Each ``push()`` ships one epoch to every worker: FULL the first time,
DELTA thereafter — only the objects mutated through the heap write barrier
since the previous push travel the wire.  Receivers patch their retained
input buffers in place, so the worker-side address of the value is stable
across epochs (``value_on(worker)`` keeps returning the same root).

Staleness (the NACK) is the channel's problem now: a stale receiver makes
``send()`` force a full resend inside one call, and the receipt reports it
— ``push()`` just counts the recoveries.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.delta.policy import ChannelStats, DeltaPolicy
from repro.exchange.channel import GraphChannel
from repro.exchange.service import Exchange
from repro.net.cluster import Cluster, Node


@dataclasses.dataclass
class PushReport:
    """What one ``push()`` epoch cost, per worker and in total."""

    epoch: int
    wire_bytes: int
    modes: Dict[str, str]  # worker name -> "full" | "delta"
    resends: int  # stale-channel full resends this push


class DeltaHeapBroadcast:
    """A driver-heap value broadcast incrementally to every worker."""

    def __init__(
        self,
        cluster: Cluster,
        root: int,
        policy: Optional[DeltaPolicy] = None,
        exchange: Optional[Exchange] = None,
    ) -> None:
        driver = cluster.driver
        if driver.jvm.skyway is None:
            raise RuntimeError(
                "delta broadcast needs Skyway attached to the cluster "
                "(repro.core.attach_skyway)"
            )
        self.cluster = cluster
        self.exchange = (exchange if exchange is not None
                         else Exchange.loopback(cluster))
        self.root = root
        self._pin = driver.jvm.pin(root)
        self._channels: Dict[str, GraphChannel] = {
            worker.name: self.exchange.channel_to(worker.name, policy=policy)
            for worker in cluster.workers
        }
        self._worker_roots: Dict[str, int] = {}
        self.pushes: List[PushReport] = []

    # ------------------------------------------------------------------
    # shipping
    # ------------------------------------------------------------------

    def push(self) -> PushReport:
        """Ship one epoch of the value to every worker."""
        total = 0
        modes: Dict[str, str] = {}
        resends = 0
        epoch = 0
        for worker in self.cluster.workers:
            channel = self._channels[worker.name]
            receipt = channel.send([self.root])
            if receipt.nack_recovered:
                resends += 1
            total += receipt.wire_bytes
            modes[worker.name] = receipt.mode
            epoch = receipt.epoch
            if receipt.roots:
                self._worker_roots[worker.name] = receipt.roots[0]
        report = PushReport(
            epoch=epoch, wire_bytes=total, modes=modes, resends=resends
        )
        self.pushes.append(report)
        return report

    # ------------------------------------------------------------------
    # reading / accounting
    # ------------------------------------------------------------------

    def value_on(self, worker: Node) -> int:
        """The worker-heap address of the broadcast value (stable across
        delta epochs; changes only when a full resend rebuilds it)."""
        try:
            return self._worker_roots[worker.name]
        except KeyError:
            raise RuntimeError(
                f"no epoch pushed to {worker.name} yet; call push() first"
            ) from None

    @property
    def wire_bytes(self) -> int:
        return sum(report.wire_bytes for report in self.pushes)

    def channel_stats(self) -> Dict[str, ChannelStats]:
        return {name: ch.stats for name, ch in self._channels.items()}

    def metrics(self) -> Dict[str, dict]:
        """Per-worker unified exchange metrics (one snapshot each)."""
        return {name: ch.metrics().as_dict()
                for name, ch in self._channels.items()}

    def close(self) -> None:
        """Unpin the driver copy and detach every channel's card table."""
        self.cluster.driver.jvm.unpin(self._pin)
        for channel in self._channels.values():
            channel.close()
