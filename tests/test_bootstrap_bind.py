"""bind_listener: bounded port-in-use retry with exponential backoff."""

import socket
import threading
import time

import pytest

from repro.transport.bootstrap import bind_listener
from repro.transport.errors import WorkerStartupError


@pytest.fixture
def occupied_port():
    """A loopback port held by a live listener for the test's duration."""
    blocker = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    blocker.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    blocker.bind(("127.0.0.1", 0))
    blocker.listen(1)
    yield blocker, blocker.getsockname()[1]
    blocker.close()


class TestBindListener:
    def test_ephemeral_bind_succeeds(self):
        listener = bind_listener("127.0.0.1", 0)
        try:
            assert listener.getsockname()[1] > 0
        finally:
            listener.close()

    def test_occupied_port_fails_typed_after_budget(self, occupied_port):
        _blocker, port = occupied_port
        started = time.monotonic()
        with pytest.raises(WorkerStartupError) as excinfo:
            bind_listener("127.0.0.1", port, attempts=3, backoff=0.01)
        # The budget was spent retrying (0.01 + 0.02 between the tries),
        # and the error names the port and the attempt count.
        assert time.monotonic() - started >= 0.03
        assert str(port) in str(excinfo.value)
        assert "3 bind attempt" in str(excinfo.value)

    def test_port_released_mid_retry_wins(self, occupied_port):
        blocker, port = occupied_port
        timer = threading.Timer(0.05, blocker.close)
        timer.start()
        try:
            listener = bind_listener("127.0.0.1", port,
                                     attempts=8, backoff=0.02)
        finally:
            timer.cancel()
        try:
            assert listener.getsockname()[1] == port
        finally:
            listener.close()

    def test_non_transient_error_fails_fast(self):
        started = time.monotonic()
        with pytest.raises(WorkerStartupError):
            # An unresolvable address is not the retryable class: no
            # backoff sleeps, one attempt, typed error.
            bind_listener("256.256.256.256", 0, attempts=5, backoff=1.0)
        assert time.monotonic() - started < 1.0

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            bind_listener("127.0.0.1", 0, attempts=0)
