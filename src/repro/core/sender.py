"""Sending an object graph (paper §4.2, Algorithm 2).

A BFS "GC-like traversal" from each root clones every reachable object into
the destination's output buffer, adjusting exactly three machine-specific
things per clone and nothing else:

* the **mark word** — GC age / lock / bias bits reset, cached hashcode
  preserved (so hash structures need no rehash on the receiver);
* the **klass word** — replaced by the global type ID (tID);
* **reference fields** — relativized to logical output-buffer addresses.

The ``baddr`` header word of the *source* object records where its clone
lives in the buffer so later references to a shared object reuse the
address even after the clone streamed out.  Its layout follows the paper:
high bytes = shuffle-phase ID (sID), then the sending thread/stream
ID, lowest five bytes = relative buffer address.  (The paper gives the
sID one byte; this reproduction gives it two — taken from the thread
field, which rarely needs more than a byte — because the generic
serializer adapter opens a fresh phase per stream and would wrap one
byte of sID within a single Spark job.)  When a
second thread reaches an object whose ``baddr`` belongs to another thread,
it falls back to a thread-local hash table, so the object is cloned once
per stream — "these copies will become separate objects after delivered to
a remote node. This semantics is consistent with that of the existing
serializers."

Heterogeneous clusters: when the receiver's object layout differs (e.g. a
header without the baddr word), ``CLONEINBUFFER`` re-formats each clone to
the receiver's layout — the sender pays, the receiver uses objects at zero
cost (paper §3.1).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.heap import markword
from repro.heap.heap import NULL, ManagedHeap
from repro.heap.klass import Klass
from repro.heap.layout import HeapLayout, KLASS_OFFSET, MARK_OFFSET, OBJECT_ALIGNMENT, align_up
from repro.jvm.jvm import JVM
from repro.core.output_buffer import OutputBuffer
from repro.types import descriptors
from repro.types.loader import ClassLoader

_REL_BITS = 40
_REL_MASK = (1 << _REL_BITS) - 1
_THREAD_BITS = 8
_THREAD_MASK = (1 << _THREAD_BITS) - 1
_SID_MASK = 0xFFFF


def compose_baddr(sid: int, thread_id: int, relative: int) -> int:
    """Pack (sID, thread, relative address) into the baddr word."""
    if relative > _REL_MASK:
        raise ValueError(f"relative address exceeds 5 bytes: {relative:#x}")
    return (
        ((sid & _SID_MASK) << 48)
        | ((thread_id & _THREAD_MASK) << _REL_BITS)
        | (relative & _REL_MASK)
    )


def baddr_sid(word: int) -> int:
    return (word >> 48) & _SID_MASK


def baddr_thread(word: int) -> int:
    return (word >> _REL_BITS) & _THREAD_MASK


def baddr_relative(word: int) -> int:
    return word & _REL_MASK


class SendError(RuntimeError):
    pass


class ObjectGraphSender:
    """One sending stream: a thread's traversal into one output buffer."""

    def __init__(
        self,
        jvm: JVM,
        buffer: OutputBuffer,
        sid: int,
        thread_id: int = 0,
        target_layout: Optional[HeapLayout] = None,
    ) -> None:
        self.jvm = jvm
        self.buffer = buffer
        self.sid = sid
        self.thread_id = thread_id & _THREAD_MASK
        self.source_layout = jvm.layout
        self.target_layout = target_layout if target_layout is not None else jvm.layout
        self.heterogeneous = self.target_layout != self.source_layout
        self._target_loader: Optional[ClassLoader] = None
        self._target_cache: Dict[str, Klass] = {}
        #: Thread-local fallback table for objects first claimed by another
        #: thread's baddr (paper §4.2 "Support for Threads").
        self._shared_table: Dict[int, int] = {}
        #: Logical offsets of the top (root) objects, in write order.
        self.top_marks: List[int] = []
        #: Every cloned object as ``(source_address, buffer_address,
        #: payload_bytes)``, in clone order — the raw material for the
        #: delta subsystem's send-epoch cache (source address → receiver
        #: buffer offset, via the same baddr machinery).
        self.cloned: List[Tuple[int, int, int]] = []
        self.objects_sent = 0
        self.bytes_sent = 0
        # Byte composition of the transferred image (the paper's §5.2
        # extra-bytes analysis: headers 51% / padding 34% / pointers 15%).
        self.header_bytes = 0
        self.pointer_bytes = 0
        self.data_bytes = 0
        self.padding_bytes = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def write_object(self, root: int) -> int:
        """Copy the graph reachable from ``root`` into the output buffer;
        returns the root's logical buffer address and records a top mark."""
        if root == NULL:
            # writeObject(null) is legal for the Java serializer, so it is
            # here too: a zero top mark denotes a null root.
            self.top_marks.append(0)
            return 0
        heap = self.jvm.heap
        word = heap.read_baddr(root)
        if baddr_sid(word) == (self.sid & _SID_MASK):
            # Already copied in this shuffling phase *by this stream* (this
            # thread's baddr or our shared-object table): emit a backward
            # reference to its buffer location.  A baddr stamped by another
            # thread means a different stream copied it — this stream still
            # clones its own copy below (§4.2 "Support for Threads").
            if baddr_thread(word) == self.thread_id:
                old_addr = baddr_relative(word)
                self.top_marks.append(old_addr)
                return old_addr
            existing = self._shared_table.get(root)
            if existing is not None:
                self.top_marks.append(existing)
                return existing

        root_addr = self._claim(root)
        gray: Deque[Tuple[int, int]] = deque([(root, root_addr)])
        while gray:
            source, addr = gray.popleft()
            self._clone_in_buffer(source, addr, gray)
        self.top_marks.append(root_addr)
        return root_addr

    # ------------------------------------------------------------------
    # traversal internals
    # ------------------------------------------------------------------

    def _claim(self, obj: int) -> int:
        """Reserve buffer space for ``obj`` and stamp its baddr (or the
        thread-local table when another thread holds the baddr)."""
        heap = self.jvm.heap
        size = self._target_size(obj)
        addr = self.buffer.reserve(size)
        word = heap.read_baddr(obj)
        if baddr_sid(word) == (self.sid & _SID_MASK) and baddr_thread(word) != self.thread_id:
            self._shared_table[obj] = addr
        else:
            # CAS in the real system; deterministic single-writer here.
            heap.write_baddr(obj, compose_baddr(self.sid, self.thread_id, addr))
        return addr

    def _resolve_reference(self, obj: int, gray: Deque[Tuple[int, int]]) -> int:
        """Relativized address for a referenced object, claiming it (and
        queueing it for cloning) on first visit this phase."""
        if obj == NULL:
            return 0
        cost = self.jvm.cost_model
        self.jvm.clock.charge(cost.traverse_word)
        heap = self.jvm.heap
        word = heap.read_baddr(obj)
        if baddr_sid(word) == (self.sid & _SID_MASK):
            if baddr_thread(word) == self.thread_id:
                return baddr_relative(word)
            existing = self._shared_table.get(obj)
            if existing is not None:
                return existing
            # Claimed by another thread: clone separately for this stream.
            addr = self.buffer.reserve(self._target_size(obj))
            self._shared_table[obj] = addr
            gray.append((obj, addr))
            return addr
        addr = self._claim(obj)
        gray.append((obj, addr))
        return addr

    def _clone_in_buffer(
        self, source: int, addr: int, gray: Deque[Tuple[int, int]]
    ) -> None:
        """CLONEINBUFFER + header update + reference relativization for one
        object (Algorithm 2 lines 10–27)."""
        heap = self.jvm.heap
        cost = self.jvm.cost_model
        klass = heap.klass_of(source)
        if klass.tid is None:
            raise SendError(
                f"class {klass.name} has no global type ID — is the Skyway "
                f"type registry attached to this JVM?"
            )
        if self.heterogeneous:
            payload = self._convert_format(source, klass, gray)
        else:
            payload = bytearray(heap.read_bytes(source, heap.object_size(source)))
            self._fix_header(payload, klass)
            self._fix_references_homogeneous(source, payload, gray)

        self.jvm.clock.charge(cost.skyway_header_fixup)
        self.jvm.clock.charge(cost.memcpy(len(payload)))
        self.buffer.write_object(addr, bytes(payload))
        self.cloned.append((source, addr, len(payload)))
        self.objects_sent += 1
        self.bytes_sent += len(payload)
        array_length = heap.array_length(source) if klass.is_array else None
        self._account_composition(klass, len(payload), array_length)

    def _account_composition(
        self, klass: Klass, payload_len: int, array_length: Optional[int]
    ) -> None:
        """Split one clone's bytes into header / pointers / data / padding."""
        target = self._target_klass(klass.name) if self.heterogeneous else klass
        header = self.target_layout.header_size
        pointers = 0
        data = 0
        if target.is_array:
            header += 4  # the length slot counts as header metadata
            elem = target.element_descriptor or ""
            count = array_length or 0
            if descriptors.is_reference(elem):
                pointers = count * 8
            else:
                data = count * target.element_size
        else:
            for field in target.all_fields():
                if field.is_reference:
                    pointers += 8
                else:
                    data += field.size
        padding = payload_len - header - pointers - data
        self.header_bytes += header
        self.pointer_bytes += pointers
        self.data_bytes += data
        self.padding_bytes += max(0, padding)

    def _fix_header(self, payload: bytearray, klass: Klass) -> None:
        mark = int.from_bytes(payload[MARK_OFFSET : MARK_OFFSET + 8], "little")
        clean = markword.reset_for_transfer(mark)
        payload[MARK_OFFSET : MARK_OFFSET + 8] = clean.to_bytes(8, "little")
        payload[KLASS_OFFSET : KLASS_OFFSET + 8] = (klass.tid or 0).to_bytes(8, "little")
        if self.target_layout.has_baddr:
            off = self.target_layout.baddr_offset
            payload[off : off + 8] = bytes(8)

    def _fix_references_homogeneous(
        self, source: int, payload: bytearray, gray: Deque[Tuple[int, int]]
    ) -> None:
        heap = self.jvm.heap
        cost = self.jvm.cost_model
        for offset in heap.reference_offsets(source):
            target = heap.read_word(source + offset)
            relative = self._resolve_reference(target, gray)
            payload[offset : offset + 8] = relative.to_bytes(8, "little")
            self.jvm.clock.charge(cost.skyway_pointer_fixup)

    # ------------------------------------------------------------------
    # heterogeneous-format support
    # ------------------------------------------------------------------

    def _target_klass(self, name: str) -> Klass:
        if not self.heterogeneous:
            return self.jvm.loader.load(name)
        cached = self._target_cache.get(name)
        if cached is not None:
            return cached
        if self._target_loader is None:
            self._target_loader = ClassLoader(self.jvm.classpath, self.target_layout)
        klass = self._target_loader.load(name)
        self._target_cache[name] = klass
        return klass

    def _target_size(self, obj: int) -> int:
        heap = self.jvm.heap
        klass = heap.klass_of(obj)
        if not self.heterogeneous:
            return heap.object_size(obj)
        target = self._target_klass(klass.name)
        if target.is_array:
            return target.object_size(heap.array_length(obj))
        return target.object_size()

    def _convert_format(
        self, source: int, klass: Klass, gray: Deque[Tuple[int, int]]
    ) -> bytearray:
        """Re-lay an object out in the receiver's format: new header
        geometry, new field offsets.  Extra cost lands on the sender only
        (paper §3.1)."""
        heap = self.jvm.heap
        cost = self.jvm.cost_model
        target = self._target_klass(klass.name)
        if target.is_array:
            length = heap.array_length(source)
            size = target.object_size(length)
        else:
            length = None
            size = target.object_size()
        payload = bytearray(size)

        mark = markword.reset_for_transfer(heap.read_mark(source))
        payload[MARK_OFFSET : MARK_OFFSET + 8] = mark.to_bytes(8, "little")
        payload[KLASS_OFFSET : KLASS_OFFSET + 8] = (klass.tid or 0).to_bytes(8, "little")
        # Conversion pays roughly a second copy of the object.
        self.jvm.clock.charge(cost.memcpy(size))

        if target.is_array:
            assert length is not None
            lo = self.target_layout.array_length_offset
            payload[lo : lo + 4] = length.to_bytes(4, "little")
            elem = target.element_descriptor or ""
            src_base = self.source_layout.array_payload_offset(elem)
            dst_base = self.target_layout.array_payload_offset(elem)
            esize = target.element_size
            if descriptors.is_reference(elem):
                for i in range(length):
                    ref = heap.read_word(source + src_base + i * esize)
                    rel = self._resolve_reference(ref, gray)
                    off = dst_base + i * esize
                    payload[off : off + 8] = rel.to_bytes(8, "little")
                    self.jvm.clock.charge(cost.skyway_pointer_fixup)
            else:
                raw = heap.read_bytes(source + src_base, length * esize)
                payload[dst_base : dst_base + len(raw)] = raw
        else:
            source_fields = {f.name: f for f in klass.all_fields()}
            for tf in target.all_fields():
                sf = source_fields[tf.name]
                if tf.is_reference:
                    ref = heap.read_word(source + sf.offset)
                    rel = self._resolve_reference(ref, gray)
                    payload[tf.offset : tf.offset + 8] = rel.to_bytes(8, "little")
                    self.jvm.clock.charge(cost.skyway_pointer_fixup)
                else:
                    raw = heap.read_bytes(source + sf.offset, sf.size)
                    payload[tf.offset : tf.offset + tf.size] = raw
        return payload
