"""Full-catalog JSBS ranking: the figure's family ordering must hold."""

import pytest

from repro.jsbs.harness import run_jsbs
from repro.jsbs.libraries import LIBRARY_CATALOG


@pytest.fixture(scope="module")
def full_results():
    return run_jsbs(LIBRARY_CATALOG, nodes=3, objects=5, rounds=1)


class TestCatalogOrdering:
    def test_skyway_first(self, full_results):
        assert full_results[0].library == "skyway"

    def test_java_last_among_named(self, full_results):
        ranking = [r.library for r in full_results]
        named = [n for n in ranking if n not in ("other-63-slower",)]
        assert named[-1] == "java-built-in"

    def test_schema_family_leads_generated_family(self, full_results):
        ranking = {r.library: i for i, r in enumerate(full_results)}
        # The figure's shape: tight schema-compiled codecs ahead of the
        # registration/generated family's best member.
        assert ranking["colfer"] < ranking["kryo-manual"]
        assert ranking["protostuff"] < ranking["kryo-manual"]

    def test_within_family_factor_ordering(self, full_results):
        ranking = {r.library: i for i, r in enumerate(full_results)}
        assert ranking["protostuff"] < ranking["protostuff-runtime"]
        assert ranking["kryo-manual"] < ranking["kryo-flat"]
        assert ranking["thrift-compact"] < ranking["thrift"]

    def test_every_library_roundtrips(self, full_results):
        # run_jsbs asserts per-receiver object counts internally; reaching
        # here means all 30 libraries decoded every object.
        assert len(full_results) == len(LIBRARY_CATALOG)

    def test_components_all_positive(self, full_results):
        for r in full_results:
            assert r.serialization > 0 and r.deserialization > 0
            assert r.bytes_per_object > 100  # media objects are ~KB-scale


class TestTopLevelExports:
    def test_package_exports(self):
        import repro

        assert repro.__version__ == "1.0.0"
        assert callable(repro.attach_skyway)
        assert repro.SkywaySerializer().name == "skyway"
        with pytest.raises(AttributeError):
            repro.nonexistent
