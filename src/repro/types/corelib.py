"""Core library class definitions shared by every experiment.

These mirror the JDK classes the paper's workloads depend on: ``Object``,
``String`` (a char-array holder), the primitive boxes, ``HashMap`` (a
bucketed node table whose layout depends on cached hashcodes — the structure
Skyway's hashcode preservation keeps valid across the wire, §4.2 "Header
Update"), ``ArrayList``, and generic ``TupleN`` record carriers used by the
dataflow engines.
"""

from __future__ import annotations

from repro.types.classdef import ClassDef, ClassPath, OBJECT_CLASS

STRING = "java.lang.String"
INTEGER = "java.lang.Integer"
LONG = "java.lang.Long"
DOUBLE = "java.lang.Double"
BOOLEAN = "java.lang.Boolean"
HASHMAP = "java.util.HashMap"
HASHMAP_NODE = "java.util.HashMap$Node"
ARRAYLIST = "java.util.ArrayList"
HASHSET = "java.util.HashSet"
LONGSET = "repro.runtime.LongSet"
DOUBLESET = "repro.runtime.DoubleSet"

TUPLE_PREFIX = "repro.runtime.Tuple"
# Flink defines Tuple1..Tuple25; 32 covers every schema in this repo,
# including multi-way TPC-H join results (QE peaks at 23 fields).
MAX_TUPLE_ARITY = 32


def tuple_class_name(arity: int) -> str:
    if not 1 <= arity <= MAX_TUPLE_ARITY:
        raise ValueError(f"tuple arity out of range: {arity}")
    return f"{TUPLE_PREFIX}{arity}"


#: Specialization signatures: like Scala's @specialized TupleN subclasses
#: (Tuple2$mcJI$sp...), a signature letter per field: J = primitive long,
#: D = primitive double, L = reference.  Shuffle records of primitives are
#: one flat object — no boxing — which is what keeps Skyway's Spark byte
#: overhead at the paper's ~1.8x-of-Kryo level rather than several-x.
SPECIALIZED_ARITY_LIMIT = 4
_SIG_LETTERS = ("J", "D", "L")


def specialized_tuple_name(signature: str) -> str:
    if not 1 <= len(signature) <= SPECIALIZED_ARITY_LIMIT:
        raise ValueError(f"bad specialization arity: {signature!r}")
    if any(c not in _SIG_LETTERS for c in signature):
        raise ValueError(f"bad specialization signature: {signature!r}")
    return f"{TUPLE_PREFIX}{len(signature)}${signature}"


def _specialized_defs():
    import itertools as _it

    defs = []
    for arity in range(1, SPECIALIZED_ARITY_LIMIT + 1):
        for sig in _it.product(_SIG_LETTERS, repeat=arity):
            signature = "".join(sig)
            if signature == "L" * arity:
                continue  # the generic TupleN covers all-reference
            fields = []
            for i, letter in enumerate(signature):
                if letter == "L":
                    fields.append((f"f{i}", "Ljava.lang.Object;"))
                else:
                    fields.append((f"f{i}", letter))
            defs.append(
                ClassDef.define(specialized_tuple_name(signature), fields)
            )
    return defs


def core_class_defs() -> list:
    """Definitions for the simulated JDK core library."""
    defs = [
        ClassDef.define(STRING, [("value", "[C"), ("hash", "I")]),
        ClassDef.define(INTEGER, [("value", "I")], super_name="java.lang.Number"),
        ClassDef.define(LONG, [("value", "J")], super_name="java.lang.Number"),
        ClassDef.define(DOUBLE, [("value", "D")], super_name="java.lang.Number"),
        ClassDef.define(BOOLEAN, [("value", "Z")]),
        ClassDef.define("java.lang.Number", []),
        ClassDef.define(
            HASHMAP_NODE,
            [
                ("hash", "I"),
                ("key", "Ljava.lang.Object;"),
                ("value", "Ljava.lang.Object;"),
                ("next", f"L{HASHMAP_NODE};"),
            ],
        ),
        ClassDef.define(
            HASHMAP,
            [("table", f"[L{HASHMAP_NODE};"), ("size", "I"), ("threshold", "I")],
        ),
        ClassDef.define(
            ARRAYLIST,
            [("elementData", "[Ljava.lang.Object;"), ("size", "I")],
        ),
        # Modeled as an insertion-ordered element array: enough structure
        # for transfer experiments without a second bucket-table model.
        ClassDef.define(
            HASHSET,
            [("elementData", "[Ljava.lang.Object;"), ("size", "I")],
        ),
        # Primitive-specialized sets (GraphX-style compact vertex sets):
        # most shuffled bytes in graph workloads live in primitive arrays,
        # which is what keeps Skyway's byte overhead near the paper's
        # 1.77x-of-Kryo (boxes would inflate it several-fold).
        ClassDef.define(LONGSET, [("elements", "[J")]),
        ClassDef.define(DOUBLESET, [("elements", "[D")]),
    ]
    for arity in range(1, MAX_TUPLE_ARITY + 1):
        defs.append(
            ClassDef.define(
                tuple_class_name(arity),
                [(f"f{i}", "Ljava.lang.Object;") for i in range(arity)],
            )
        )
    defs.extend(_specialized_defs())
    return defs


def install_core_classes(classpath: ClassPath) -> ClassPath:
    """Add the core library to ``classpath`` (idempotent)."""
    for d in core_class_defs():
        if d.name not in classpath:
            classpath.add(d)
    return classpath


def standard_classpath() -> ClassPath:
    """A fresh class path holding Object + the core library."""
    return install_core_classes(ClassPath())


__all__ = [
    "OBJECT_CLASS",
    "STRING",
    "INTEGER",
    "LONG",
    "DOUBLE",
    "BOOLEAN",
    "HASHMAP",
    "HASHMAP_NODE",
    "ARRAYLIST",
    "HASHSET",
    "LONGSET",
    "DOUBLESET",
    "TUPLE_PREFIX",
    "MAX_TUPLE_ARITY",
    "tuple_class_name",
    "specialized_tuple_name",
    "SPECIALIZED_ARITY_LIMIT",
    "core_class_defs",
    "install_core_classes",
    "standard_classpath",
]
