"""Tests for Skyway's multi-thread sending and heterogeneous-cluster paths."""

import pytest

from repro.core.runtime import attach_skyway
from repro.core.sender import (
    ObjectGraphSender,
    baddr_relative,
    baddr_sid,
    baddr_thread,
    compose_baddr,
)
from repro.core.streams import SkywayObjectInputStream, SkywayObjectOutputStream
from repro.heap.layout import BASELINE_LAYOUT, SKYWAY_LAYOUT
from repro.jvm.jvm import JVM
from repro.jvm.marshal import from_heap, to_heap

from tests.conftest import make_date, make_list, read_date, read_list


class TestBaddrEncoding:
    def test_roundtrip(self):
        word = compose_baddr(sid=300, thread_id=7, relative=0x12345)
        assert baddr_sid(word) == 300
        assert baddr_thread(word) == 7
        assert baddr_relative(word) == 0x12345

    def test_field_isolation(self):
        word = compose_baddr(sid=0xFFFF, thread_id=0xFF, relative=(1 << 40) - 8)
        assert baddr_sid(word) == 0xFFFF
        assert baddr_thread(word) == 0xFF
        assert baddr_relative(word) == (1 << 40) - 8

    def test_relative_overflow_rejected(self):
        with pytest.raises(ValueError):
            compose_baddr(1, 1, 1 << 40)


class TestMultiThreadSending:
    """Paper §4.2 'Support for Threads': per-thread buffers, baddr ownership
    by stream, hash-table fallback, and duplicate clones for shared data."""

    @pytest.fixture
    def setup(self, classpath):
        src = JVM("s", classpath=classpath)
        dst = JVM("r", classpath=classpath)
        attach_skyway(src, [dst])
        return src, dst

    def _send(self, src, dst, root, thread_id):
        src_stream = SkywayObjectOutputStream(
            src.skyway, destination=f"t{thread_id}", thread_id=thread_id
        )
        src_stream.write_object(root)
        data = src_stream.close()
        inp = SkywayObjectInputStream(dst.skyway)
        inp.accept(data)
        return inp.read_object()

    def test_two_threads_same_object_same_phase(self, setup):
        src, dst = setup
        date = make_date(src, 2018, 1, 1)
        src.skyway.shuffle_start()
        r1 = self._send(src, dst, date, thread_id=1)
        r2 = self._send(src, dst, date, thread_id=2)
        assert read_date(dst, r1) == (2018, 1, 1)
        assert read_date(dst, r2) == (2018, 1, 1)
        assert r1 != r2  # separate copies, matching existing serializers

    def test_second_thread_uses_hash_table(self, setup):
        src, dst = setup
        head = make_list(src, [1, 2, 3])
        src.skyway.shuffle_start()
        s1 = src.skyway.new_sender("a", thread_id=1)
        s1.write_object(head)
        s2 = src.skyway.new_sender("b", thread_id=2)
        s2.write_object(head)
        # Thread 2 found baddrs owned by thread 1 and fell back.
        assert len(s2._shared_table) == 3

    def test_thread_shared_subobject(self, setup):
        """Two roots on different threads sharing a leaf: each stream gets
        its own clone of the leaf."""
        src, dst = setup
        shared = src.new_instance("Day2D")
        src.set_field(shared, "day", 4)
        d1, d2 = src.new_instance("Date"), src.new_instance("Date")
        src.set_field(d1, "day", shared)
        src.set_field(d2, "day", shared)
        src.skyway.shuffle_start()
        r1 = self._send(src, dst, d1, thread_id=1)
        r2 = self._send(src, dst, d2, thread_id=2)
        leaf1, leaf2 = dst.get_field(r1, "day"), dst.get_field(r2, "day")
        assert leaf1 != leaf2
        assert dst.get_field(leaf1, "day") == dst.get_field(leaf2, "day") == 4

    def test_same_thread_reuses_baddr_across_streams_in_phase(self, setup):
        """Within one phase, a destination's buffer sees each object once."""
        src, dst = setup
        date = make_date(src, 3, 3, 3)
        src.skyway.shuffle_start()
        sender = src.skyway.new_sender("a", thread_id=1)
        first = sender.write_object(date)
        again = sender.write_object(date)
        assert first == again
        assert sender.objects_sent == 4  # Date + 3 leaves, no re-copy


class TestHeterogeneousTransfer:
    """Paper §3.1: different object formats across the cluster; the sender
    adjusts formats while cloning, the receiver pays nothing extra."""

    def _make_pair(self, classpath, src_layout, dst_layout):
        src = JVM("s", classpath=classpath, layout=src_layout)
        dst = JVM("r", classpath=classpath, layout=dst_layout)
        attach_skyway(src, [dst])
        return src, dst

    def test_skyway_to_baseline_layout(self, classpath):
        src, dst = self._make_pair(classpath, SKYWAY_LAYOUT, BASELINE_LAYOUT)
        date = make_date(src, 2018, 3, 24)
        out = SkywayObjectOutputStream(
            src.skyway, destination="p", target_layout=BASELINE_LAYOUT
        )
        out.write_object(date)
        inp = SkywayObjectInputStream(dst.skyway)
        inp.accept(out.close())
        received = inp.read_object()
        assert read_date(dst, received) == (2018, 3, 24)

    def test_baseline_to_skyway_layout(self, classpath):
        # A baseline-layout sender cannot hold baddr words, so the sender
        # JVM uses the Skyway layout (it runs Skyway); the *receiver* is
        # what varies in practice.  Still, the converter is symmetric and
        # arrays + strings must survive both directions.
        src, dst = self._make_pair(classpath, SKYWAY_LAYOUT, SKYWAY_LAYOUT)
        value = ["text", (1, 2.5), b"\x09"]
        addr = to_heap(src, value)
        out = SkywayObjectOutputStream(
            src.skyway, destination="p", target_layout=SKYWAY_LAYOUT
        )
        out.write_object(addr)
        inp = SkywayObjectInputStream(dst.skyway)
        inp.accept(out.close())
        assert from_heap(dst, inp.read_object()) == value

    def test_hetero_arrays_and_strings(self, classpath):
        src, dst = self._make_pair(classpath, SKYWAY_LAYOUT, BASELINE_LAYOUT)
        value = {"k": [1, 2, 3], "s": "héllo"}
        addr = to_heap(src, value)
        out = SkywayObjectOutputStream(
            src.skyway, destination="p", target_layout=BASELINE_LAYOUT
        )
        out.write_object(addr)
        inp = SkywayObjectInputStream(dst.skyway)
        inp.accept(out.close())
        assert from_heap(dst, inp.read_object()) == value

    def test_hetero_objects_smaller_on_baseline_receiver(self, classpath):
        """Re-formatted clones drop the baddr word: 8 bytes per object."""
        src, dst = self._make_pair(classpath, SKYWAY_LAYOUT, BASELINE_LAYOUT)
        date = make_date(src, 1, 1, 1)
        out = SkywayObjectOutputStream(
            src.skyway, destination="p", target_layout=BASELINE_LAYOUT
        )
        out.write_object(date)
        hetero_bytes = out.sender.bytes_sent
        src2 = JVM("s2", classpath=classpath)
        dst2 = JVM("r2", classpath=classpath)
        attach_skyway(src2, [dst2])
        date2 = make_date(src2, 1, 1, 1)
        out2 = SkywayObjectOutputStream(src2.skyway, destination="p")
        out2.write_object(date2)
        homo_bytes = out2.sender.bytes_sent
        assert homo_bytes - hetero_bytes == 4 * 8  # 4 objects x 1 word

    def test_hetero_costs_charged_to_sender_only(self, classpath):
        src, dst = self._make_pair(classpath, SKYWAY_LAYOUT, BASELINE_LAYOUT)
        date = make_date(src, 1, 1, 1)
        dst_before = dst.clock.total()
        out = SkywayObjectOutputStream(
            src.skyway, destination="p", target_layout=BASELINE_LAYOUT
        )
        out.write_object(date)
        inp = SkywayObjectInputStream(dst.skyway)
        inp.accept(out.close())
        # The receiver's charge is the same linear scan it always pays;
        # compare with a homogeneous receive of the same graph.
        hetero_receiver_cost = dst.clock.total() - dst_before
        src2 = JVM("s2", classpath=classpath)
        dst2 = JVM("r2", classpath=classpath, layout=SKYWAY_LAYOUT)
        attach_skyway(src2, [dst2])
        date2 = make_date(src2, 1, 1, 1)
        out2 = SkywayObjectOutputStream(src2.skyway, destination="p")
        out2.write_object(date2)
        d2_before = dst2.clock.total()
        inp2 = SkywayObjectInputStream(dst2.skyway)
        inp2.accept(out2.close())
        homo_receiver_cost = dst2.clock.total() - d2_before
        assert hetero_receiver_cost <= homo_receiver_cost + 1e-12
