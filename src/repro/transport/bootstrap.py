"""Building a Skyway runtime (and its listening socket) inside a fresh
process.

``multiprocessing.spawn`` pickles worker arguments, and a
:class:`~repro.core.runtime.SkywayRuntime` (heap bytearrays, klass graphs,
hooks) is not meaningfully picklable — so workers are described by a
*recipe*: the dotted name of a zero-argument classpath factory plus JVM
sizing.  Parent and child both call :func:`build_runtime`, which also
gives tests an identical in-process reference runtime for the
byte-identical round-trip check.

:func:`bind_listener` is the harness's other bootstrap step: binding the
server port with a *bounded* retry on address-in-use, so spawning a whole
fleet of workers on one host never flakes on an ephemeral-port race (a
just-released port lingering in TIME_WAIT, or two spawns landing on the
same kernel-chosen port between bind and listen).
"""

from __future__ import annotations

import errno
import importlib
import socket
import time
from typing import Callable

from repro.core.runtime import SkywayRuntime
from repro.core.type_registry import DriverRegistry
from repro.jvm.jvm import JVM
from repro.transport.errors import WorkerStartupError
from repro.types.classdef import ClassPath

MB = 1024 * 1024

#: errnos that mean "this port is (still) taken" — the transient class
#: worth retrying; anything else (bad address, permissions) fails fast.
_BIND_RETRY_ERRNOS = frozenset(
    e for e in (
        getattr(errno, "EADDRINUSE", None),
        getattr(errno, "EADDRNOTAVAIL", None),
    ) if e is not None
)


def bind_listener(
    host: str,
    port: int,
    attempts: int = 5,
    backoff: float = 0.05,
    backlog: int = 8,
) -> socket.socket:
    """Bind and listen on ``host:port`` with bounded port-in-use retry.

    Retries only the transient "address in use" class with exponential
    backoff (``backoff * 2**n`` between tries); the budget is bounded so a
    genuinely occupied fixed port surfaces as a typed
    :class:`WorkerStartupError` instead of a hang.  ``port=0`` asks the
    kernel for an ephemeral port, which can *still* race another process
    between allocation and listen — the retry covers that case too.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    last_error: Exception = None  # type: ignore[assignment]
    for attempt in range(attempts):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind((host, port))
            listener.listen(backlog)
            return listener
        except OSError as exc:
            listener.close()
            if exc.errno not in _BIND_RETRY_ERRNOS:
                raise WorkerStartupError(
                    f"cannot bind {host}:{port}: {exc}"
                ) from exc
            last_error = exc
            if attempt + 1 < attempts:
                time.sleep(backoff * (2 ** attempt))
    raise WorkerStartupError(
        f"port {host}:{port} still in use after {attempts} bind "
        f"attempt(s): {last_error}"
    )


def resolve_classpath_factory(spec: str) -> Callable[[], ClassPath]:
    """``"pkg.module:function"`` -> the callable it names."""
    module_name, sep, attr = spec.partition(":")
    if not sep or not module_name or not attr:
        raise WorkerStartupError(
            f"classpath factory {spec!r} is not of the form 'module:function'"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise WorkerStartupError(
            f"cannot import classpath factory module {module_name!r}: {exc}"
        ) from exc
    factory = getattr(module, attr, None)
    if not callable(factory):
        raise WorkerStartupError(
            f"{module_name!r} has no callable {attr!r}"
        )
    return factory


def build_runtime(
    name: str,
    classpath_factory: str,
    young_bytes: int = 4 * MB,
    old_bytes: int = 64 * MB,
) -> SkywayRuntime:
    """A self-driving Skyway runtime (each process is its own registry
    driver; cross-process agreement comes from the HELLO merge)."""
    classpath = resolve_classpath_factory(classpath_factory)()
    jvm = JVM(name, classpath=classpath,
              young_bytes=young_bytes, old_bytes=old_bytes)
    return SkywayRuntime(jvm, DriverRegistry(), is_driver=True)
