"""Tests for the managed heap: allocation, field access, regions, barriers."""

import pytest

from repro.heap.heap import NULL, OutOfMemoryError, SegfaultError
from repro.heap.layout import SKYWAY_LAYOUT
from repro.jvm.jvm import JVM

from tests.conftest import make_date, make_list, read_date, read_list


class TestAllocation:
    def test_instance_allocation_zeroed(self, jvm):
        addr = jvm.new_instance("Mixed")
        for field in jvm.klass_of(addr).all_fields():
            assert jvm.heap.read_field(addr, field) in (0, 0.0)

    def test_distinct_addresses(self, jvm):
        a = jvm.new_instance("Date")
        b = jvm.new_instance("Date")
        assert a != b

    def test_array_allocation_and_length(self, jvm):
        arr = jvm.new_array("I", 10)
        assert jvm.heap.array_length(arr) == 10
        assert jvm.klass_of(arr).is_array

    def test_addresses_are_aligned(self, jvm):
        for _ in range(5):
            assert jvm.new_instance("Date") % 8 == 0

    def test_heap_address_spaces_disjoint(self, classpath):
        a = JVM("a", classpath=classpath)
        b = JVM("b", classpath=classpath)
        addr = a.new_instance("Date")
        with pytest.raises(SegfaultError):
            b.heap.read_word(addr)

    def test_old_gen_allocation(self, jvm):
        addr = jvm.heap.allocate(jvm.loader.load("Date"), old_gen=True)
        assert jvm.heap.old.contains(addr)

    def test_eden_fills_then_raises_at_heap_level(self, classpath):
        jvm = JVM("tiny", classpath=classpath, young_bytes=32 * 1024)
        klass = jvm.loader.load("Date")
        with pytest.raises(OutOfMemoryError):
            for _ in range(10_000):
                jvm.heap.allocate(klass)


class TestFieldAccess:
    def test_primitive_roundtrip_all_kinds(self, jvm):
        addr = jvm.new_instance("Mixed")
        values = {
            "b": -12, "z": True, "c": 0xBEEF, "s": -3000,
            "i": -123456, "f": 1.5, "j": -(1 << 40), "d": 3.141592653589793,
        }
        for name, value in values.items():
            jvm.set_field(addr, name, value)
        for name, value in values.items():
            got = jvm.get_field(addr, name)
            if name == "z":
                assert got == 1
            else:
                assert got == value

    def test_reference_field_roundtrip(self, jvm):
        date = make_date(jvm, 2018, 3, 24)
        assert read_date(jvm, date) == (2018, 3, 24)

    def test_null_reference(self, jvm):
        node = jvm.new_instance("ListNode")
        assert jvm.get_field(node, "next") == NULL

    def test_unknown_field_raises(self, jvm):
        addr = jvm.new_instance("Date")
        with pytest.raises(KeyError):
            jvm.get_field(addr, "nope")

    def test_array_element_roundtrip(self, jvm):
        arr = jvm.new_array("J", 4)
        for i in range(4):
            jvm.heap.write_element(arr, i, (i + 1) * -(10**12))
        assert [jvm.heap.read_element(arr, i) for i in range(4)] == [
            -(10**12), -2 * 10**12, -3 * 10**12, -4 * 10**12
        ]

    def test_array_bounds_checked(self, jvm):
        arr = jvm.new_array("I", 2)
        with pytest.raises(IndexError):
            jvm.heap.read_element(arr, 2)
        with pytest.raises(IndexError):
            jvm.heap.write_element(arr, -1, 0)

    def test_reference_offsets_for_instance(self, jvm):
        date = jvm.new_instance("Date")
        offs = jvm.heap.reference_offsets(date)
        assert len(offs) == 3

    def test_reference_offsets_for_ref_array(self, jvm):
        arr = jvm.new_array("Ljava.lang.Object;", 3)
        assert len(jvm.heap.reference_offsets(arr)) == 3

    def test_reference_offsets_for_prim_array(self, jvm):
        arr = jvm.new_array("I", 3)
        assert jvm.heap.reference_offsets(arr) == []


class TestWriteBarrier:
    def test_store_into_old_dirties_card(self, jvm):
        old_obj = jvm.heap.allocate(jvm.loader.load("ListNode"), old_gen=True)
        young = jvm.new_instance("ListNode")
        jvm.set_field(old_obj, "next", young)
        field = jvm.klass_of(old_obj).field("next")
        assert jvm.heap.card_table.is_dirty(old_obj + field.offset)

    def test_store_into_young_leaves_cards_clean(self, jvm):
        a = jvm.new_instance("ListNode")
        b = jvm.new_instance("ListNode")
        jvm.set_field(a, "next", b)
        assert jvm.heap.card_table.dirty_count == 0


class TestObjectSizeAndIdentity:
    def test_object_size_instance(self, jvm):
        date = jvm.new_instance("Date")
        assert jvm.heap.object_size(date) == jvm.klass_of(date).instance_size

    def test_object_size_array(self, jvm):
        arr = jvm.new_array("I", 7)
        assert jvm.heap.object_size(arr) == SKYWAY_LAYOUT.array_size("I", 7)

    def test_identity_hash_stable(self, jvm):
        addr = jvm.new_instance("Date")
        h1 = jvm.identity_hash(addr)
        h2 = jvm.identity_hash(addr)
        assert h1 == h2
        assert h1 != 0

    def test_identity_hash_cached_in_mark(self, jvm):
        from repro.heap import markword
        addr = jvm.new_instance("Date")
        h = jvm.identity_hash(addr)
        assert markword.get_hash(jvm.heap.read_mark(addr)) == h

    def test_string_roundtrip(self, jvm):
        s = jvm.new_string("skyway: héllo ☂")
        assert jvm.read_string(s) == "skyway: héllo ☂"

    def test_empty_string(self, jvm):
        assert jvm.read_string(jvm.new_string("")) == ""


class TestLinkedStructures:
    def test_linked_list_roundtrip(self, jvm):
        head = make_list(jvm, [1, 2, 3, 4, 5])
        assert read_list(jvm, head) == [1, 2, 3, 4, 5]

    def test_raw_old_reservation_and_registration(self, jvm):
        addr = jvm.heap.reserve_raw_old(1024)
        assert jvm.heap.old.contains(addr)
        jvm.heap.register_object(addr)
        with pytest.raises(Exception):
            jvm.heap.register_object(addr)  # must be ascending
