"""Skyway (ASPLOS '18) reproduction: direct managed-heap-to-heap transfer
for distributed big data systems, over a simulated JVM substrate.

Top-level convenience exports; see README.md for the package map and
DESIGN.md for the paper-to-module inventory.
"""

__version__ = "1.0.0"

from repro.jvm.jvm import JVM
from repro.jvm.marshal import Obj, from_heap, to_heap

__all__ = ["JVM", "Obj", "from_heap", "to_heap", "__version__"]


def __getattr__(name):
    # Lazy heavyweight exports (avoid importing engines at package import).
    if name == "attach_skyway":
        from repro.core.runtime import attach_skyway

        return attach_skyway
    if name == "SkywaySerializer":
        from repro.core.adapter import SkywaySerializer

        return SkywaySerializer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
