"""A Flink-like batch engine (paper §5.3).

Flink's batch model differs from Spark's in exactly the ways the paper's
§5.3 experiment depends on:

* data is **typed tuples** ("the type of each field in a tuple must be
  known at compile time"), so Flink statically selects a *built-in
  serializer per field* — the highly-optimized baseline Skyway is compared
  against;
* deserialization is **lazy** — "Flink does not deserialize all fields of a
  row upon receiving it — only those involved in the transformation are
  deserialized", which is why Flink's deserialization share (8.7%) is far
  below its serialization share (23.5%).

Both properties are reproduced here, along with a TPC-H-style generator and
the five queries (QA–QE) of Table 3.
"""

from repro.flink.types import FieldKind, RowType
from repro.flink.engine import DataSet, FlinkEnvironment, Table
from repro.flink.tpch import TpchDataset, generate_tpch
from repro.flink.queries import QUERIES, QuerySpec, run_query

__all__ = [
    "FieldKind",
    "RowType",
    "DataSet",
    "FlinkEnvironment",
    "Table",
    "TpchDataset",
    "generate_tpch",
    "QUERIES",
    "QuerySpec",
    "run_query",
]
