"""D-ITER — Skyway-Delta on iterative PageRank (LJ profile).

The delta-transfer headline: an iterative workload whose shared heap state
mutates slowly (1% of vertices per superstep) ships the full graph once
and then only the mutated epoch slices, instead of re-serializing the
whole graph every iteration.  Asserted here: >= 5x fewer wire bytes and
lower simulated cluster time than the full-send-every-epoch baseline,
with both modes producing bit-identical worker rank vectors.
"""

from repro.bench.delta_experiments import run_delta_iterative
from repro.bench.report import format_kv_section

from conftest import bench_scale, emit_json, publish


def test_delta_iterative(benchmark):
    stats = benchmark.pedantic(
        lambda: run_delta_iterative(
            graph_key="LJ",
            scale=bench_scale(0.2),
            iterations=8,
            mutation=0.01,
            workers=2,
        ),
        rounds=1, iterations=1,
    )
    display = dict(stats)
    display["bytes_ratio"] = f"{stats['bytes_ratio']:.1f}x"
    display["time_ratio"] = f"{stats['time_ratio']:.2f}x"
    publish("delta_iterative", format_kv_section(
        "D-ITER — delta vs full-every-epoch, incremental PageRank (LJ)",
        display,
    ))
    emit_json("delta_iterative", stats)

    assert stats["iterations"] >= 5
    # The acceptance bar: >= 5x fewer bytes at 1% mutation, and faster.
    assert stats["bytes_ratio"] >= 5.0, stats
    assert stats["delta_sim_seconds"] < stats["full_sim_seconds"], stats
    # After the bootstrap epoch, every epoch went out as a delta.
    assert all(m == "delta" for m in stats["delta_epoch_modes"][1:]), stats
