#!/usr/bin/env python
"""PageRank on the Spark-like engine under all three serializers.

The paper's §5.2 experiment in miniature: the same job runs with the Java
serializer, Kryo, and Skyway over a scaled-down LiveJournal graph; the
per-phase breakdown (Figure 8(a) shape) and normalized summary (Table 2
shape) are printed.

Run:  python examples/spark_pagerank.py
"""

from repro.apps import page_rank
from repro.bench.report import format_breakdown_table
from repro.core.adapter import SkywaySerializer
from repro.core.runtime import attach_skyway
from repro.datasets import GRAPH_PROFILES, generate_graph
from repro.jvm.jvm import JVM
from repro.net.cluster import Cluster
from repro.serial import JavaSerializer, KryoSerializer
from repro.spark.context import SparkContext
from repro.spark.metrics import measure_job
from repro.types.corelib import standard_classpath


def run_once(serializer_name: str, edges):
    classpath = standard_classpath()
    cluster = Cluster(lambda name: JVM(name, classpath=classpath),
                      worker_count=3)
    if serializer_name == "java":
        serializer = JavaSerializer()
    elif serializer_name == "kryo":
        serializer = KryoSerializer(registration_required=False)
    else:
        attach_skyway(cluster.driver.jvm, [w.jvm for w in cluster.workers],
                      cluster=cluster)
        serializer = SkywaySerializer()
    sc = SparkContext(cluster, serializer, default_parallelism=4)

    ranks, metrics = measure_job(
        cluster,
        lambda: page_rank(sc, edges, iterations=3),
        shuffle_bytes_source=lambda: sc.shuffle.bytes_shuffled,
    )
    return ranks, metrics


def main() -> None:
    edges = generate_graph(GRAPH_PROFILES["LJ"], scale=0.03)
    print(f"PageRank over a LiveJournal-profile graph "
          f"({len(edges)} edges, 3 iterations, 3 workers)\n")

    results = {}
    reference = None
    for name in ("java", "kryo", "skyway"):
        ranks, metrics = run_once(name, edges)
        results[name] = metrics
        if reference is None:
            reference = ranks
        assert ranks == reference, "serializers must not change results"

    print(format_breakdown_table(
        {name: m.breakdown for name, m in results.items()},
        "PageRank / LJ — runtime breakdown per serializer", "ms",
    ))
    print()
    base = results["java"].breakdown
    for name in ("kryo", "skyway"):
        norm = results[name].breakdown.normalized_to(base)
        cells = "  ".join(f"{k}={v:.2f}" for k, v in norm.items())
        print(f"{name:>7} vs java: {cells}")
    print("\n(Top-5 ranks:", sorted(reference.items(),
                                    key=lambda kv: -kv[1])[:5], ")")


if __name__ == "__main__":
    main()
