"""B-FLEET — the N-node fabric measured end to end.

Per fleet size (2/4/8 full, 4 smoke), against a live coordinator and N
strict-mode worker processes:

* **broadcast** — one driver graph to every worker, twice: epoch 1
  bootstraps every channel FULL, a PageRank superstep mutates the graph,
  epoch 2 rides the delta path.  Every worker's semantic digest must
  agree with every other's, both epochs.
* **all-pairs peer shuffle** — every ordered worker pair (A, B): A clones
  the graph it received *straight into* B over a coordinator-assigned
  channel (the driver never carries the bytes).  The gate is per
  transfer: the receiver's semantic digest must equal the digest A
  computed over its own heap before sending.
* **failure drill** — one worker is SIGKILLed mid-run: the next
  broadcast must complete on the survivors and report the casualty as a
  typed ``PeerGoneError``.  The worker is then restarted: its re-HELLO
  bumps the coordinator generation, and the next broadcast must recover
  its channel with a forced-FULL resync while the survivors stay on
  deltas — digests agreeing across the whole fleet again.

``fleet_checks_pass`` is the CI gate over all of it; results land in
``benchmarks/results/fleet.{txt,json}``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.apps.incremental import IncrementalPageRank, build_vertex_graph
from repro.bench.exchange_experiments import irregular_edges
from repro.cluster.errors import PeerGoneError
from repro.cluster.fleet import Fleet
from repro.cluster.harness import FleetHarness
from repro.transport.bootstrap import MB, build_runtime
from repro.transport.testing import SAMPLE_FACTORY

DEFAULT_SIZES = (2, 4, 8)
SMOKE_SIZES = (4,)
DEFAULT_VERTICES = 1_500
SMOKE_VERTICES = 500
#: The PageRank superstep's mutation share between the two broadcast
#: epochs — low enough that the delta path must win the policy decision.
MUTATION_FRACTION = 0.10


def _run_size(size: int, vertices: int, index: int,
              live: bool = False) -> Dict[str, object]:
    """One fleet size: broadcast, all-pairs shuffle, failure drill."""
    driver = build_runtime(f"fleet-driver-{index}", SAMPLE_FACTORY,
                           old_bytes=256 * MB)
    edges = irregular_edges(vertices)
    pin = driver.jvm.pin(build_vertex_graph(driver.jvm, edges))
    graph = pin.address
    pagerank = IncrementalPageRank(driver.jvm, graph)

    with FleetHarness(size, name=f"bfleet{size}", read_timeout=300.0,
                      old_bytes=256 * MB) as harness:
        fleet = Fleet.connect(driver, harness.coordinator.host,
                              harness.coordinator.port, read_timeout=300.0)
        try:
            row = {"fleet_size": size, "vertices": vertices}

            # -- broadcast: FULL bootstrap, then a delta epoch ----------
            started = time.perf_counter()
            epoch1 = fleet.broadcast([graph])
            row["broadcast_full_seconds"] = round(
                time.perf_counter() - started, 4)
            mutated = pagerank.step(active_fraction=MUTATION_FRACTION)
            started = time.perf_counter()
            epoch2 = fleet.broadcast([graph])
            row["broadcast_delta_seconds"] = round(
                time.perf_counter() - started, 4)
            row["vertices_mutated"] = mutated
            row["broadcast_delivered"] = [epoch1.delivered, epoch2.delivered]
            row["broadcast_modes"] = sorted(
                {r.mode for r in epoch2.receipts.values()})
            e1_digests = set(epoch1.digests().values())
            e2_digests = set(epoch2.digests().values())
            row["broadcast_digests_agree"] = (
                epoch1.delivered == size and epoch2.delivered == size
                and not epoch1.failures and not epoch2.failures
                and len(e1_digests) == 1 and len(e2_digests) == 1
                and None not in (e1_digests | e2_digests)
            )

            # -- all-pairs peer-to-peer shuffle -------------------------
            # Each worker's copy of the broadcast graph (pinned by its
            # delta endpoint) becomes the payload it ships to every peer.
            roots_on = {name: receipt.roots
                        for name, receipt in epoch2.receipts.items()}
            names = sorted(roots_on)
            transfers: List[Dict[str, object]] = []
            started = time.perf_counter()
            for src in names:
                for dst in names:
                    if src == dst:
                        continue
                    result = fleet.peer_transfer(src, dst, roots_on[src])
                    transfers.append({
                        "src": src, "dst": dst,
                        "mode": result["mode"],
                        "wire_bytes": result["wire_bytes"],
                        "digest_match": result["digest_match"],
                    })
            row["p2p_seconds"] = round(time.perf_counter() - started, 4)
            row["p2p_transfers"] = len(transfers)
            row["p2p_wire_bytes"] = sum(t["wire_bytes"] for t in transfers)
            row["p2p_digest_match"] = all(
                t["digest_match"] for t in transfers)
            row["p2p_pairs_expected"] = size * (size - 1)

            # -- failure drill: kill, survive, restart, resync ----------
            victim = names[-1]
            harness.kill_worker(victim)
            after_kill = fleet.broadcast([graph])
            row["kill_survivors_delivered"] = after_kill.delivered
            row["kill_victim_typed"] = isinstance(
                after_kill.failures.get(victim), PeerGoneError)
            row["kill_survivors_complete"] = (
                after_kill.delivered == size - 1
                and set(after_kill.failures) == {victim}
            )

            harness.restart_worker(victim)
            pagerank.step(active_fraction=MUTATION_FRACTION)
            after_restart = fleet.broadcast([graph])
            victim_receipt = after_restart.receipts.get(victim)
            survivor_modes = {
                name: receipt.mode
                for name, receipt in after_restart.receipts.items()
                if name != victim
            }
            ar_digests = set(after_restart.digests().values())
            row["restart_resynced_full"] = (
                victim_receipt is not None
                and victim_receipt.mode == "full"
                and fleet._channels[victim].resyncs >= 1
            )
            row["restart_survivors_delta"] = all(
                mode == "delta" for mode in survivor_modes.values())
            row["restart_digests_agree"] = (
                after_restart.delivered == size
                and len(ar_digests) == 1 and None not in ar_digests
            )

            stats = fleet.stats()
            row["coordinator_rpcs"] = stats["rpcs_served"]
            row["coordinator_deaths_detected"] = stats["deaths_detected"]
            row["fleet_resyncs"] = sum(
                c.resyncs for c in fleet._channels.values())
            if live:
                # One last heartbeat round so the final epochs' telemetry
                # lands, then snapshot the live table for the report.
                from repro.obs.live import render_top

                time.sleep(0.3)
                doc = fleet.telemetry()
                row["telemetry_rollups"] = doc.get("rollups", {})
                row["live_top"] = render_top(doc, alive=doc.get("alive"))
            return row
        finally:
            fleet.close()
            driver.jvm.unpin(pin)


def run_fleet_experiment(
    sizes: Optional[Sequence[int]] = None,
    vertices: int = DEFAULT_VERTICES,
    smoke: bool = False,
    live: bool = False,
) -> Dict[str, object]:
    """Returns a JSON-serializable result dict (see module docstring).
    ``live=True`` additionally snapshots each fleet's telemetry table
    (the ``repro.obs top`` frame) into the rows."""
    if smoke:
        sizes = SMOKE_SIZES if sizes is None else sizes
        vertices = min(vertices, SMOKE_VERTICES)
    elif sizes is None:
        sizes = DEFAULT_SIZES
    rows = [_run_size(size, vertices, i, live=live)
            for i, size in enumerate(sizes)]
    return {
        "sizes": list(sizes),
        "vertices": vertices,
        "smoke": smoke,
        "live": live,
        "rows": rows,
        "checks": _checks(rows),
    }


def _checks(rows: List[Dict[str, object]]) -> Dict[str, bool]:
    return {
        "broadcast_digests_agree": all(
            r["broadcast_digests_agree"] for r in rows),
        "broadcast_delta_epoch2": all(
            r["broadcast_modes"] == ["delta"] for r in rows),
        "p2p_all_pairs_ran": all(
            r["p2p_transfers"] == r["p2p_pairs_expected"] for r in rows),
        "p2p_digests_match_sender": all(
            r["p2p_digest_match"] for r in rows),
        "kill_survivors_complete": all(
            r["kill_survivors_complete"] for r in rows),
        "kill_victim_typed_error": all(
            r["kill_victim_typed"] for r in rows),
        "restart_forced_full_resync": all(
            r["restart_resynced_full"] for r in rows),
        "restart_survivors_stay_delta": all(
            r["restart_survivors_delta"] for r in rows),
        "restart_digests_agree": all(
            r["restart_digests_agree"] for r in rows),
    }


def fleet_checks_pass(result: Dict[str, object]) -> bool:
    return all(result["checks"].values())


def format_fleet_report(result: Dict[str, object]) -> str:
    lines = [
        "B-FLEET — coordinator + N-worker fabric: broadcast, all-pairs "
        "peer shuffle, failure drill",
        f"  graph: {result['vertices']} vertices; fleet sizes "
        f"{result['sizes']}",
        "",
        f"  {'fleet':>6} {'bcastF_s':>9} {'bcastD_s':>9} {'p2p':>5} "
        f"{'p2p_s':>8} {'p2p_B':>10} {'match':>6} {'kill':>5} "
        f"{'resync':>7} {'rpcs':>6}",
    ]
    for row in result["rows"]:
        match = "ok" if row["p2p_digest_match"] else "FAIL"
        kill = "ok" if (row["kill_survivors_complete"]
                        and row["kill_victim_typed"]) else "FAIL"
        resync = "ok" if (row["restart_resynced_full"]
                          and row["restart_digests_agree"]) else "FAIL"
        lines.append(
            f"  {row['fleet_size']:>6} {row['broadcast_full_seconds']:>9.3f} "
            f"{row['broadcast_delta_seconds']:>9.3f} "
            f"{row['p2p_transfers']:>5} {row['p2p_seconds']:>8.3f} "
            f"{row['p2p_wire_bytes']:>10} {match:>6} {kill:>5} "
            f"{resync:>7} {row['coordinator_rpcs']:>6}"
        )
    for row in result["rows"]:
        if row.get("live_top"):
            lines += ["", f"  -- live telemetry, fleet of "
                          f"{row['fleet_size']} --"]
            lines += [f"  {l}" for l in row["live_top"].splitlines()]
    lines += [
        "",
        "  checks: " + "  ".join(
            f"{name}={'pass' if ok else 'FAIL'}"
            for name, ok in result["checks"].items()
        ),
    ]
    return "\n".join(lines)
