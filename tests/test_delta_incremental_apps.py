"""Tests for heap-resident incremental PageRank/CC and their delta wiring."""

import pytest

from repro.apps.incremental import (
    IncrementalConnectedComponents,
    IncrementalPageRank,
    build_vertex_graph,
    install_incremental_classes,
    read_labels,
    read_ranks,
)
from repro.core.adapter import SkywaySerializer
from repro.core.runtime import attach_skyway
from repro.jvm.jvm import JVM
from repro.net.cluster import Cluster
from repro.spark.context import SparkContext
from repro.types.classdef import ClassPath
from repro.types.corelib import install_core_classes

EDGES = [(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (5, 6)]


def reference_pagerank(edges, n, iterations, damping=0.85):
    out = {v: [] for v in range(n)}
    for u, v in edges:
        out[u].append(v)
    ranks = [1.0] * n
    for _ in range(iterations):
        incoming = [0.0] * n
        for u in range(n):
            if out[u]:
                share = ranks[u] / len(out[u])
                for v in out[u]:
                    incoming[v] += share
        ranks = [(1 - damping) + damping * incoming[v] for v in range(n)]
    return ranks


@pytest.fixture
def classpath_delta():
    return install_incremental_classes(install_core_classes(ClassPath()))


@pytest.fixture
def jvm_delta(classpath_delta):
    return JVM("apps-jvm", classpath=classpath_delta)


class TestVertexGraph:
    def test_structure(self, jvm_delta):
        jvm = jvm_delta
        graph = build_vertex_graph(jvm, EDGES)
        assert jvm.get_field(graph, "n") == 7
        assert read_ranks(jvm, graph) == [1.0] * 7
        assert read_labels(jvm, graph) == list(range(7))

    def test_adjacency_preserved(self, jvm_delta):
        jvm = jvm_delta
        graph = build_vertex_graph(jvm, EDGES)
        vertices = jvm.get_field(graph, "vertices")
        v0 = jvm.heap.read_element(vertices, 0)
        adj = jvm.get_field(v0, "adj")
        out0 = sorted(
            jvm.heap.read_element(adj, i)
            for i in range(jvm.heap.array_length(adj))
        )
        assert out0 == [1, 3]


class TestIncrementalPageRank:
    def test_full_sweep_matches_reference(self, jvm_delta):
        jvm = jvm_delta
        graph = build_vertex_graph(jvm, EDGES)
        pin = jvm.pin(graph)
        pagerank = IncrementalPageRank(jvm, graph)
        # In-place sweeps (Gauss–Seidel order) and the synchronous
        # reference (Jacobi) share a unique fixed point; compare there.
        for _ in range(200):
            pagerank.step(active_fraction=1.0)
        expected = reference_pagerank(EDGES, 7, iterations=400)
        got = read_ranks(jvm, graph)
        assert got == pytest.approx(expected, abs=1e-6)
        jvm.unpin(pin)

    def test_active_fraction_bounds_writes(self, jvm_delta):
        jvm = jvm_delta
        graph = build_vertex_graph(jvm, EDGES)
        pagerank = IncrementalPageRank(jvm, graph)
        written = pagerank.step(active_fraction=1 / 7)
        assert written <= 1

    def test_rotating_window_covers_all_vertices(self, jvm_delta):
        jvm = jvm_delta
        graph = build_vertex_graph(jvm, EDGES)
        pagerank = IncrementalPageRank(jvm, graph)
        for _ in range(7):
            pagerank.step(active_fraction=1 / 7)
        # After n steps of 1/n, every rank was recomputed at least once:
        # vertex 5 has no in-edges, so its rank hit the damping floor.
        ranks = read_ranks(jvm, graph)
        assert ranks[5] == pytest.approx(0.15)


class TestIncrementalCC:
    def test_labels_converge_to_component_minima(self, jvm_delta):
        jvm = jvm_delta
        graph = build_vertex_graph(jvm, EDGES)
        cc = IncrementalConnectedComponents(jvm, graph)
        steps = cc.run_to_convergence()
        assert steps < 64
        assert read_labels(jvm, graph) == [0, 0, 0, 0, 0, 5, 5]

    def test_quiescent_after_convergence(self, jvm_delta):
        jvm = jvm_delta
        graph = build_vertex_graph(jvm, EDGES)
        cc = IncrementalConnectedComponents(jvm, graph)
        cc.run_to_convergence()
        assert cc.step() == 0


class TestDeltaBroadcast:
    def make_cluster(self, classpath, workers=2):
        cluster = Cluster(lambda name: JVM(name, classpath=classpath),
                          worker_count=workers)
        attach_skyway(cluster.driver.jvm,
                      [w.jvm for w in cluster.workers], cluster=cluster)
        return cluster

    def test_workers_track_driver_state(self, classpath_delta):
        cluster = self.make_cluster(classpath_delta)
        sc = SparkContext(cluster, SkywaySerializer())
        driver = cluster.driver.jvm
        graph = build_vertex_graph(driver, EDGES)
        cc = IncrementalConnectedComponents(driver, graph)
        broadcast = sc.delta_broadcast(graph)

        first = broadcast.push()
        assert set(first.modes.values()) == {"full"}
        while cc.step():
            report = broadcast.push()
            assert set(report.modes.values()) <= {"full", "delta"}
        final = broadcast.push()

        expected = read_labels(driver, graph)
        for worker in cluster.workers:
            local = broadcast.value_on(worker)
            assert read_labels(worker.jvm, local) == expected
        assert broadcast.wire_bytes > 0
        broadcast.close()

    def test_delta_epochs_cheaper_than_bootstrap(self, classpath_delta):
        cluster = self.make_cluster(classpath_delta, workers=1)
        sc = SparkContext(cluster, SkywaySerializer())
        driver = cluster.driver.jvm
        edges = [(i, (i + 1) % 120) for i in range(120)]  # one big ring
        graph = build_vertex_graph(driver, edges)
        pagerank = IncrementalPageRank(driver, graph)
        broadcast = sc.delta_broadcast(graph)
        bootstrap = broadcast.push()
        pagerank.step(active_fraction=0.02)
        update = broadcast.push()
        assert set(update.modes.values()) == {"delta"}
        assert update.wire_bytes < bootstrap.wire_bytes / 5
        broadcast.close()


class TestSerializerDeltaMode:
    def test_delta_serializer_roundtrip_and_patch(self, classpath_delta):
        src = JVM("ser-src", classpath=classpath_delta)
        dst = JVM("ser-dst", classpath=classpath_delta)
        attach_skyway(src, [dst])
        serializer = SkywaySerializer(delta=True)
        edges = [(i, (i + 1) % 80) for i in range(80)]  # big enough ring
        graph = build_vertex_graph(src, edges)
        pin = src.pin(graph)

        first = serializer.serialize(src, graph)
        remote = serializer.deserialize(dst, first)
        assert read_ranks(dst, remote) == read_ranks(src, graph)

        pagerank = IncrementalPageRank(src, graph)
        pagerank.step(active_fraction=0.02)  # sparse mutation
        second = serializer.serialize(src, graph)
        remote2 = serializer.deserialize(dst, second)
        assert remote2 == remote  # patched in place
        assert len(second) < len(first) / 5
        assert read_ranks(dst, remote2) == read_ranks(src, graph)
        src.unpin(pin)

    def test_plain_reader_still_handles_plain_frames(self, classpath_delta):
        src = JVM("ser2-src", classpath=classpath_delta)
        dst = JVM("ser2-dst", classpath=classpath_delta)
        attach_skyway(src, [dst])
        delta_serializer = SkywaySerializer(delta=True)
        plain_serializer = SkywaySerializer()
        graph = build_vertex_graph(src, EDGES)
        pin = src.pin(graph)
        data = plain_serializer.serialize(src, graph)
        # A delta-enabled serializer must still route plain frames.
        received = delta_serializer.deserialize(dst, data)
        assert read_ranks(dst, received) == [1.0] * 7
        src.unpin(pin)
