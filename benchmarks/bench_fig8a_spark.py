"""E-F8a — Figure 8(a): Spark runtime, 4 apps x 4 graphs x 3 serializers.

Default run covers every app over LiveJournal and Orkut plus
TriangleCounting over all four graphs; set REPRO_BENCH_SCALE >= 2 for the
full 4x4 matrix (slower).
"""

import os

from repro.bench.report import format_breakdown_table
from repro.bench.spark_experiments import check_results_agree, run_figure8a

from conftest import bench_scale, publish

FULL = float(os.environ.get("REPRO_BENCH_SCALE", "1.0")) >= 2.0


def test_fig8a_spark(benchmark):
    scale = bench_scale(0.015)
    graphs = ("LJ", "OR", "UK", "TW") if FULL else ("LJ", "OR")

    results = benchmark.pedantic(
        lambda: run_figure8a(scale=scale, graphs=graphs, pr_iterations=2),
        rounds=1, iterations=1,
    )

    # One table per (app, graph), rows = serializers (the figure's panels).
    sections = []
    combos = sorted({(r.app, r.graph) for r in results.values()})
    for app, graph in combos:
        rows = {
            ser: results[(app, graph, ser)].breakdown
            for ser in ("java", "kryo", "skyway")
            if (app, graph, ser) in results
        }
        sections.append(
            format_breakdown_table(rows, f"Figure 8(a) — {graph}-{app}", "ms")
        )
    publish("fig8a_spark", "\n\n".join(sections))

    # Correctness: all serializers compute identical results everywhere.
    assert check_results_agree(results) == []
    # Shape: Skyway never loses to the Java serializer on shuffle-heavy apps.
    for app, graph in combos:
        if app in ("PR", "TC", "CC"):
            sky = results[(app, graph, "skyway")].breakdown.total
            jav = results[(app, graph, "java")].breakdown.total
            assert sky < jav, (app, graph)
