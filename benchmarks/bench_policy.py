"""B-POLICY — the adaptive send-policy plane vs the static corners.

Per operating point (mutation rate x wire pacing x stream cap): four
channels — adaptive, always-delta, always-full, always-full[N] — each
driven by the same plan-execution dispatch against one spawned socket
worker.  The gate: the adaptive policy matches or beats the best static
mode in wire bytes AND wall-clock at every point (delta at 1% mutation,
parallel-N full at 100% on the paced wire, single-stream restraint on the
fast wire, capability clamp at cap 1), with every decision recorded.
"""

from repro.bench.policy_experiments import (
    format_policy_report,
    policy_checks_pass,
    run_policy_experiment,
)

from conftest import bench_scale, emit_json, publish


def test_policy_plane_end_to_end(benchmark):
    vertices = max(500, int(4_000 * bench_scale()))
    result = benchmark.pedantic(
        lambda: run_policy_experiment(vertices=vertices),
        rounds=1, iterations=1,
    )

    publish("policy", format_policy_report(result))
    emit_json("policy", result)

    checks = result["checks"]
    assert checks["adaptive_matches_best_bytes"], (
        "the adaptive policy shipped more wire bytes than the best "
        "static mode at some operating point"
    )
    assert checks["adaptive_matches_best_seconds"], (
        "the adaptive policy's wall-clock fell behind the best static "
        "mode at some operating point"
    )
    assert policy_checks_pass(result), f"B-POLICY gate failed: {checks}"
