"""The :class:`PolicyEngine`: per-channel history + one decision point.

Every mode decision in the repo funnels through ``engine.plan(signals,
capabilities)``:

* the engine folds its per-channel history into the signals (mutation and
  byte-fraction EWMAs, measured-bandwidth EWMA, the policy's last chosen
  mode for hysteresis),
* the policy's decision table emits a :class:`SendPlan`,
* the negotiated capabilities clamp it,
* and the decision is emitted as a ``policy.decide`` span plus a
  ``policy.decisions`` counter — so a trace says *why* each epoch shipped
  the way it did.

One engine may serve many channels (``Fleet`` shares one across all
broadcast receivers): history is keyed by channel id, so a slow peer's
bandwidth EWMA degrades only its own channel's plans.

Transport layers close the loop through :meth:`observe_transfer` — the
measured wire seconds of each shipped frame feed the bandwidth EWMA that
drives the adaptive policy's stream-count choice.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro import obs
from repro.policy.plan import SendPlan
from repro.policy.policies import (
    CrossoverPolicy,
    DecisionTable,
    resolve_policy,
)
from repro.policy.signals import ChannelSignals

#: Reasons that represent the policy's own steady-state choice; only
#: these update the hysteresis anchor (a forced or first-epoch FULL must
#: not push the adaptive policy into its full regime).
_REGIME_REASONS = ("delta", "mutation_crossover", "static_full")


@dataclasses.dataclass
class ChannelHistory:
    """What the engine remembers about one channel between epochs."""

    mutation_ewma: Optional[float] = None
    byte_fraction_ewma: Optional[float] = None
    bandwidth_bps: Optional[float] = None
    queue_wait_seconds: float = 0.0
    last_mode: Optional[str] = None
    epochs_observed: int = 0

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


class PolicyEngine:
    """One decision engine, any number of channels."""

    def __init__(self, policy="crossover", alpha: float = 0.5) -> None:
        self.policy: DecisionTable = resolve_policy(policy)
        #: EWMA smoothing weight of the newest observation.  Seeded at the
        #: first observation (no warm-up bias), so a jump to 100% mutation
        #: still moves the smoothed fraction by ``alpha`` in one epoch.
        self.alpha = alpha
        self.decisions = 0
        self._history: Dict[int, ChannelHistory] = {}
        #: Latest fleet-wide telemetry rollup (``Fleet`` feeds it from the
        #: coordinator's telemetry document); optional context every
        #: subsequent plan() folds into its signals.
        self.fleet_context: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------

    def history(self, channel_id: int) -> ChannelHistory:
        hist = self._history.get(channel_id)
        if hist is None:
            hist = self._history[channel_id] = ChannelHistory()
        return hist

    def _ewma(self, previous: Optional[float], value: float) -> float:
        if previous is None:
            return value
        return self.alpha * value + (1.0 - self.alpha) * previous

    # ------------------------------------------------------------------

    def plan(self, signals: ChannelSignals,
             capabilities=None) -> SendPlan:
        """Decide one epoch: history in, clamped :class:`SendPlan` out."""
        hist = self.history(signals.channel_id)
        if signals.has_mutation_observation:
            hist.mutation_ewma = self._ewma(
                hist.mutation_ewma, signals.dirty_fraction)
            hist.byte_fraction_ewma = self._ewma(
                hist.byte_fraction_ewma, signals.byte_fraction)
            hist.epochs_observed += 1
        signals.mutation_ewma = hist.mutation_ewma
        signals.byte_fraction_ewma = hist.byte_fraction_ewma
        signals.bandwidth_bps = hist.bandwidth_bps
        signals.queue_wait_seconds = hist.queue_wait_seconds
        signals.last_mode = hist.last_mode
        if self.fleet_context is not None:
            signals.fleet_bandwidth_bps = self.fleet_context.get(
                "fleet_median_bandwidth_bps")

        with obs.span("policy.decide", policy=self.policy.name,
                      channel=signals.channel_id,
                      destination=signals.destination) as sp:
            plan = self.policy.decide(signals)
            if capabilities is not None:
                plan = plan.clamp(capabilities)
            sp.set(
                mode=plan.label, reason=plan.reason,
                streams=plan.streams, digest=plan.digest,
                compact=plan.compact_headers,
                dirty_fraction=round(signals.dirty_fraction, 6),
                byte_fraction_ewma=(
                    round(signals.byte_fraction_ewma, 6)
                    if signals.byte_fraction_ewma is not None else None),
                bandwidth_bps=signals.bandwidth_bps,
                queue_wait_seconds=signals.queue_wait_seconds,
                clamped=",".join(plan.clamped) or None,
            )
        if plan.reason in _REGIME_REASONS:
            hist.last_mode = plan.mode
        self.decisions += 1
        obs.registry().counter(
            "policy.decisions", policy=self.policy.name,
            mode=plan.label, reason=plan.reason,
        )
        return plan

    def update_fleet_context(self, rollup: Optional[Dict[str, object]]
                             ) -> None:
        """Adopt the latest fleet telemetry rollup (median bandwidth /
        latency, straggler names) as optional decision context."""
        self.fleet_context = dict(rollup) if rollup is not None else None

    def observe_transfer(self, channel_id: int, wire_bytes: int,
                         seconds: float,
                         queue_wait_seconds: float = 0.0) -> None:
        """Feed back one shipped frame's measured wire performance."""
        hist = self.history(channel_id)
        if wire_bytes > 0 and seconds > 1e-9:
            hist.bandwidth_bps = self._ewma(
                hist.bandwidth_bps, wire_bytes / seconds)
        hist.queue_wait_seconds = queue_wait_seconds

    def snapshot(self) -> Dict[str, object]:
        return {
            "policy": self.policy.name,
            "decisions": self.decisions,
            "fleet_context": self.fleet_context,
            "channels": {
                cid: hist.as_dict()
                for cid, hist in sorted(self._history.items())
            },
        }


# ---------------------------------------------------------------------------


def resolve_engine(policy=None, default: str = "crossover") -> PolicyEngine:
    """Normalize every historical ``policy=`` spelling onto one engine.

    Accepts None (→ ``default``), a policy name, a
    :class:`~repro.policy.policies.DecisionTable`, an existing
    :class:`PolicyEngine` (shared, returned as-is), or a legacy
    :class:`~repro.policy.legacy.DeltaPolicy` (its crossover carries
    over).
    """
    from repro.policy.legacy import DeltaPolicy

    if isinstance(policy, PolicyEngine):
        return policy
    if policy is None:
        return PolicyEngine(default)
    if isinstance(policy, DeltaPolicy):
        return PolicyEngine(
            CrossoverPolicy(byte_crossover=policy.byte_crossover))
    return PolicyEngine(policy)
