"""E-F8b — Figure 8(b): Flink queries QA-QE, built-in serializer vs Skyway
(paper §5.3), plus the Table 3 query descriptions."""

from repro.bench.flink_experiments import run_figure8b
from repro.bench.report import format_breakdown_table
from repro.flink.queries import QUERIES

from conftest import bench_scale, publish


def test_fig8b_flink(benchmark):
    micro_scale = bench_scale(0.4)

    results = benchmark.pedantic(
        lambda: run_figure8b(micro_scale=micro_scale), rounds=1, iterations=1
    )

    sections = ["Table 3 — query descriptions", "-" * 40]
    for key, spec in QUERIES.items():
        sections.append(f"{key}: {spec.description}")
    sections.append("")
    for query in ("QA", "QB", "QC", "QD", "QE"):
        rows = {
            mode: results[(query, mode)].breakdown
            for mode in ("builtin", "skyway")
        }
        sections.append(
            format_breakdown_table(rows, f"Figure 8(b) — {query}", "ms")
        )
        sections.append("")
    publish("fig8b_flink", "\n".join(sections))

    # Correctness: both serializers produce identical result row counts.
    for query in ("QA", "QB", "QC", "QD", "QE"):
        assert results[(query, "builtin")].rows == results[(query, "skyway")].rows
    # Shape: Skyway improves the majority of queries (paper: all five,
    # 19% overall).
    wins = sum(
        results[(q, "skyway")].breakdown.total
        < results[(q, "builtin")].breakdown.total
        for q in ("QA", "QB", "QC", "QD", "QE")
    )
    assert wins >= 3
    benchmark.extra_info["queries_won"] = int(wins)
