"""A-TYPES — ablation: global type numbering vs type strings (paper §4.1).

Skyway sends a type string at most once per class per machine (the
registry LOOKUP) and then 8 in-header bytes per object; the Java serializer
re-emits class descriptors per stream epoch.  The ablation counts type
metadata on the wire and type-resolution time for the same object stream.
"""

from repro.core.runtime import attach_skyway
from repro.jvm.jvm import JVM
from repro.net.cluster import Cluster
from repro.serial.java_serializer import JavaSerializer
from repro.core.adapter import SkywaySerializer
from repro.bench.report import format_kv_section
from repro.simtime import Category

from conftest import bench_scale, publish

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
from tests.conftest import make_date, sample_classpath  # noqa: E402


def run_ablation(records: int):
    classpath = sample_classpath()
    cluster = Cluster(lambda n: JVM(n, classpath=classpath), worker_count=1)
    attach_skyway(cluster.driver.jvm, [w.jvm for w in cluster.workers],
                  cluster=cluster)
    src, dst = cluster.driver, cluster.workers[0]

    roots = [src.jvm.pin(make_date(src.jvm, i, 1, 1)) for i in range(records)]
    addrs = [p.address for p in roots]

    # Java serializer with per-record stream epochs (type strings repeat).
    java = JavaSerializer(reset_interval=1)
    java_bytes = java.serialize_many(src.jvm, addrs)
    type_string_bytes = sum(
        java_bytes.count(name.encode()) * len(name)
        for name in ("Date", "Year4D", "Month2D", "Day2D", "java.lang.Object")
    )
    before = dst.jvm.clock.snapshot()
    reader = java.new_reader(dst.jvm, java_bytes)
    while reader.has_next():
        reader.read_object()
    reader.close()
    java_deser = dst.jvm.clock.since(before)[Category.COMPUTATION]

    # Skyway: registry messages already exchanged at attach/load time.
    messages_before = cluster.messages_sent
    sky = SkywaySerializer()
    sky_data = sky.serialize_many(src.jvm, addrs)
    reader = sky.new_reader(dst.jvm, sky_data)
    while reader.has_next():
        reader.read_object()
    reader.close()
    registry_messages = cluster.messages_sent - messages_before

    return {
        "records": records,
        "java wire bytes": len(java_bytes),
        "java type-string bytes": type_string_bytes,
        "java type bytes per record": type_string_bytes / records,
        "skyway wire bytes": len(sky_data),
        "skyway type bytes per record": 8 * 4,  # one tID word per object
        "skyway registry messages during transfer": registry_messages,
        "java deserialization seconds": java_deser,
    }


def test_ablation_type_strings(benchmark):
    records = max(10, int(60 * bench_scale()))
    stats = benchmark.pedantic(lambda: run_ablation(records),
                               rounds=1, iterations=1)
    publish("ablation_type_strings", format_kv_section(
        "A-TYPES — global type IDs vs per-stream type strings", stats
    ))
    # Type strings grow linearly with records; registry traffic does not.
    assert stats["java type-string bytes"] > records * 20
    assert stats["skyway registry messages during transfer"] == 0
