"""Fleet-level tests against real coordinator + worker processes.

The failure matrix of §14, end to end: a worker killed mid-broadcast
fails *only* its own delivery (typed ``PeerGoneError``), a restarted
worker re-HELLOs under a fresh generation and its channel resyncs with a
forced FULL, and strict workers refuse epochs on channels the
coordinator never assigned (including the reserved id 0).
"""

import pytest

from repro.cluster import Fleet, PeerGoneError
from repro.delta.channel import DeltaSendChannel
from repro.transport.client import WorkerClient
from repro.transport.errors import RemoteWorkerError
from repro.transport.digest import semantic_graph_digest


def _graph(runtime, payloads=None):
    from tests.conftest import make_list

    # Big enough that mutating one node keeps the delta path cheaper than
    # a FULL resend (the policy would otherwise fall back to FULL).
    if payloads is None:
        payloads = range(200)
    return runtime.jvm.pin(make_list(runtime.jvm, payloads)).address


class TestFleetTransfers:
    def test_broadcast_and_peer_shuffle(self, make_fleet, transport_driver):
        harness = make_fleet(2)
        fleet = Fleet.connect(transport_driver, harness.coordinator.host,
                              harness.coordinator.port)
        try:
            root = _graph(transport_driver)
            epoch1 = fleet.broadcast([root])
            assert epoch1.delivered == 2 and not epoch1.failures
            assert {r.mode for r in epoch1.receipts.values()} == {"full"}
            assert len(set(epoch1.digests().values())) == 1

            # Mutate and go again: every channel must ride the delta path
            # yet still converge on one digest.
            transport_driver.jvm.set_field(root, "payload", 99)
            epoch2 = fleet.broadcast([root])
            assert {r.mode for r in epoch2.receipts.values()} == {"delta"}
            digests = set(epoch2.digests().values())
            assert len(digests) == 1 and None not in digests

            # Peer shuffle: w0 ships its copy straight to w1; the
            # receiver's digest must equal the sender's own.
            w0, w1 = harness.worker_names
            first = fleet.peer_transfer(w0, w1, epoch2.receipts[w0].roots)
            assert first["mode"] == "full" and first["digest_match"]
            again = fleet.peer_transfer(w0, w1, epoch2.receipts[w0].roots)
            assert again["mode"] == "delta" and again["digest_match"]
            assert first["digest"] == semantic_graph_digest(
                transport_driver.jvm, [root])
        finally:
            fleet.close()


class TestFleetFailures:
    def test_kill_restart_resync(self, make_fleet, transport_driver):
        harness = make_fleet(3)
        fleet = Fleet.connect(transport_driver, harness.coordinator.host,
                              harness.coordinator.port)
        try:
            root = _graph(transport_driver)
            assert fleet.broadcast([root]).delivered == 3
            victim = harness.worker_names[-1]
            survivors = harness.worker_names[:-1]

            # Kill mid-run: survivors complete, the casualty surfaces as
            # a typed PeerGoneError — never as a failed broadcast.
            harness.kill_worker(victim)
            after_kill = fleet.broadcast([root])
            assert after_kill.delivered == 2
            assert sorted(after_kill.receipts) == survivors
            assert set(after_kill.failures) == {victim}
            error = after_kill.failures[victim]
            assert isinstance(error, PeerGoneError)
            assert error.peer == victim

            # Restart: re-HELLO bumps the generation; the victim's channel
            # recovers with a forced FULL while survivors stay on deltas.
            old_generation = harness.generation_of(victim)
            harness.restart_worker(victim)
            assert harness.generation_of(victim) > old_generation
            transport_driver.jvm.set_field(root, "payload", 42)
            after_restart = fleet.broadcast([root])
            assert after_restart.delivered == 3 and not after_restart.failures
            assert after_restart.receipts[victim].mode == "full"
            assert all(after_restart.receipts[name].mode == "delta"
                       for name in survivors)
            assert fleet._channels[victim].resyncs >= 1
            digests = set(after_restart.digests().values())
            assert len(digests) == 1 and None not in digests
        finally:
            fleet.close()


class TestStrictChannels:
    def _client(self, harness, transport_driver, worker):
        handle = harness.workers[worker]
        client = WorkerClient(transport_driver, handle.host, handle.port,
                              connect_attempts=3)
        client.connect()
        return client

    def test_unassigned_and_reserved_channels_refused(
            self, make_fleet, transport_driver):
        harness = make_fleet(1)
        worker = harness.worker_names[0]
        root = _graph(transport_driver)

        # Channel id 0 is reserved coordinator-wide: even admitting it is
        # a protocol violation.
        client = self._client(harness, transport_driver, worker)
        with pytest.raises(RemoteWorkerError) as excinfo:
            client.admit_channel(0)
        assert excinfo.value.kind == "ClusterProtocolError"
        client.close()

        # An EPOCH on a channel the coordinator never assigned must be
        # refused before any payload is consumed.
        for channel_id in (0, 777):
            channel = DeltaSendChannel(transport_driver, worker,
                                       channel_id=channel_id)
            frame = channel.send([root])
            client = self._client(harness, transport_driver, worker)
            with pytest.raises(RemoteWorkerError) as excinfo:
                client.send_epoch(frame, channel_id, epoch=1)
            assert excinfo.value.kind == "ClusterProtocolError"
            client.close()

        # The same epoch sails through once the channel is admitted.
        client = self._client(harness, transport_driver, worker)
        client.admit_channel(777)
        channel = DeltaSendChannel(transport_driver, worker, channel_id=777)
        result = client.send_epoch(channel.send([root]), 777, epoch=1)
        assert result["digest"] == semantic_graph_digest(
            transport_driver.jvm, [root])
        client.close()
