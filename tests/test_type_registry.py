"""Tests for global class numbering (paper §4.1, Algorithm 1)."""

import pytest

from repro.core.type_registry import DriverRegistry, RegistryView, TypeRegistryError
from repro.core.runtime import attach_skyway
from repro.jvm.jvm import JVM
from repro.net.cluster import Cluster

from tests.conftest import sample_classpath


class TestDriverRegistry:
    def test_register_is_idempotent(self):
        reg = DriverRegistry()
        a = reg.register("Date")
        b = reg.register("Date")
        assert a == b

    def test_ids_are_dense_and_unique(self):
        reg = DriverRegistry()
        ids = [reg.register(f"C{i}") for i in range(10)]
        # Dense from 1: tID 0 is reserved as the "never stamped" sentinel
        # so receivers can reject zero klass words as corruption.
        assert ids == list(range(1, 11))

    def test_lookup_creates_when_missing(self):
        reg = DriverRegistry()
        tid = reg.handle_lookup("New")
        assert reg.handle_lookup("New") == tid
        assert reg.lookup_requests == 2

    def test_lookup_by_id(self):
        reg = DriverRegistry()
        tid = reg.register("Some.Class")
        assert reg.handle_lookup_by_id(tid) == "Some.Class"

    def test_lookup_by_unknown_id(self):
        with pytest.raises(TypeRegistryError):
            DriverRegistry().handle_lookup_by_id(99)

    def test_bootstrap_assigns_tids(self, jvm):
        jvm.loader.load("Date")
        reg = DriverRegistry()
        reg.bootstrap_from(jvm.loader.loaded_classes())
        assert jvm.loader.load("Date").tid is not None


class TestRegistryView:
    def test_request_view_batches(self):
        reg = DriverRegistry()
        for name in ("A", "B", "C"):
            reg.register(name)
        view = RegistryView(reg)
        view.request_view()
        assert len(view) == 3
        assert view.knows("B")
        assert view.remote_lookups == 0

    def test_miss_pulls_from_driver(self):
        reg = DriverRegistry()
        view = RegistryView(reg)
        tid = view.id_for("Fresh")
        assert view.remote_lookups == 1
        assert view.id_for("Fresh") == tid  # cached now
        assert view.remote_lookups == 1

    def test_consistent_ids_across_views(self):
        reg = DriverRegistry()
        v1, v2 = RegistryView(reg), RegistryView(reg)
        assert v1.id_for("Shared") == v2.id_for("Shared")

    def test_name_for_reverse_lookup(self):
        reg = DriverRegistry()
        tid = reg.register("Hidden")
        view = RegistryView(reg)  # empty view: never saw Hidden
        assert view.name_for(tid) == "Hidden"
        assert view.remote_lookups == 1


class TestAttachSkyway:
    def test_same_class_same_tid_everywhere(self, classpath):
        driver = JVM("driver", classpath=classpath)
        w1 = JVM("w1", classpath=classpath)
        w2 = JVM("w2", classpath=classpath)
        attach_skyway(driver, [w1, w2])
        klasses = [j.loader.load("Date") for j in (driver, w1, w2)]
        tids = {k.tid for k in klasses}
        assert len(tids) == 1
        assert None not in tids
        # Klass meta-objects themselves differ per JVM (Figure 5).
        assert len({k.klass_id for k in klasses}) == 3

    def test_every_loaded_class_numbered(self, classpath):
        driver = JVM("driver", classpath=classpath)
        worker = JVM("w", classpath=classpath)
        worker.loader.load("Mixed")  # loaded before Skyway attaches
        attach_skyway(driver, [worker])
        for k in worker.loader.loaded_classes():
            assert k.tid is not None, k.name

    def test_registry_messages_charged_on_cluster(self):
        cluster = Cluster(lambda name: JVM(name, classpath=sample_classpath()),
                          worker_count=2)
        attach_skyway(
            cluster.driver.jvm,
            [w.jvm for w in cluster.workers],
            cluster=cluster,
        )
        assert cluster.messages_sent > 0
        cluster.workers[0].jvm.loader.load("Mixed")
        # the LOOKUP for Mixed went over the wire
        assert cluster.messages_sent > 2
