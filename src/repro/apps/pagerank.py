"""PageRank: the iterative, shuffle-heavy workload (two shuffles per
iteration: the rank/links join and the contribution aggregation)."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.spark.context import SparkContext


def page_rank(
    sc: SparkContext,
    edges: List[Tuple[int, int]],
    iterations: int = 5,
    damping: float = 0.85,
    num_partitions: int = None,
) -> Dict[int, float]:
    """Standard damped PageRank over a directed edge list."""
    links = (
        sc.parallelize(edges, num_partitions)
        .group_by_key()
        .cache()
    )
    ranks = links.map_values(lambda _: 1.0)

    for _ in range(iterations):
        contributions = links.join(ranks).flat_map(
            lambda kv: [
                (dst, kv[1][1] / len(kv[1][0])) for dst in kv[1][0]
            ],
            name="contrib",
        )
        # Vertices receiving no contributions must keep a rank row, so seed
        # every link source with a zero contribution before aggregating.
        zeros = links.map(lambda kv: (kv[0], 0.0), name="zero-contrib")
        ranks = zeros.union(contributions).reduce_by_key(lambda a, b: a + b).map_values(
            lambda s: (1 - damping) + damping * s
        )

    return dict(ranks.collect())
