"""A TPC-H-style data generator (paper §5.3 uses the TPC-H dbgen at 100GB).

Generates the eight-relation TPC-H schema with spec-like value shapes
(uniform dates over 1992–1998, skewless keys, realistic cardinality ratios:
orders = 10x customers, lineitem ≈ 4x orders, partsupp = 4x part) at a
micro scale factor.  Dates are int32 days since 1992-01-01.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Tuple

from repro.flink.engine import Table
from repro.flink.types import FieldKind as K, RowType

DAY = 1
YEAR = 365
#: Highest shipdate in the dataset: ~1998-12-01 in days since 1992-01-01.
MAX_DATE = 6 * YEAR + 334

REGION = RowType.of("region", ("r_regionkey", K.LONG), ("r_name", K.STRING))
NATION = RowType.of(
    "nation", ("n_nationkey", K.LONG), ("n_name", K.STRING),
    ("n_regionkey", K.LONG),
)
SUPPLIER = RowType.of(
    "supplier", ("s_suppkey", K.LONG), ("s_name", K.STRING),
    ("s_nationkey", K.LONG), ("s_acctbal", K.DOUBLE),
)
CUSTOMER = RowType.of(
    "customer", ("c_custkey", K.LONG), ("c_name", K.STRING),
    ("c_nationkey", K.LONG), ("c_acctbal", K.DOUBLE),
)
PART = RowType.of(
    "part", ("p_partkey", K.LONG), ("p_name", K.STRING),
    ("p_type", K.STRING), ("p_size", K.INT),
)
PARTSUPP = RowType.of(
    "partsupp", ("ps_partkey", K.LONG), ("ps_suppkey", K.LONG),
    ("ps_availqty", K.INT), ("ps_supplycost", K.DOUBLE),
)
ORDERS = RowType.of(
    "orders", ("o_orderkey", K.LONG), ("o_custkey", K.LONG),
    ("o_orderstatus", K.STRING), ("o_totalprice", K.DOUBLE),
    ("o_orderdate", K.DATE), ("o_orderpriority", K.STRING),
    ("o_shippriority", K.INT),
)
LINEITEM = RowType.of(
    "lineitem", ("l_orderkey", K.LONG), ("l_partkey", K.LONG),
    ("l_suppkey", K.LONG), ("l_quantity", K.DOUBLE),
    ("l_extendedprice", K.DOUBLE), ("l_discount", K.DOUBLE),
    ("l_tax", K.DOUBLE), ("l_returnflag", K.STRING),
    ("l_linestatus", K.STRING), ("l_shipdate", K.DATE),
    ("l_commitdate", K.DATE), ("l_receiptdate", K.DATE),
)

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_TYPES = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
_METALS = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]


@dataclasses.dataclass
class TpchDataset:
    """All eight relations as typed tables."""

    region: Table
    nation: Table
    supplier: Table
    customer: Table
    part: Table
    partsupp: Table
    orders: Table
    lineitem: Table

    def tables(self) -> Dict[str, Table]:
        return {
            t.name: t
            for t in (
                self.region, self.nation, self.supplier, self.customer,
                self.part, self.partsupp, self.orders, self.lineitem,
            )
        }


def generate_tpch(micro_scale: float = 1.0, seed: int = 1992) -> TpchDataset:
    """Generate the dataset.  ``micro_scale=1.0`` ≈ 6k lineitem rows (a
    documented ~1,000,000x scale-down of the paper's 100GB input; ratios
    between relations match the TPC-H spec)."""
    rng = random.Random(seed)

    n_supplier = max(4, int(25 * micro_scale))
    n_customer = max(8, int(150 * micro_scale))
    n_part = max(8, int(200 * micro_scale))
    n_orders = max(16, int(1500 * micro_scale))

    region_rows = [(i, name) for i, name in enumerate(_REGIONS)]
    nation_rows = [
        (i, f"NATION-{i:02d}", i % len(_REGIONS)) for i in range(25)
    ]
    supplier_rows = [
        (i, f"Supplier#{i:05d}", rng.randrange(25),
         round(rng.uniform(-999.99, 9999.99), 2))
        for i in range(n_supplier)
    ]
    customer_rows = [
        (i, f"Customer#{i:06d}", rng.randrange(25),
         round(rng.uniform(-999.99, 9999.99), 2))
        for i in range(n_customer)
    ]
    part_rows = [
        (i,
         f"part {rng.choice(_METALS).lower()} {i}",
         f"{rng.choice(_TYPES)} {rng.choice(['ANODIZED','BURNISHED','PLATED'])} "
         f"{rng.choice(_METALS)}",
         rng.randrange(1, 51))
        for i in range(n_part)
    ]
    partsupp_rows = [
        (p, (p + 7 * j) % n_supplier, rng.randrange(1, 10_000),
         round(rng.uniform(1.0, 1000.0), 2))
        for p in range(n_part)
        for j in range(4)
    ]

    orders_rows: List[Tuple] = []
    lineitem_rows: List[Tuple] = []
    for o in range(n_orders):
        custkey = rng.randrange(n_customer)
        orderdate = rng.randrange(0, MAX_DATE - 151)
        status = rng.choice(["O", "F", "P"])
        priority = rng.choice(_PRIORITIES)
        lines = rng.randrange(1, 8)
        total = 0.0
        for _ in range(lines):
            partkey = rng.randrange(n_part)
            suppkey = (partkey + 7 * rng.randrange(4)) % n_supplier
            quantity = float(rng.randrange(1, 51))
            price = round(quantity * rng.uniform(900.0, 1100.0) / 10, 2)
            discount = round(rng.uniform(0.0, 0.1), 2)
            tax = round(rng.uniform(0.0, 0.08), 2)
            shipdate = orderdate + rng.randrange(1, 122)
            commitdate = orderdate + rng.randrange(30, 91)
            receiptdate = shipdate + rng.randrange(1, 31)
            returnflag = "R" if rng.random() < 0.25 else ("A" if rng.random() < 0.5 else "N")
            linestatus = "O" if shipdate > MAX_DATE - 180 else "F"
            lineitem_rows.append(
                (o, partkey, suppkey, quantity, price, discount, tax,
                 returnflag, linestatus, shipdate, commitdate, receiptdate)
            )
            total += price
        orders_rows.append(
            (o, custkey, status, round(total, 2), orderdate, priority, 0)
        )

    return TpchDataset(
        region=Table(REGION, region_rows),
        nation=Table(NATION, nation_rows),
        supplier=Table(SUPPLIER, supplier_rows),
        customer=Table(CUSTOMER, customer_rows),
        part=Table(PART, part_rows),
        partsupp=Table(PARTSUPP, partsupp_rows),
        orders=Table(ORDERS, orders_rows),
        lineitem=Table(LINEITEM, lineitem_rows),
    )
