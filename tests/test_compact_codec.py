"""Tests for the compact transfer encoding (the §5.2 future-work codec)."""

import pytest

from repro.core.compact import CompactSegmentCodec
from repro.core.runtime import attach_skyway
from repro.core.streams import SkywayObjectInputStream, SkywayObjectOutputStream
from repro.heap import markword
from repro.jvm.collections import HashMapOps
from repro.jvm.jvm import JVM
from repro.jvm.marshal import from_heap, to_heap

from tests.conftest import make_date, make_list, read_date, read_list


@pytest.fixture
def pair(classpath):
    src = JVM("cc-src", classpath=classpath)
    dst = JVM("cc-dst", classpath=classpath)
    attach_skyway(src, [dst])
    return src, dst


def transfer(src, dst, root, compress):
    src.skyway.shuffle_start()
    out = SkywayObjectOutputStream(src.skyway, destination="p",
                                   compress_headers=compress)
    out.write_object(root)
    data = out.close()
    inp = SkywayObjectInputStream(dst.skyway)
    inp.accept(data)
    return inp.read_object(), data


class TestCompactRoundtrip:
    def test_simple_graph(self, pair):
        src, dst = pair
        received, _ = transfer(src, dst, make_date(src, 2018, 3, 24), True)
        assert read_date(dst, received) == (2018, 3, 24)

    def test_linked_list(self, pair):
        src, dst = pair
        received, _ = transfer(src, dst, make_list(src, range(100)), True)
        assert read_list(dst, received) == list(range(100))

    @pytest.mark.parametrize("value", [
        {"k": [1, 2.5], "s": ("x", b"\x01")},
        ["strings", "and", "arrays", (1, 2, 3)],
        frozenset({1, 2, 3}),
    ])
    def test_rich_values(self, pair, value):
        src, dst = pair
        received, _ = transfer(src, dst, to_heap(src, value), True)
        assert from_heap(dst, received) == value

    def test_hashcode_still_preserved(self, pair):
        src, dst = pair
        date = make_date(src, 1, 1, 1)
        h = src.identity_hash(date)
        received, _ = transfer(src, dst, date, True)
        assert markword.get_hash(dst.heap.read_mark(received)) == h

    def test_hashmap_still_valid(self, pair):
        src, dst = pair
        ops_src = HashMapOps(src)
        m = src.pin(ops_src.new())
        for i in range(10):
            k = src.pin(src.new_instance("Day2D"))
            src.set_field(k.address, "day", i)
            src.identity_hash(k.address)
            m.address = ops_src.put(m.address, k.address,
                                    src.pin(to_heap(src, i)).address)
        received, _ = transfer(src, dst, m.address, True)
        ops_dst = HashMapOps(dst)
        for k, v in ops_dst.entries(received):
            assert ops_dst.get(received, k) == v


class TestCompression:
    def test_strips_headers_and_padding(self, pair):
        """Wire bytes drop by roughly the headers+padding share the §5.2
        analysis attributes to them."""
        src, dst = pair
        head = make_list(src, range(200))
        _, raw = transfer(src, dst, head, compress=False)
        src2, dst2 = JVM("c2s", classpath=src.classpath), \
            JVM("c2d", classpath=src.classpath)
        attach_skyway(src2, [dst2])
        head2 = make_list(src2, range(200))
        _, compact = transfer(src2, dst2, head2, compress=True)
        # ListNode raw: 40 bytes (24 header + J + ref); compact: tid(1) +
        # flag(1) + 8 payload + ~1-3 ref varint bytes -> well under half.
        assert len(compact) < 0.55 * len(raw)

    def test_costs_higher_per_byte(self, pair):
        """The tradeoff: compression adds per-field CPU on both sides."""
        src, dst = pair
        head = make_list(src, range(150))
        before_src = src.clock.total()
        before_dst = dst.clock.total()
        transfer(src, dst, head, compress=False)
        plain_cost = (src.clock.total() - before_src
                      + dst.clock.total() - before_dst)
        before_src = src.clock.total()
        before_dst = dst.clock.total()
        transfer(src, dst, head, compress=True)
        compact_cost = (src.clock.total() - before_src
                        + dst.clock.total() - before_dst)
        assert compact_cost > plain_cost

    def test_frame_codec_byte_selects_path(self, pair):
        src, dst = pair
        _, raw = transfer(src, dst, make_date(src, 1, 1, 1), False)
        src.skyway.shuffle_start()
        out = SkywayObjectOutputStream(src.skyway, destination="q",
                                       compress_headers=True)
        out.write_object(make_date(src, 1, 1, 1))
        compact = out.close()
        assert raw[0] == 0
        assert compact[0] == 1


class TestCompactThroughEngine:
    def test_spark_job_with_compact_skyway(self):
        """The compact codec plugs into the whole Spark path and cuts
        shuffle bytes while preserving results."""
        from repro.core.adapter import SkywaySerializer
        from repro.core.runtime import attach_skyway
        from repro.spark.context import SparkContext
        from tests.test_spark_engine import make_cluster

        pairs = [(i % 6, (i, float(i))) for i in range(120)]
        results = {}
        bytes_shuffled = {}
        for compress in (False, True):
            cluster = make_cluster(3)
            attach_skyway(cluster.driver.jvm,
                          [w.jvm for w in cluster.workers], cluster=cluster)
            sc = SparkContext(cluster,
                              SkywaySerializer(compress_headers=compress),
                              default_parallelism=4)
            results[compress] = sorted(
                sc.parallelize(pairs).group_by_key().collect())
            bytes_shuffled[compress] = sc.shuffle.bytes_shuffled
        assert results[False] == results[True]
        assert bytes_shuffled[True] < 0.7 * bytes_shuffled[False]
