"""Tests for the engine event log (task/shuffle/cache introspection)."""

import pytest

from tests.test_spark_engine import make_context


class TestEventLog:
    def test_tasks_recorded_with_placement(self):
        sc = make_context("kryo", workers=3, partitions=6)
        sc.parallelize(range(60), 6).map(lambda x: x).collect()
        tasks = sc.events.of_kind("task")
        assert tasks, "tasks must be logged"
        by_node = sc.events.task_counts_by_node()
        # 6 partitions round-robin over 3 workers: every worker ran tasks.
        assert set(by_node) == {"worker-0", "worker-1", "worker-2"}

    def test_shuffle_fanout_accounting(self):
        sc = make_context("kryo", workers=3, partitions=4)
        sc.parallelize([(i % 5, i) for i in range(40)], 4) \
            .reduce_by_key(lambda a, b: a + b).collect()
        writes = sc.events.of_kind("shuffle_write")
        assert writes
        shuffle_id = writes[0]["shuffle_id"]
        fanout = sc.events.shuffle_fanout(shuffle_id)
        # 4 map partitions x 4 reduce partitions.
        assert fanout["files_written"] == 16
        assert fanout["fetches"] == 16
        assert 0 < fanout["remote_fetches"] < 16
        assert fanout["bytes_written"] > 0

    def test_cache_hits_logged(self):
        sc = make_context("kryo")
        rdd = sc.parallelize(range(10)).map(lambda x: x).cache()
        rdd.collect()
        assert sc.events.of_kind("cache_hit") == []
        rdd.collect()
        assert len(sc.events.of_kind("cache_hit")) == rdd.num_partitions

    def test_render_truncates(self):
        sc = make_context("kryo")
        sc.parallelize(range(40), 4).map(lambda x: x).collect()
        text = sc.events.render(limit=3)
        assert "more" in text
        assert "task" in text

    def test_clear(self):
        sc = make_context("kryo")
        sc.parallelize(range(4)).collect()
        assert len(sc.events) > 0
        sc.events.clear()
        assert len(sc.events) == 0
