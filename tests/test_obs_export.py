"""Exporters: Chrome trace structure and validation, terminal reports."""

import copy

from repro.obs.export import (
    render_diff,
    render_phase_report,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.tracer import Tracer


def traced_pair():
    tracer = Tracer(process="driver")
    with tracer.span("outer", wire_bytes=10):
        with tracer.span("inner"):
            pass
    return tracer


class TestChromeTrace:
    def test_structure_and_metadata(self):
        tracer = traced_pair()
        doc = to_chrome_trace(tracer.spans(), trace_id=tracer.trace_id)
        assert doc["otherData"]["trace_id"] == tracer.trace_id
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        ms = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert [e["name"] for e in xs] == ["outer", "inner"]
        assert {m["name"] for m in ms} == {"process_name", "thread_name"}
        outer = xs[0]
        assert outer["args"]["wire_bytes"] == 10
        assert outer["ts"] <= xs[1]["ts"]
        assert validate_chrome_trace(doc) == []

    def test_one_pid_per_process(self):
        driver = Tracer(process="driver")
        worker = Tracer(process="worker:w0", trace_id=driver.trace_id)
        with driver.span("a"):
            pass
        with worker.span("b"):
            pass
        doc = to_chrome_trace(driver.spans() + worker.spans())
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert xs[0]["pid"] != xs[1]["pid"]

    def test_accepts_dicts(self):
        tracer = traced_pair()
        doc = to_chrome_trace([s.as_dict() for s in tracer.spans()])
        assert validate_chrome_trace(doc) == []


class TestValidator:
    def valid_doc(self):
        tracer = traced_pair()
        return to_chrome_trace(tracer.spans(), trace_id=tracer.trace_id)

    def test_not_a_trace(self):
        assert validate_chrome_trace([]) \
            == ["document is not a mapping with a traceEvents list"]

    def test_empty_trace_is_a_problem(self):
        assert "trace contains no spans" \
            in validate_chrome_trace({"traceEvents": []})

    def test_unclosed_span_flagged(self):
        tracer = Tracer(process="driver")
        tracer.start("never-finished")
        problems = validate_chrome_trace(to_chrome_trace(tracer.spans()))
        assert any("never closed" in p for p in problems)

    def test_unresolved_parent_flagged(self):
        doc = self.valid_doc()
        inner = [e for e in doc["traceEvents"] if e["ph"] == "X"][1]
        inner["args"]["parent_id"] = "deadbeef"
        problems = validate_chrome_trace(doc)
        assert any("parent deadbeef not in trace" in p for p in problems)

    def test_duplicate_span_id_flagged(self):
        doc = self.valid_doc()
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        xs[1]["args"]["span_id"] = xs[0]["args"]["span_id"]
        problems = validate_chrome_trace(doc)
        assert any("duplicate span_id" in p for p in problems)

    def test_multiple_trace_ids_flagged(self):
        doc = self.valid_doc()
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        xs[1]["args"]["trace_id"] = "other-trace"
        problems = validate_chrome_trace(doc)
        assert any("multiple trace ids" in p for p in problems)

    def test_child_escaping_parent_flagged(self):
        doc = self.valid_doc()
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        xs[1]["ts"] = xs[0]["ts"] - 1000.0
        problems = validate_chrome_trace(doc)
        assert any("escapes parent" in p for p in problems)


class TestReports:
    def snapshot(self):
        tracer = traced_pair()
        return {
            "metrics": {
                "counters": {"sends": 2.0},
                "gauges": {},
                "histograms": {
                    "chunk_bytes": {"count": 2.0, "sum": 10.0,
                                    "min": 4.0, "max": 6.0},
                },
                "sources": {
                    "exchange.socket.w0#1": {
                        "substrate": "socket",
                        "sends": 2,
                        "wire_bytes": 4096,
                        "breakdown": {"serialization": 0.5,
                                      "total": 0.5, "bytes_written": 4096.0},
                    },
                    "gc.driver#1": {"jvm": "driver", "minor_collections": 1},
                },
            },
            "trace": {
                "trace_id": tracer.trace_id,
                "process": "driver",
                "open_spans": 0,
                "spans": [s.as_dict() for s in tracer.spans()],
            },
        }

    def test_phase_report_sections(self):
        text = render_phase_report(self.snapshot())
        assert "Phase breakdown" in text
        assert "outer" in text and "inner" in text
        assert "wire_bytes=4096" in text  # ledger-exact, straight from the source
        assert "serialization" in text
        assert "Counters" in text and "sends" in text
        assert "gc.driver#1" in text

    def test_phase_report_without_trace(self):
        snap = self.snapshot()
        del snap["trace"]
        assert "run with tracing enabled" in render_phase_report(snap)

    def test_diff_reports_numeric_deltas(self):
        old = self.snapshot()
        new = copy.deepcopy(old)
        new["metrics"]["counters"]["sends"] = 5.0
        new["metrics"]["sources"]["exchange.socket.w0#1"]["wire_bytes"] = 8192
        text = render_diff(old, new)
        assert "sends" in text and "+3" in text
        assert "wire_bytes" in text
        assert "(no numeric differences)" in render_diff(old, old)
