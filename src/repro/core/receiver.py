"""Receiving an object graph (paper §4.3).

"With the careful design on sending, the receiving logic is much simpler":

1. **Placement** (streaming): as segments arrive they are parsed object by
   object — the klass slot holds a tID, which the registry view resolves
   (loading the class if this JVM never saw it) to learn each object's size
   — and copied into in-heap input-buffer chunks.
2. **Absolutization** (after end-of-stream): one linear scan rewrites each
   object's tID back to the local klass pointer and each relativized
   reference to an absolute heap address via the chunk arithmetic.
3. **GC integration**: the freshly filled chunks are bulk-marked in the
   card table so the received pointers are visible to minor collections.
4. Registered **update functions** (paper §3.3's ``registerUpdate``) run
   against matching objects after the transfer.

Computation on a buffer must not start until its absolutization pass is
done; :class:`ObjectGraphReceiver` enforces that by only exposing roots
from :meth:`finish`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.input_buffer import InputBuffer, InputBufferError
from repro.core.kernels import (
    ReceiveKernel,
    WORD_STRUCT,
    receive_kernel_for,
    ref_run_struct,
)
from repro.core.type_registry import RegistryView
from repro.heap.handles import Handle
from repro.heap.heap import NULL
from repro.heap.layout import KLASS_OFFSET
from repro.jvm.jvm import JVM

#: An update hook: (jvm, object_address) -> new field value.
UpdateFunction = Callable[[JVM, int], object]


class ReceiveError(RuntimeError):
    pass


class ObjectGraphReceiver:
    """One receiving stream: segments in, absolutized heap objects out."""

    def __init__(
        self,
        jvm: JVM,
        registry_view: RegistryView,
        chunk_size: int = 64 * 1024,
        update_functions: Optional[Dict[str, List[Tuple[str, UpdateFunction]]]] = None,
    ) -> None:
        self.jvm = jvm
        self.view = registry_view
        self.buffer = InputBuffer(jvm.heap, chunk_size=chunk_size)
        self._update_functions = update_functions or {}
        #: Per-receiver tID -> compiled receive kernel memo: the registry
        #: view and class loader are consulted once per class, not once per
        #: object (the old per-object ``name_for`` + ``loader.load`` pair
        #: dominated placement time for homogeneous streams).
        self._kernels: Dict[int, ReceiveKernel] = {}
        #: (physical address, receive kernel) per placed object, in
        #: logical order.
        self._placed: List[Tuple[int, ReceiveKernel]] = []
        self._finished = False
        self.objects_received = 0
        self.bytes_received = 0

    # ------------------------------------------------------------------
    # streaming placement
    # ------------------------------------------------------------------

    def feed(self, segment: bytes) -> None:
        """Parse and place one flushed segment (whole objects only)."""
        if self._finished:
            raise ReceiveError("stream already finished")
        cost = self.jvm.cost_model
        kernels = self._kernels
        pos = 0
        n = len(segment)
        view = memoryview(segment)
        while pos < n:
            if pos + KLASS_OFFSET + 8 > n:
                raise ReceiveError(
                    f"truncated object header at segment offset {pos}"
                )
            tid = int.from_bytes(segment[pos + KLASS_OFFSET : pos + KLASS_OFFSET + 8],
                                 "little")
            kernel = kernels.get(tid)
            if kernel is None:
                if tid == 0:
                    raise ReceiveError(
                        f"null tID at segment offset {pos} "
                        f"(object #{self.objects_received} of the stream)"
                    )
                kernel = receive_kernel_for(
                    self._klass_for_tid(tid), self.jvm.layout, cost
                )
                kernels[tid] = kernel
            if kernel.is_array:
                lo = pos + kernel.length_offset
                length = int.from_bytes(segment[lo : lo + 4], "little")
                size = kernel.array_size(length)
            else:
                size = kernel.size
            if pos + size > n:
                raise ReceiveError(
                    f"object of {size} bytes overruns segment at {pos}"
                )
            address = self.buffer.place(view[pos : pos + size])
            self._placed.append((address, kernel))
            self.objects_received += 1
            self.bytes_received += size
            self.jvm.clock.charge(cost.memcpy(size))
            pos += size

    def _klass_for_tid(self, tid: int):
        """tID -> local klass, loading the class if it is missing here
        (paper: "Skyway instructs the class loader to load the missing
        class since the type registry knows the full class name")."""
        name = self.view.name_for(tid)
        return self.jvm.loader.load(name)

    # ------------------------------------------------------------------
    # absolutization
    # ------------------------------------------------------------------

    def finish(self, root_offsets: List[int]) -> List[Handle]:
        """End of stream: run the linear absolutization scan, update the
        card table, apply registered updates, and pin the top objects."""
        if self._finished:
            raise ReceiveError("stream already finished")
        self._finished = True
        self.buffer.freeze()
        heap = self.jvm.heap
        cost = self.jvm.cost_model

        translate = self.buffer.translate
        charge = self.jvm.clock.charge
        for address, kernel in self._placed:
            if kernel.klass_id is None:  # pragma: no cover - loader invariant
                raise ReceiveError(f"klass {kernel.klass.name} not installed")
            heap.write_klass_word(address, kernel.klass_id)
            if kernel.is_array:
                slots = (
                    heap.array_length(address)
                    if kernel.has_ref_elements
                    else 0
                )
                if slots:
                    run = ref_run_struct(slots)
                    base = address + kernel.elem_base
                    values = heap.unpack_from(run, base)
                    heap.pack_into(
                        run,
                        base,
                        *[translate(v) if v else 0 for v in values],
                    )
                charge(kernel.object_cost + slots * cost.skyway_pointer_fixup)
            else:
                if kernel.ref_unpack is not None:
                    values = heap.unpack_from(kernel.ref_unpack, address)
                    for slot, relative in zip(kernel.ref_offsets, values):
                        if relative:
                            heap.pack_into(
                                WORD_STRUCT, address + slot, translate(relative)
                            )
                charge(kernel.finish_cost)

        # GC integration: make the new pointers card-table visible.
        for chunk in self.buffer.chunks:
            heap.card_table.mark_range(chunk.physical_start, chunk.filled)
            self.jvm.clock.charge(cost.card_table_update)

        self._apply_updates()
        return [self.jvm.pin(self._root_address(off)) for off in root_offsets]

    def _root_address(self, logical_offset: int) -> int:
        if logical_offset == 0:
            return NULL
        try:
            return self.buffer.translate(logical_offset)
        except InputBufferError as exc:
            raise ReceiveError(f"bad top-mark offset {logical_offset:#x}") from exc

    def _apply_updates(self) -> None:
        """Run ``registerUpdate`` hooks on matching received objects
        (paper §3.3: e.g. re-initializing a timestamp field)."""
        if not self._update_functions:
            return
        for address, kernel in self._placed:
            hooks = self._update_functions.get(kernel.klass.name)
            if not hooks:
                continue
            for field_name, fn in hooks:
                self.jvm.set_field(address, field_name, fn(self.jvm, address))
