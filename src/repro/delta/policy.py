"""The fallback policy: when a delta stops paying, send the whole graph.

Delta framing has per-record overhead, card granularity sweeps unmutated
neighbours into the patch set, and a patch epoch leaves receiver-side
garbage behind (clones no longer referenced stay resident until the next
full send rebuilds the buffer).  Past a mutation-rate crossover, the
honest move is the paper's own: one clean full send.

Two gates, both measured rather than guessed:

* **pre-encode** — the dirty set is known before any encoding (one card
  intersection); if the estimated patch bytes already exceed
  ``byte_crossover`` × the resident graph's size, skip straight to a full
  send.
* **post-encode** — new-object discovery only happens during encoding, so
  a frame can still come out bigger than promised (many NEW objects, or
  heavy card false-sharing).  If the encoded frame exceeds the same
  crossover, the frame is discarded and a full send goes out instead; the
  wasted encode is charged — honesty about the cost of mispredicting.

The cache also self-invalidates: any sender-side GC since the record was
built may have moved cached source objects, so the policy reports
``gc_moved`` and forces a rebuild via full send.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.delta.epoch_cache import EpochRecord

#: Fall back to a full send when the (estimated or actual) delta bytes
#: exceed this fraction of the resident graph's bytes.
DEFAULT_BYTE_CROSSOVER = 0.5

#: Approximate wire overhead per delta record (tag + varint offset + len).
RECORD_OVERHEAD = 8


@dataclasses.dataclass
class EpochDecision:
    """Why an epoch went full or delta (kept per epoch in channel stats)."""

    mode: str  # "full" | "delta"
    reason: str  # "first_epoch" | "delta" | "mutation_crossover" |
    #              "encoded_overrun" | "gc_moved" | "forced" | "heterogeneous"
    mutation_rate: float = 0.0
    estimated_bytes: int = 0


@dataclasses.dataclass
class DeltaPolicy:
    """Mutation-rate-driven full/delta arbitration."""

    byte_crossover: float = DEFAULT_BYTE_CROSSOVER

    def decide(
        self,
        record: Optional[EpochRecord],
        dirty_count: int,
        dirty_bytes: int,
        minor_gcs: int,
        full_gcs: int,
    ) -> EpochDecision:
        """The pre-encode gate."""
        if record is None or len(record) == 0:
            return EpochDecision(mode="full", reason="first_epoch")
        if (minor_gcs, full_gcs) != (record.minor_gcs, record.full_gcs):
            return EpochDecision(mode="full", reason="gc_moved")
        rate = dirty_count / len(record)
        estimated = dirty_bytes + RECORD_OVERHEAD * dirty_count
        if estimated > self.byte_crossover * record.total_bytes:
            return EpochDecision(
                mode="full", reason="mutation_crossover",
                mutation_rate=rate, estimated_bytes=estimated,
            )
        return EpochDecision(
            mode="delta", reason="delta",
            mutation_rate=rate, estimated_bytes=estimated,
        )

    def accept_encoded(self, record: EpochRecord, frame_bytes: int) -> bool:
        """The post-encode gate: is the actual frame still worth it?"""
        return frame_bytes <= self.byte_crossover * record.total_bytes


@dataclasses.dataclass
class ChannelStats:
    """Per-channel transfer accounting across epochs."""

    epochs: int = 0
    full_sends: int = 0
    delta_sends: int = 0
    bytes_full: int = 0
    bytes_delta: int = 0
    objects_patched: int = 0
    objects_new: int = 0
    sameref_roots: int = 0
    wasted_encode_bytes: int = 0
    fallbacks: Dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def bytes_total(self) -> int:
        return self.bytes_full + self.bytes_delta

    def note_fallback(self, reason: str) -> None:
        self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1
