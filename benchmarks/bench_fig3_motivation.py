"""E-F3 — Figure 3: Spark S/D costs (motivation experiment, paper §2.2).

(a) performance breakdown of TriangleCounting over LiveJournal under the
Kryo and Java serializers; (b) bytes shuffled (local vs remote).
"""

from repro.bench.report import format_breakdown_table, format_bytes_table
from repro.bench.spark_experiments import run_figure3

from conftest import bench_scale, publish


def test_fig3_motivation(benchmark):
    scale = bench_scale(0.025)

    results = benchmark.pedantic(
        lambda: run_figure3(scale=scale), rounds=1, iterations=1
    )

    rows = {name: r.breakdown for name, r in results.items()}
    part_a = format_breakdown_table(
        rows, "Figure 3(a) — TriangleCounting / LiveJournal breakdown", "ms"
    )
    part_b = format_bytes_table(
        {name: (r.breakdown.local_bytes, r.breakdown.remote_bytes)
         for name, r in results.items()},
        "Figure 3(b) — bytes shuffled",
    )
    sd_lines = [
        f"{name}: S/D fraction of runtime = {r.breakdown.sd_fraction:.1%}"
        f" (paper: >30% under both serializers)"
        for name, r in results.items()
    ]
    publish("fig3_motivation", part_a + "\n\n" + part_b + "\n\n" + "\n".join(sd_lines))

    kryo, java = results["kryo"].breakdown, results["java"].breakdown
    # The motivation claims: S/D takes a substantial portion under both
    # serializers, and the Java serializer moves more bytes (type strings).
    # The exact kryo share is scale-sensitive (TriangleCounting's compute
    # grows faster than its shuffle volume); the paper's ~30% corresponds
    # to the full LiveJournal graph.
    assert kryo.sd_fraction > 0.10
    assert java.sd_fraction > 0.30
    assert java.bytes_written > kryo.bytes_written
    assert results["kryo"].result_digest == results["java"].result_digest
    benchmark.extra_info["kryo_sd_fraction"] = round(kryo.sd_fraction, 3)
    benchmark.extra_info["java_sd_fraction"] = round(java.sd_fraction, 3)
