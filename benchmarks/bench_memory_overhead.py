"""E-MEM — §5.2 memory overhead: the cost of the baddr header word.

Paper: "this overhead varies from 2.1% to 21.8%, with an average of 15.4%".
"""

from repro.bench.memory import measure_baddr_overhead
from repro.bench.report import format_kv_section

from conftest import bench_scale, publish


def test_memory_overhead(benchmark):
    scale = bench_scale(0.15)

    overheads = benchmark.pedantic(
        lambda: measure_baddr_overhead(scale=scale), rounds=1, iterations=1
    )

    average = sum(overheads.values()) / len(overheads)
    report = format_kv_section(
        "Memory overhead of the baddr word (paper: 2.1%-21.8%, avg 15.4%)",
        {**{f"{app} overhead": f"{v:.1%}" for app, v in overheads.items()},
         "average": f"{average:.1%}"},
    )
    publish("memory_overhead", report)

    for app, overhead in overheads.items():
        assert 0.0 < overhead < 0.35, (app, overhead)
    assert 0.05 < average < 0.30
    benchmark.extra_info["average_overhead"] = round(average, 4)
