"""Command-line experiment runner: ``python -m repro.bench <experiment>``.

Regenerates any of the paper's tables/figures without pytest:

    python -m repro.bench table1
    python -m repro.bench fig3
    python -m repro.bench fig7 --quick
    python -m repro.bench fig8a --scale 0.02
    python -m repro.bench fig8b
    python -m repro.bench table2
    python -m repro.bench table4
    python -m repro.bench memory
    python -m repro.bench extra-bytes
    python -m repro.bench delta-iter
    python -m repro.bench delta-sweep
    python -m repro.bench transport
    python -m repro.bench kernels
    python -m repro.bench kernels --smoke   # CI parity gate, exits 1 on drift
    python -m repro.bench exchange
    python -m repro.bench exchange --smoke  # CI parity gate, exits 1 on drift
    python -m repro.bench fleet
    python -m repro.bench fleet --smoke     # 4-worker fabric gate, exits 1
    python -m repro.bench fanin
    python -m repro.bench fanin --smoke     # async fan-in gate, exits 1
    python -m repro.bench policy
    python -m repro.bench policy --smoke    # adaptive-policy gate, exits 1
    python -m repro.bench all
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro import obs
from repro.bench.delta_experiments import run_delta_iterative, run_mutation_sweep
from repro.bench.exchange_experiments import (
    exchange_checks_pass,
    format_exchange_report,
    run_exchange_experiment,
)
from repro.bench.extra_bytes import average_composition, measure_extra_byte_composition
from repro.bench.fanin_experiments import (
    fanin_checks_pass,
    format_fanin_report,
    run_fanin_experiment,
)
from repro.bench.fleet_experiments import (
    fleet_checks_pass,
    format_fleet_report,
    run_fleet_experiment,
)
from repro.bench.flink_experiments import run_figure8b, summarize_table4
from repro.bench.kernel_experiments import (
    format_kernel_report,
    kernel_checks_pass,
    run_kernel_experiment,
)
from repro.bench.memory import measure_baddr_overhead
from repro.bench.policy_experiments import (
    format_policy_report,
    policy_checks_pass,
    run_policy_experiment,
)
from repro.bench.report import (
    format_breakdown_table,
    format_bytes_table,
    format_figure7,
    format_kv_section,
    format_normalized_table,
    format_table1,
)
from repro.bench.spark_experiments import (
    run_figure3,
    run_figure8a,
    summarize_table2,
)
from repro.bench.transport_experiments import (
    format_transport_report,
    run_transport_experiment,
)
from repro.datasets import table1_rows
from repro.jsbs.harness import run_jsbs
from repro.jsbs.libraries import LIBRARY_CATALOG


def cmd_table1(args) -> None:
    print(format_table1(table1_rows(scale=args.scale)))


def cmd_fig3(args) -> None:
    results = run_figure3(scale=args.scale)
    print(format_breakdown_table(
        {k: v.breakdown for k, v in results.items()},
        "Figure 3(a) — TriangleCounting / LiveJournal", "ms"))
    print()
    print(format_bytes_table(
        {k: (v.breakdown.local_bytes, v.breakdown.remote_bytes)
         for k, v in results.items()},
        "Figure 3(b) — bytes shuffled"))


def cmd_fig7(args) -> None:
    specs = LIBRARY_CATALOG
    if args.quick:
        keep = {"skyway", "colfer", "protostuff", "kryo-manual",
                "avro-generic", "thrift", "java-built-in"}
        specs = [s for s in LIBRARY_CATALOG if s.name in keep]
    print(format_figure7(run_jsbs(specs, nodes=5, objects=8, rounds=2)))


def cmd_fig8a(args) -> None:
    graphs = ("LJ", "OR", "UK", "TW") if args.full else ("LJ", "OR")
    results = run_figure8a(scale=args.scale, graphs=graphs, pr_iterations=2)
    combos = sorted({(r.app, r.graph) for r in results.values()})
    for app, graph in combos:
        rows = {s: results[(app, graph, s)].breakdown
                for s in ("java", "kryo", "skyway")}
        print(format_breakdown_table(rows, f"Figure 8(a) — {graph}-{app}", "ms"))
        print()
    print(format_normalized_table(summarize_table2(results),
                                  "Table 2 — normalized to the Java serializer"))


def cmd_fig8b(args) -> None:
    results = run_figure8b(micro_scale=args.scale if args.scale != 0.02 else 0.4)
    for query in ("QA", "QB", "QC", "QD", "QE"):
        rows = {m: results[(query, m)].breakdown for m in ("builtin", "skyway")}
        print(format_breakdown_table(rows, f"Figure 8(b) — {query}", "ms"))
        print()
    print(format_normalized_table(summarize_table4(results),
                                  "Table 4 — normalized to the built-in serializer"))


def cmd_table2(args) -> None:
    results = run_figure8a(scale=args.scale, graphs=("LJ", "OR"),
                           pr_iterations=2)
    print(format_normalized_table(summarize_table2(results),
                                  "Table 2 — normalized to the Java serializer"))


def cmd_table4(args) -> None:
    results = run_figure8b(micro_scale=0.4)
    print(format_normalized_table(summarize_table4(results),
                                  "Table 4 — normalized to the built-in serializer"))


def cmd_memory(args) -> None:
    overheads = measure_baddr_overhead(scale=max(args.scale, 0.1))
    avg = sum(overheads.values()) / len(overheads)
    print(format_kv_section(
        "baddr memory overhead (paper: 2.1%-21.8%, avg 15.4%)",
        {**{k: f"{v:.1%}" for k, v in overheads.items()},
         "average": f"{avg:.1%}"}))


def cmd_extra_bytes(args) -> None:
    per_app = measure_extra_byte_composition(scale=max(args.scale, 0.1))
    print(format_kv_section(
        "extra-byte composition (paper: headers 51% / padding 34% / pointers 15%)",
        {k: f"{v:.1%}" for k, v in average_composition(per_app).items()}))


def cmd_delta_iter(args) -> None:
    result = run_delta_iterative(scale=max(args.scale, 0.1))
    print(format_kv_section(
        "D-ITER — incremental PageRank, delta vs full-every-epoch",
        {
            "graph / iterations": f"{result['graph']} x{result['iterations']}"
                                  f" ({result['vertices']} vertices)",
            "mutation fraction": f"{result['mutation_fraction']:.0%}",
            "full wire bytes": result["full_wire_bytes"],
            "delta wire bytes": result["delta_wire_bytes"],
            "bytes ratio (full/delta)": f"{result['bytes_ratio']:.2f}x",
            "time ratio (full/delta)": f"{result['time_ratio']:.2f}x",
            "delta epoch modes": " ".join(result["delta_epoch_modes"]),
        }))


def cmd_delta_sweep(args) -> None:
    rows = run_mutation_sweep(scale=max(args.scale, 0.1))
    print(format_kv_section(
        "A-DELTA — one update epoch per mutation rate (fallback crossover)",
        {f"{row['mutation_fraction']:>4.0%} mutated":
         f"{row['update_bytes']:>8} bytes  {row['mode']:<5} "
         f"({row['reason']}, full would be {row['full_bytes']})"
         for row in rows}))


def cmd_transport(args) -> None:
    # The default --scale 0.02 maps to the full 80k-vertex (~8 MB) graph;
    # smaller scales shrink it proportionally for quick runs.
    vertices = max(2000, int(round(80_000 * args.scale / 0.02)))
    result = run_transport_experiment(vertices=vertices)
    print(format_transport_report(result))


def cmd_kernels(args) -> None:
    # --scale 0.02 maps to the full 40k-vertex graph; --smoke shrinks it
    # and turns the run into a pass/fail parity gate.
    vertices = max(1000, int(round(40_000 * args.scale / 0.02)))
    result = run_kernel_experiment(vertices=vertices, smoke=args.smoke)
    print(format_kernel_report(result))
    if not kernel_checks_pass(result):
        raise SystemExit("B-KERNEL parity check failed: kernel and "
                         "interpreted streams diverged")


def cmd_exchange(args) -> None:
    # --scale 0.02 maps to the full 4k-vertex graph; --smoke shrinks it.
    vertices = max(800, int(round(4_000 * args.scale / 0.02)))
    result = run_exchange_experiment(vertices=vertices, smoke=args.smoke)
    report = format_exchange_report(result)
    print(report)
    results_dir = pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results"
    if results_dir.parent.is_dir():  # running from the repo tree
        results_dir.mkdir(exist_ok=True)
        (results_dir / "exchange.txt").write_text(report + "\n")
        (results_dir / "exchange.json").write_text(
            json.dumps(result, indent=2, sort_keys=True, default=str) + "\n"
        )
    if not exchange_checks_pass(result):
        raise SystemExit(
            "B-EXCHANGE gate failed: " + "  ".join(
                f"{name}={'pass' if ok else 'FAIL'}"
                for name, ok in result["checks"].items()
            )
        )


def cmd_fleet(args) -> None:
    # --scale 0.02 maps to the full 1.5k-vertex graph; --smoke runs one
    # 4-worker fleet on a smaller graph as the CI gate.
    vertices = max(300, int(round(1_500 * args.scale / 0.02)))
    result = run_fleet_experiment(vertices=vertices, smoke=args.smoke,
                                  live=args.live)
    report = format_fleet_report(result)
    print(report)
    results_dir = _results_dir()
    if results_dir.parent.is_dir():  # running from the repo tree
        results_dir.mkdir(exist_ok=True)
        (results_dir / "fleet.txt").write_text(report + "\n")
        (results_dir / "fleet.json").write_text(
            json.dumps(result, indent=2, sort_keys=True, default=str) + "\n"
        )
    if not fleet_checks_pass(result):
        raise SystemExit(
            "B-FLEET gate failed: " + "  ".join(
                f"{name}={'pass' if ok else 'FAIL'}"
                for name, ok in result["checks"].items()
            )
        )


def cmd_fanin(args) -> None:
    # Channel counts are fixed per tier (16/128/1024 full, 8/32 smoke):
    # B-FANIN measures connection fan-in, not graph size, so --scale
    # deliberately does not apply.
    result = run_fanin_experiment(smoke=args.smoke, live=args.live)
    report = format_fanin_report(result)
    print(report)
    results_dir = _results_dir()
    if results_dir.parent.is_dir():  # running from the repo tree
        results_dir.mkdir(exist_ok=True)
        (results_dir / "fanin.txt").write_text(report + "\n")
        (results_dir / "fanin.json").write_text(
            json.dumps(result, indent=2, sort_keys=True, default=str) + "\n"
        )
    if not fanin_checks_pass(result):
        raise SystemExit(
            "B-FANIN gate failed: " + "  ".join(
                f"{name}={'pass' if ok else 'FAIL'}"
                for name, ok in result["checks"].items()
            )
        )


def cmd_policy(args) -> None:
    # --scale 0.02 maps to the full 4k-vertex graph; --smoke shrinks it
    # and drops the scenario sweep to the two headline operating points.
    vertices = max(500, int(round(4_000 * args.scale / 0.02)))
    result = run_policy_experiment(vertices=vertices, smoke=args.smoke)
    report = format_policy_report(result)
    print(report)
    results_dir = _results_dir()
    if results_dir.parent.is_dir():  # running from the repo tree
        results_dir.mkdir(exist_ok=True)
        (results_dir / "policy.txt").write_text(report + "\n")
        (results_dir / "policy.json").write_text(
            json.dumps(result, indent=2, sort_keys=True, default=str) + "\n"
        )
    if not policy_checks_pass(result):
        raise SystemExit(
            "B-POLICY gate failed: " + "  ".join(
                f"{name}={'pass' if ok else 'FAIL'}"
                for name, ok in result["checks"].items()
            )
        )


COMMANDS = {
    "table1": cmd_table1,
    "fig3": cmd_fig3,
    "fig7": cmd_fig7,
    "fig8a": cmd_fig8a,
    "fig8b": cmd_fig8b,
    "table2": cmd_table2,
    "table4": cmd_table4,
    "memory": cmd_memory,
    "extra-bytes": cmd_extra_bytes,
    "delta-iter": cmd_delta_iter,
    "delta-sweep": cmd_delta_sweep,
    "transport": cmd_transport,
    "kernels": cmd_kernels,
    "exchange": cmd_exchange,
    "fleet": cmd_fleet,
    "fanin": cmd_fanin,
    "policy": cmd_policy,
}


def _results_dir() -> pathlib.Path:
    return pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def _write_trace_artifacts(experiment: str) -> None:
    """Export the enabled tracer's spans and the metrics snapshot next to
    the experiment's ``benchmarks/results/*.json`` outputs."""
    from repro.obs.export import to_chrome_trace

    tracer = obs.get_tracer()
    if tracer is None:
        return
    results_dir = _results_dir()
    if not results_dir.parent.is_dir():  # not running from the repo tree
        return
    results_dir.mkdir(exist_ok=True)
    doc = to_chrome_trace(tracer.spans(), trace_id=tracer.trace_id)
    trace_path = results_dir / f"{experiment}.trace.json"
    snap_path = results_dir / f"{experiment}.obs.json"
    trace_path.write_text(json.dumps(doc, indent=2) + "\n")
    snap_path.write_text(
        json.dumps(obs.snapshot(), indent=2, default=str) + "\n"
    )
    print(f"\ntrace: {trace_path}\nsnapshot: {snap_path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the Skyway paper's tables and figures.",
    )
    parser.add_argument("experiment", choices=[*COMMANDS, "all"])
    parser.add_argument("--scale", type=float, default=0.02,
                        help="workload scale (default 0.02)")
    parser.add_argument("--quick", action="store_true",
                        help="fig7: run a reduced library catalog")
    parser.add_argument("--full", action="store_true",
                        help="fig8a: all four graphs (slow)")
    parser.add_argument("--smoke", action="store_true",
                        help="kernels/exchange/fleet/fanin/policy: reduced "
                             "workload, fail on parity drift")
    parser.add_argument("--live", action="store_true",
                        help="fleet/fanin: snapshot the fleet telemetry "
                             "plane (`repro.obs top` frames) into the "
                             "report")
    parser.add_argument("--trace", action="store_true",
                        help="run with tracing enabled and write "
                             "<experiment>.trace.json / <experiment>.obs.json "
                             "to benchmarks/results")
    args = parser.parse_args(argv)

    if args.trace:
        obs.enable(process="driver")
    try:
        if args.experiment == "all":
            for name, fn in COMMANDS.items():
                print(f"\n{'#' * 70}\n# {name}\n{'#' * 70}")
                fn(args)
        else:
            COMMANDS[args.experiment](args)
    finally:
        if args.trace:
            _write_trace_artifacts(args.experiment)
            obs.reset()
    return 0


if __name__ == "__main__":
    sys.exit(main())
