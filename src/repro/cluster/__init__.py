"""repro.cluster — the N-node fabric: coordinator, fleets, peer routing.

PRs 1–5 built a *pairwise* machine: one driver, one worker it spawned
itself, one channel between them.  This package turns that into a mesh:

* :mod:`repro.cluster.coordinator` — the fleet's name service: registers
  workers, assigns globally unique channel ids and placements, answers
  lookups, tracks liveness via heartbeats (its own process, same CRC32
  frame protocol as the workers);
* :mod:`repro.cluster.membership` — the client side of the coordinator
  protocol: an RPC client plus the worker-side register-and-heartbeat
  loop;
* :mod:`repro.cluster.fleet` — the driver front-end: ``Fleet.connect``,
  ``Fleet.channel_to(worker)``, ``Fleet.broadcast``, and peer-to-peer
  transfers (worker A clones straight into worker B — a shuffle fetch
  that never bounces through the driver);
* :mod:`repro.cluster.harness` — spawn-a-whole-fleet test/bench harness
  with kill/restart fault injection.

Import discipline: :mod:`repro.transport.worker` imports this package's
``errors`` module (workers raise :class:`ClusterProtocolError` and
:class:`PeerGoneError` themselves), while ``fleet``/``harness`` import the
transport and exchange layers.  Only ``errors`` is imported eagerly here;
everything else resolves lazily via PEP 562 so the cycle never closes.
"""

from __future__ import annotations

from repro.cluster.errors import (
    ClusterConfigError,
    ClusterError,
    ClusterProtocolError,
    CoordinatorUnavailableError,
    PeerGoneError,
)

__all__ = [
    "ClusterConfigError",
    "ClusterError",
    "ClusterProtocolError",
    "CoordinatorHandle",
    "CoordinatorClient",
    "CoordinatorSpec",
    "CoordinatorUnavailableError",
    "Fleet",
    "FleetChannel",
    "FleetHarness",
    "LocalCoordinator",
    "PeerGoneError",
    "RESERVED_CHANNEL_ID",
    "WorkerMembership",
]

_LAZY = {
    "CoordinatorHandle": "repro.cluster.coordinator",
    "CoordinatorSpec": "repro.cluster.coordinator",
    "LocalCoordinator": "repro.cluster.coordinator",
    "RESERVED_CHANNEL_ID": "repro.cluster.coordinator",
    "CoordinatorClient": "repro.cluster.membership",
    "WorkerMembership": "repro.cluster.membership",
    "Fleet": "repro.cluster.fleet",
    "FleetChannel": "repro.cluster.fleet",
    "FleetHarness": "repro.cluster.harness",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.cluster' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
