"""Per-node simulated clocks with category accounting.

A :class:`SimClock` accumulates simulated seconds into the five categories
the paper uses to break down Spark/Flink runtime (Figure 3, Figure 8):
computation, serialization, write I/O, deserialization, and read I/O (which,
per the paper, includes the network cost).  A sixth bookkeeping category,
``NETWORK``, is kept separately so Figure 7 (JSBS) can report network as its
own series; the Spark/Flink reports fold it into read I/O exactly as the
paper does.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Optional, Tuple


class Category(enum.Enum):
    """Runtime component, matching the paper's performance breakdowns."""

    COMPUTATION = "computation"
    SERIALIZATION = "serialization"
    WRITE_IO = "write_io"
    DESERIALIZATION = "deserialization"
    READ_IO = "read_io"
    NETWORK = "network"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Category.{self.name}"


class SimClock:
    """Accumulates simulated time per category for one node (JVM process).

    The clock also maintains a *context stack*: library code deep in the heap
    or serializer substrate charges to whatever category the currently
    executing phase pushed, so e.g. a field copy performed during
    serialization lands in ``SERIALIZATION`` while the same primitive during
    a map task lands in ``COMPUTATION``.
    """

    def __init__(self, name: str = "clock") -> None:
        self.name = name
        self._totals: Dict[Category, float] = {c: 0.0 for c in Category}
        self._stack: List[Category] = [Category.COMPUTATION]

    # -- charging ---------------------------------------------------------

    def charge(self, seconds: float, category: Optional[Category] = None) -> None:
        """Add ``seconds`` to ``category`` (or the current context)."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        cat = category if category is not None else self._stack[-1]
        self._totals[cat] += seconds

    @property
    def current_category(self) -> Category:
        return self._stack[-1]

    def push(self, category: Category) -> None:
        self._stack.append(category)

    def pop(self) -> Category:
        if len(self._stack) == 1:
            raise RuntimeError("cannot pop the base clock context")
        return self._stack.pop()

    def phase(self, category: Category) -> "_PhaseContext":
        """Context manager: route charges to ``category`` inside the block."""
        return _PhaseContext(self, category)

    # -- reading ----------------------------------------------------------

    def total(self, category: Optional[Category] = None) -> float:
        if category is not None:
            return self._totals[category]
        return sum(self._totals.values())

    def totals(self) -> Dict[Category, float]:
        return dict(self._totals)

    def items(self) -> Iterator[Tuple[Category, float]]:
        return iter(self._totals.items())

    def reset(self) -> None:
        for c in Category:
            self._totals[c] = 0.0

    def snapshot(self) -> Dict[Category, float]:
        """A copy of totals; subtract two snapshots to time a region."""
        return dict(self._totals)

    def since(self, snap: Dict[Category, float]) -> Dict[Category, float]:
        return {c: self._totals[c] - snap.get(c, 0.0) for c in Category}

    def merge(self, other: "SimClock") -> None:
        """Fold another clock's totals into this one (cluster aggregation)."""
        for cat, value in other.items():
            self._totals[cat] += value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{c.value}={v:.4f}" for c, v in self._totals.items() if v > 0
        )
        return f"SimClock({self.name}: {parts or 'empty'})"


class _PhaseContext:
    def __init__(self, clock: SimClock, category: Category) -> None:
        self._clock = clock
        self._category = category

    def __enter__(self) -> SimClock:
        self._clock.push(self._category)
        return self._clock

    def __exit__(self, *exc: object) -> None:
        self._clock.pop()
