"""Flink experiment runners: Figure 8(b) and Table 4 (paper §5.3)."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.core.adapter import SkywaySerializer
from repro.core.runtime import attach_skyway
from repro.flink.engine import FlinkEnvironment
from repro.flink.queries import QUERIES, run_query
from repro.flink.tpch import TpchDataset, generate_tpch
from repro.jvm.jvm import JVM
from repro.net.cluster import Cluster
from repro.simtime import Breakdown, SimClock
from repro.types.corelib import standard_classpath


@dataclasses.dataclass(frozen=True)
class FlinkRunResult:
    query: str
    mode: str  # "builtin" | "skyway"
    breakdown: Breakdown
    rows: int


def _make_env(mode: str, workers: int, parallelism: int) -> FlinkEnvironment:
    classpath = standard_classpath()
    cluster = Cluster(lambda name: JVM(name, classpath=classpath),
                      worker_count=workers)
    serializer = None
    if mode == "skyway":
        attach_skyway(cluster.driver.jvm, [w.jvm for w in cluster.workers],
                      cluster=cluster)
        serializer = SkywaySerializer()
    return FlinkEnvironment(cluster, mode=mode, parallelism=parallelism,
                            skyway_serializer=serializer)


def run_flink_query(
    query: str,
    mode: str,
    data: Optional[TpchDataset] = None,
    micro_scale: float = 0.5,
    workers: int = 3,
    parallelism: int = 4,
) -> FlinkRunResult:
    if data is None:
        data = generate_tpch(micro_scale)
    env = _make_env(mode, workers, parallelism)
    # Warm-up run: loads every row class cluster-wide (one-time
    # type-registry traffic and class loading that the paper's 100GB runs
    # amortize away), then measure a clean execution.
    run_query(query, env, data)
    env.cluster.reset_clocks()
    shuffled_before = env.bytes_shuffled
    rows = run_query(query, env, data)
    total = env.cluster.total_clock()
    breakdown = Breakdown.from_totals(
        total.totals(),
        bytes_written=env.bytes_shuffled - shuffled_before,
        local_bytes=sum(n.local_bytes_fetched for n in env.cluster.nodes()),
        remote_bytes=sum(n.remote_bytes_fetched for n in env.cluster.nodes()),
    )
    return FlinkRunResult(query=query, mode=mode, breakdown=breakdown,
                          rows=len(rows))


def run_figure8b(
    micro_scale: float = 0.5,
    queries: Tuple[str, ...] = ("QA", "QB", "QC", "QD", "QE"),
    workers: int = 3,
    parallelism: int = 4,
) -> Dict[Tuple[str, str], FlinkRunResult]:
    """Figure 8(b): QA-QE under Flink's built-in serializer and Skyway."""
    data = generate_tpch(micro_scale)
    results: Dict[Tuple[str, str], FlinkRunResult] = {}
    for query in queries:
        for mode in ("builtin", "skyway"):
            results[(query, mode)] = run_flink_query(
                query, mode, data=data, workers=workers,
                parallelism=parallelism,
            )
    return results


def summarize_table4(
    results: Dict[Tuple[str, str], FlinkRunResult],
) -> Dict[str, List[Dict[str, float]]]:
    """Table 4: Skyway normalized to Flink's built-in serializer."""
    out: Dict[str, List[Dict[str, float]]] = {"Skyway": []}
    queries = sorted({q for q, _ in results})
    for query in queries:
        base = results.get((query, "builtin"))
        sky = results.get((query, "skyway"))
        if base and sky:
            out["Skyway"].append(sky.breakdown.normalized_to(base.breakdown))
    return out
