"""Tests for mark-word encoding, including Skyway's header-reset rule."""

import pytest
from hypothesis import given, strategies as st

from repro.heap import markword as mw


class TestHash:
    def test_fresh_mark_has_no_hash(self):
        assert not mw.has_hash(mw.FRESH_MARK)

    def test_set_get_roundtrip(self):
        mark = mw.set_hash(mw.FRESH_MARK, 0x1234_5678)
        assert mw.get_hash(mark) == 0x1234_5678

    def test_hash_overflow_rejected(self):
        with pytest.raises(ValueError):
            mw.set_hash(0, 1 << 31)

    @given(st.integers(min_value=0, max_value=(1 << 31) - 1))
    def test_hash_preserved_for_any_value(self, h):
        assert mw.get_hash(mw.set_hash(mw.FRESH_MARK, h)) == h


class TestAgeAndLocks:
    def test_age_roundtrip(self):
        mark = mw.set_age(mw.FRESH_MARK, 5)
        assert mw.get_age(mark) == 5

    def test_age_out_of_range(self):
        with pytest.raises(ValueError):
            mw.set_age(0, mw.MAX_AGE + 1)

    def test_lock_bits(self):
        mark = mw.set_lock_bits(mw.FRESH_MARK, mw.LOCK_INFLATED)
        assert mw.get_lock_bits(mark) == mw.LOCK_INFLATED

    def test_biased_bit(self):
        mark = mw.set_biased(mw.FRESH_MARK, True)
        assert mw.is_biased(mark)
        assert not mw.is_biased(mw.set_biased(mark, False))

    def test_fields_do_not_interfere(self):
        mark = mw.set_hash(mw.set_age(mw.FRESH_MARK, 3), 999)
        mark = mw.set_lock_bits(mark, mw.LOCK_THIN)
        assert mw.get_age(mark) == 3
        assert mw.get_hash(mark) == 999
        assert mw.get_lock_bits(mark) == mw.LOCK_THIN


class TestTransferReset:
    """Paper §4.2: reset GC and lock bits, preserve the hashcode."""

    @given(
        st.integers(min_value=0, max_value=(1 << 31) - 1),
        st.integers(min_value=0, max_value=mw.MAX_AGE),
        st.sampled_from([mw.LOCK_UNLOCKED, mw.LOCK_THIN, mw.LOCK_INFLATED]),
    )
    def test_reset_preserves_hash_clears_rest(self, h, age, lock):
        dirty = mw.set_lock_bits(
            mw.set_biased(mw.set_age(mw.set_hash(mw.FRESH_MARK, h), age), True), lock
        )
        clean = mw.reset_for_transfer(dirty)
        assert mw.get_hash(clean) == h
        assert mw.get_age(clean) == 0
        assert not mw.is_biased(clean)
        assert mw.get_lock_bits(clean) == mw.LOCK_UNLOCKED


class TestForwarding:
    def test_roundtrip(self):
        fwd = mw.make_forwarding(0x10_0000_0040)
        assert mw.is_forwarded(fwd)
        assert mw.forwarding_target(fwd) == 0x10_0000_0040

    def test_unaligned_rejected(self):
        with pytest.raises(ValueError):
            mw.make_forwarding(0x1001)

    def test_plain_mark_not_forwarded(self):
        assert not mw.is_forwarded(mw.FRESH_MARK)
        with pytest.raises(ValueError):
            mw.forwarding_target(mw.FRESH_MARK)
