"""Dirty-object discovery: a write barrier feeding a second card table.

The GC already proves the technique: HotSpot's interpreter and JIT emit a
store barrier that dirties a card per reference store, and the scavenger
scans dirty cards instead of the whole old generation.  Skyway-Delta reuses
the exact same machinery for a different consumer — *transfer* instead of
*collection*: every typed field/element write on the tracked heap marks a
dedicated delta :class:`~repro.heap.cardtable.CardTable` (a second
instance, covering the whole heap rather than just the old generation, and
marking *all* writes rather than just reference stores — a mutated ``rank``
field must reship the object even though no pointer changed).

Each delta channel owns its own table: channels clear their table after
consuming an epoch, and a shared table would lose one channel's dirt when
another clears.  The barrier fans one write out to every registered table
(one table in the common single-destination case).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.heap.cardtable import CardTable
from repro.heap.heap import ManagedHeap

#: Delta cards are finer than GC cards (512): precision directly buys
#: bytes — every false neighbour on a dirty card gets re-shipped.
DELTA_CARD_SIZE = 128


class DeltaTracker:
    """The write-barrier hook and its per-channel delta card tables."""

    def __init__(self, heap: ManagedHeap, card_size: int = DELTA_CARD_SIZE) -> None:
        self.heap = heap
        self.card_size = card_size
        self._tables: List[CardTable] = []
        #: Total barrier invocations (diagnostics / overhead accounting).
        self.writes_seen = 0
        heap.mutation_listeners.append(self._on_write)

    @classmethod
    def attach(cls, heap: ManagedHeap, card_size: int = DELTA_CARD_SIZE) -> "DeltaTracker":
        """The one tracker for ``heap``, created on first use."""
        tracker = getattr(heap, "delta_tracker", None)
        if tracker is None:
            tracker = cls(heap, card_size)
            heap.delta_tracker = tracker
        return tracker

    # ------------------------------------------------------------------
    # the write barrier
    # ------------------------------------------------------------------

    def _on_write(self, slot_address: int, nbytes: int) -> None:
        self.writes_seen += 1
        for table in self._tables:
            table.mark_range(slot_address, nbytes)

    # ------------------------------------------------------------------
    # per-channel tables
    # ------------------------------------------------------------------

    def new_table(self) -> CardTable:
        """A fresh delta card table spanning the whole heap, registered
        with the barrier.  The owning channel clears it per epoch."""
        heap = self.heap
        table = CardTable(heap.base, heap.old.end, self.card_size)
        self._tables.append(table)
        return table

    def release_table(self, table: CardTable) -> None:
        self._tables.remove(table)

    @property
    def table_count(self) -> int:
        return len(self._tables)

    @staticmethod
    def dirty_ranges(table: CardTable) -> Iterator[Tuple[int, int]]:
        """Coalesced ``[start, end)`` dirty spans of one channel table."""
        return table.dirty_ranges()
