"""The Figure 7 library catalog.

The paper compares Skyway against 90 S/D libraries and plots the 27
fastest.  Each catalog entry here instantiates one of the repo's *real*
serializer mechanisms with parameters expressing where that library sits
within its family:

* ``schema``  — compiled-from-schema codecs (Colfer, the Protostuff and
  Protobuf variants, DataKernel, Avro, Wobly, Cap'n Proto, Thrift):
  :class:`~repro.serial.schema_compiled.SchemaCompiledSerializer` with a
  per-library tightness factor (generated-code quality) and framing
  overhead (Thrift/Avro carry heavier envelopes);
* ``generated`` — registration + hand-written/generated functions (the
  Kryo variants, FST, the Jackson Smile/CBOR binary bindings):
  :class:`~repro.serial.kryo.KryoSerializer` semantics, with byte-stream
  cost scaling for the byte-oriented Jackson formats;
* ``reflective`` — the JDK serializer (the "67x slower" baseline);
* ``skyway`` — the drop-in adapter.

Factors are calibrated against Figure 7's ordering: Skyway fastest, Colfer
about 1.5x slower, kryo-manual about 2.2x slower, the tail beyond 10s
summarized as "Other 63 S/D libraries".
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.core.adapter import SkywaySerializer
from repro.serial.base import Serializer
from repro.serial.java_serializer import JavaSerializer
from repro.serial.kryo import KryoRegistrator, KryoSerializer
from repro.serial.schema_compiled import SchemaCompiledSerializer


@dataclasses.dataclass(frozen=True)
class LibrarySpec:
    """One Figure 7 row: a library name and its mechanism parameters."""

    name: str
    family: str  # "skyway" | "schema" | "generated" | "reflective"
    #: Generated-code tightness: multiplies per-field access cost.
    field_cost_factor: float = 1.0
    #: Byte-stream handling cost multiplier (byte-oriented formats pay more).
    byte_cost_factor: float = 1.0
    #: Extra framing bytes per top-level record.
    frame_overhead: int = 0


class _ScaledKryoSerializer(KryoSerializer):
    """Kryo-family member with scaled per-field/stream costs."""

    def __init__(self, name: str, spec: LibrarySpec,
                 registrator: Optional[KryoRegistrator]) -> None:
        super().__init__(registrator=registrator, registration_required=False)
        self.name = name
        self._spec = spec

    def new_stream(self, jvm, thread_id: int = 0):
        stream = super().new_stream(jvm, thread_id)
        return _scale_costs(stream, jvm, self._spec)

    def new_reader(self, jvm, data):
        reader = super().new_reader(jvm, data)
        return _scale_costs(reader, jvm, self._spec)


def _scale_costs(obj, jvm, spec: LibrarySpec):
    """Bind a per-library-scaled cost model to a stream object.

    The stream reads ``self.jvm.cost_model``; giving it a shim JVM view
    with scaled constants keeps the mechanism code identical across
    libraries while the constants move.
    """
    scaled = jvm.cost_model.scaled(
        generated_access=jvm.cost_model.generated_access * spec.field_cost_factor,
        stream_byte=jvm.cost_model.stream_byte * spec.byte_cost_factor,
        sd_function_call=jvm.cost_model.sd_function_call * spec.field_cost_factor,
    )

    class _JvmView:
        def __getattr__(self, item):
            if item == "cost_model":
                return scaled
            return getattr(jvm, item)

    obj.jvm = _JvmView()
    return obj


#: Figure 7's rows, fastest-first per the paper, with the Java serializer
#: (not shown in the paper's figure; "more than 67x" slower) and the
#: "Other 63" placeholder appended.
LIBRARY_CATALOG: List[LibrarySpec] = [
    LibrarySpec("skyway", "skyway"),
    LibrarySpec("colfer", "schema", field_cost_factor=0.8, byte_cost_factor=0.7),
    LibrarySpec("protostuff", "schema", field_cost_factor=1.0, byte_cost_factor=0.8),
    LibrarySpec("protostuff-manual", "schema", field_cost_factor=1.0,
                byte_cost_factor=0.85),
    LibrarySpec("protobuf/protostuff", "schema", field_cost_factor=1.1,
                byte_cost_factor=0.9),
    LibrarySpec("datakernel", "schema", field_cost_factor=1.2,
                byte_cost_factor=0.9),
    LibrarySpec("protostuff-graph", "schema", field_cost_factor=1.3,
                byte_cost_factor=0.9),
    LibrarySpec("protostuff-runtime", "schema", field_cost_factor=1.5,
                byte_cost_factor=0.95),
    LibrarySpec("protobuf/protostuff-runtime", "schema", field_cost_factor=1.6,
                byte_cost_factor=0.95),
    LibrarySpec("protostuff-graph-runtime", "schema", field_cost_factor=1.75,
                byte_cost_factor=1.0),
    LibrarySpec("kryo-manual", "generated", field_cost_factor=1.0),
    LibrarySpec("smile/jackson/manual", "generated", field_cost_factor=1.0,
                byte_cost_factor=1.3),
    LibrarySpec("kryo-opt", "generated", field_cost_factor=1.15),
    LibrarySpec("kryo-flat-pre", "generated", field_cost_factor=1.25),
    LibrarySpec("avro-generic", "schema", field_cost_factor=2.3,
                byte_cost_factor=1.1, frame_overhead=4),
    LibrarySpec("cbor/jackson/manual", "generated", field_cost_factor=1.2,
                byte_cost_factor=1.6),
    LibrarySpec("avro-specific", "schema", field_cost_factor=2.6,
                byte_cost_factor=1.15, frame_overhead=4),
    LibrarySpec("wobly", "schema", field_cost_factor=2.8, byte_cost_factor=1.1),
    LibrarySpec("kryo-flat", "generated", field_cost_factor=1.7),
    LibrarySpec("wobly-compact", "schema", field_cost_factor=3.0,
                byte_cost_factor=1.05),
    LibrarySpec("cbor/jackson+afterburner/databind", "generated",
                field_cost_factor=1.8, byte_cost_factor=1.7),
    LibrarySpec("capnproto", "schema", field_cost_factor=3.4,
                byte_cost_factor=1.0, frame_overhead=8),
    LibrarySpec("cbor-col/jackson/databind", "generated",
                field_cost_factor=2.2, byte_cost_factor=1.8),
    LibrarySpec("smile/jackson+afterburner/databind", "generated",
                field_cost_factor=2.4, byte_cost_factor=1.6),
    LibrarySpec("smile-col/jackson/databind", "generated",
                field_cost_factor=2.7, byte_cost_factor=1.7),
    LibrarySpec("thrift-compact", "schema", field_cost_factor=4.2,
                byte_cost_factor=1.3, frame_overhead=6),
    LibrarySpec("fst-flat-pre", "generated", field_cost_factor=3.6,
                byte_cost_factor=1.4),
    LibrarySpec("thrift", "schema", field_cost_factor=4.8,
                byte_cost_factor=1.5, frame_overhead=8),
    # Reference rows beyond the figure's 28 bars:
    LibrarySpec("java-built-in", "reflective"),
    LibrarySpec("other-63-slower", "reflective", field_cost_factor=1.4),
]


def build_serializer(
    spec: LibrarySpec, registrator: Optional[KryoRegistrator] = None
) -> Serializer:
    """Instantiate the serializer a catalog entry describes."""
    if spec.family == "skyway":
        return SkywaySerializer()
    if spec.family == "schema":
        return SchemaCompiledSerializer(
            name=spec.name,
            field_cost_factor=spec.field_cost_factor,
            byte_cost_factor=spec.byte_cost_factor,
            frame_overhead=spec.frame_overhead,
        )
    if spec.family == "generated":
        return _ScaledKryoSerializer(spec.name, spec, registrator)
    if spec.family == "reflective":
        serializer = JavaSerializer()
        serializer.name = spec.name
        return serializer
    raise ValueError(f"unknown family {spec.family!r}")


def catalog_by_name() -> Dict[str, LibrarySpec]:
    return {spec.name: spec for spec in LIBRARY_CATALOG}
