"""The policy plane: decision-table cells, the capability clamp, the
engine's history folding, and the adaptive policy's hysteresis band —
every mode decision in the repo funnels through these."""

import pytest

from repro import obs
from repro.exchange.capabilities import ChannelCapabilities
from repro.policy import (
    AdaptivePolicy,
    AlwaysDelta,
    AlwaysFull,
    ChannelSignals,
    CrossoverPolicy,
    DeltaPolicy,
    PolicyEngine,
    PolicyError,
    SendPlan,
    resolve_engine,
    resolve_policy,
)


def observed(fraction, *, resident=10_000, **kwargs):
    """Signals carrying a real mutation observation whose byte fraction is
    ``fraction`` (record overhead zeroed out via dirty_count=0)."""
    return ChannelSignals(
        channel_id=kwargs.pop("channel_id", 7),
        epoch=kwargs.pop("epoch", 2),
        resident_objects=kwargs.pop("resident_objects", 100),
        resident_bytes=resident,
        dirty_bytes=int(fraction * resident),
        dirty_members=[1],
        **kwargs,
    )


class TestGuardRules:
    """The shared guard prefix fires before any policy-specific row, in
    protocol-invariant order, for every table."""

    @pytest.mark.parametrize("policy", [
        CrossoverPolicy(), AdaptivePolicy(), AlwaysFull(), AlwaysDelta(),
    ])
    def test_guards_shared_by_every_table(self, policy):
        assert policy.rule_reasons()[:5] == [
            "forced", "delta_disabled", "heterogeneous", "first_epoch",
            "gc_moved",
        ]

    def test_forced_full_wins_over_everything(self):
        plan = CrossoverPolicy().decide(observed(0.0, forced_full=True))
        assert (plan.mode, plan.reason) == ("full", "forced")

    def test_delta_incapable_channel_goes_full(self):
        plan = CrossoverPolicy().decide(observed(0.0, delta_capable=False))
        assert (plan.mode, plan.reason) == ("full", "delta_disabled")

    def test_heterogeneous_layout_goes_full(self):
        plan = CrossoverPolicy().decide(observed(0.0, heterogeneous=True))
        assert (plan.mode, plan.reason) == ("full", "heterogeneous")

    def test_first_epoch_goes_full(self):
        plan = CrossoverPolicy().decide(
            ChannelSignals(epoch=1, first_epoch=True))
        assert (plan.mode, plan.reason) == ("full", "first_epoch")

    def test_gc_moved_record_goes_full(self):
        plan = CrossoverPolicy().decide(observed(0.0, gc_moved=True))
        assert (plan.mode, plan.reason) == ("full", "gc_moved")

    def test_adaptive_bootstraps_with_digest(self):
        signals = ChannelSignals(epoch=1, first_epoch=True)
        assert AdaptivePolicy().decide(signals).digest
        assert not AdaptivePolicy(digest_bootstrap=False).decide(
            signals).digest


class TestCrossoverCells:
    """The legacy mutation-byte crossover, cell by cell."""

    def test_below_crossover_is_delta_with_budget(self):
        plan = CrossoverPolicy(byte_crossover=0.5).decide(observed(0.2))
        assert (plan.mode, plan.reason) == ("delta", "delta")
        assert plan.byte_budget == 0.5 * 10_000
        assert plan.policy == "crossover"

    def test_above_crossover_is_full(self):
        plan = CrossoverPolicy(byte_crossover=0.5).decide(observed(0.8))
        assert (plan.mode, plan.reason) == ("full", "mutation_crossover")
        assert plan.mutation_rate == pytest.approx(0.0)  # object fraction
        assert plan.estimated_bytes == 8_000

    def test_negative_crossover_degenerates_to_always_full(self):
        # Legacy DeltaPolicy parity: byte_crossover < 0 forces FULL even
        # with zero mutation (0 > negative budget).
        plan = CrossoverPolicy(byte_crossover=-1.0).decide(observed(0.0))
        assert (plan.mode, plan.reason) == ("full", "mutation_crossover")


class TestStaticCorners:
    def test_always_full_carries_its_streams(self):
        plan = AlwaysFull(streams=4, digest=True).decide(observed(0.01))
        assert (plan.mode, plan.reason) == ("full", "static_full")
        assert plan.streams == 4 and plan.digest
        assert plan.policy == "always_full[4]"
        assert AlwaysFull().decide(observed(0.01)).policy == "always_full"

    def test_always_delta_never_reverts_post_encode(self):
        plan = AlwaysDelta().decide(observed(0.99))
        assert (plan.mode, plan.reason) == ("delta", "delta")
        assert plan.byte_budget is None


class TestCapabilityClamp:
    """Negotiation bounds the plan; it never upgrades one."""

    def test_delta_plan_on_full_only_channel_reverts(self):
        caps = ChannelCapabilities(kernel=True, delta=False)
        plan = SendPlan(mode="delta", reason="delta",
                        byte_budget=100.0).clamp(caps)
        assert (plan.mode, plan.reason) == ("full", "delta_disabled")
        assert plan.byte_budget is None
        assert "delta" in plan.clamped

    def test_kernel_inherit_resolves_to_negotiated_value(self):
        plan = SendPlan(mode="full")
        assert plan.clamp(ChannelCapabilities(kernel=True)).kernel is True
        clamped = plan.clamp(ChannelCapabilities(kernel=False))
        assert clamped.kernel is False and "kernel" in clamped.clamped

    def test_compact_headers_never_compose_with_delta(self):
        plan = SendPlan(mode="full", compact_headers=True)
        caps = ChannelCapabilities(
            kernel=True, delta=True, compact_headers=True)
        clamped = plan.clamp(caps)
        assert not clamped.compact_headers
        assert "compact_headers" in clamped.clamped
        # On a full-only channel the compact grant is usable.
        full_only = ChannelCapabilities(
            kernel=True, delta=False, compact_headers=True)
        assert plan.clamp(full_only).compact_headers

    def test_streams_bounded_by_negotiated_cap(self):
        plan = SendPlan(mode="full", streams=8)
        caps = ChannelCapabilities(kernel=True, parallel_streams=2)
        clamped = plan.clamp(caps)
        assert clamped.streams == 2 and "streams" in clamped.clamped
        assert clamped.label == "parallel-2"

    def test_delta_plans_are_single_stream(self):
        caps = ChannelCapabilities(kernel=True, delta=True,
                                   parallel_streams=8)
        plan = SendPlan(mode="delta", streams=4).clamp(caps)
        assert plan.streams == 1

    def test_unclamped_plan_is_returned_as_is(self):
        plan = SendPlan(mode="delta", kernel=False)
        caps = ChannelCapabilities(kernel=True, delta=True)
        assert plan.clamp(caps) is plan


class TestAdaptiveHysteresis:
    def _engine(self, **kwargs):
        kwargs.setdefault("enter_full", 0.5)
        kwargs.setdefault("exit_full", 0.35)
        # alpha=1.0: the EWMA tracks the raw fraction, so the test drives
        # the band directly.
        return PolicyEngine(AdaptivePolicy(**kwargs), alpha=1.0)

    def _modes(self, engine, fractions):
        return [engine.plan(observed(f)).mode for f in fractions]

    def test_oscillation_across_one_threshold_does_not_flap(self):
        # 0.40/0.62 straddles enter_full=0.5 every epoch.  Without the
        # band the mode would flip 7 times; with it, exactly once.
        modes = self._modes(self._engine(),
                            [0.40, 0.62, 0.40, 0.62, 0.40, 0.62, 0.40])
        assert modes == ["delta", "full", "full", "full", "full", "full",
                         "full"]
        transitions = sum(1 for a, b in zip(modes, modes[1:]) if a != b)
        assert transitions == 1

    def test_crossover_without_band_flaps(self):
        # The contrast case: the memoryless crossover flips every epoch.
        engine = PolicyEngine(CrossoverPolicy(byte_crossover=0.5),
                              alpha=1.0)
        modes = self._modes(engine, [0.40, 0.62, 0.40, 0.62])
        assert modes == ["delta", "full", "delta", "full"]

    def test_sustained_drop_below_exit_returns_to_delta(self):
        engine = self._engine()
        assert self._modes(engine, [0.62, 0.40, 0.34]) == \
            ["full", "full", "delta"]

    def test_forced_full_does_not_enter_the_full_regime(self):
        # A guard-rule FULL is not the policy's own choice: the next
        # observed epoch still decides against enter_full, not exit_full.
        engine = self._engine()
        engine.plan(observed(0.40, forced_full=True))
        assert engine.plan(observed(0.40)).mode == "delta"

    def test_inverted_band_is_rejected(self):
        with pytest.raises(PolicyError):
            AdaptivePolicy(enter_full=0.3, exit_full=0.5)

    def test_bandwidth_drives_stream_count(self):
        policy = AdaptivePolicy(max_streams=4, parallel_wire_seconds=0.25)
        slow = observed(0.9, root_count=8, bandwidth_bps=1_000.0)
        assert policy.decide(slow).streams == 4
        fast = observed(0.9, root_count=8, bandwidth_bps=1e9)
        assert policy.decide(fast).streams == 1
        # A single root cannot shard, whatever the wire looks like.
        single = observed(0.9, root_count=1, bandwidth_bps=1_000.0)
        assert policy.decide(single).streams == 1


class TestPolicyEngine:
    def test_ewma_folds_history_into_signals(self):
        engine = PolicyEngine("adaptive", alpha=0.5)
        engine.plan(observed(0.2))
        plan = engine.plan(observed(0.6))
        # Seeded at 0.2, then 0.5*0.6 + 0.5*0.2 = 0.4 < enter_full=0.5:
        # the raw 0.6 would go full, the smoothed fraction stays delta.
        assert plan.mode == "delta"
        hist = engine.history(7)
        assert hist.byte_fraction_ewma == pytest.approx(0.4)
        assert hist.epochs_observed == 2

    def test_history_is_per_channel(self):
        engine = PolicyEngine("adaptive", alpha=1.0)
        engine.plan(observed(0.9, channel_id=1))
        assert engine.plan(observed(0.9, channel_id=1)).mode == "full"
        # Channel 2's history is untouched by channel 1's regime.
        assert engine.history(2).byte_fraction_ewma is None

    def test_observe_transfer_feeds_bandwidth(self):
        engine = PolicyEngine("adaptive", alpha=0.5)
        engine.observe_transfer(7, wire_bytes=1000, seconds=1.0)
        engine.observe_transfer(7, wire_bytes=3000, seconds=1.0,
                                queue_wait_seconds=0.25)
        hist = engine.history(7)
        assert hist.bandwidth_bps == pytest.approx(2000.0)
        assert hist.queue_wait_seconds == 0.25
        # Zero-byte or zero-second observations must not poison the EWMA.
        engine.observe_transfer(7, wire_bytes=0, seconds=1.0)
        assert engine.history(7).bandwidth_bps == pytest.approx(2000.0)

    def test_every_decision_emits_span_and_counter(self):
        obs.reset()
        obs.enable(process="test")
        try:
            engine = PolicyEngine("crossover")
            engine.plan(observed(0.2), ChannelCapabilities(
                kernel=True, delta=True))
            spans = [s for s in obs.get_tracer().spans()
                     if s.name == "policy.decide"]
            assert len(spans) == 1
            assert spans[0].attrs["mode"] == "delta"
            assert spans[0].attrs["reason"] == "delta"
            counters = obs.registry().snapshot()["counters"]
            key = ("policy.decisions{mode=delta,policy=crossover,"
                   "reason=delta}")
            assert counters[key] == 1.0
            assert engine.decisions == 1
        finally:
            obs.reset()


class TestResolveEngine:
    def test_none_resolves_to_default(self):
        assert resolve_engine(None).policy.name == "crossover"
        assert resolve_engine(None, default="adaptive").policy.name == \
            "adaptive"

    def test_names_resolve(self):
        for name, expected in [("adaptive", "adaptive"),
                               ("crossover", "crossover"),
                               ("full", "always_full"),
                               ("delta", "always_delta")]:
            assert resolve_engine(name).policy.name == expected

    def test_shared_engine_passes_through_identically(self):
        engine = PolicyEngine("adaptive")
        assert resolve_engine(engine) is engine

    def test_legacy_delta_policy_carries_its_crossover(self):
        engine = resolve_engine(DeltaPolicy(byte_crossover=0.25))
        assert isinstance(engine.policy, CrossoverPolicy)
        assert engine.policy.byte_crossover == 0.25

    def test_unknown_name_raises(self):
        with pytest.raises(PolicyError):
            resolve_policy("alternating")
        with pytest.raises(PolicyError):
            resolve_policy(3.14)
