"""Serialization/deserialization libraries (the paper's baselines).

Every library implements :class:`~repro.serial.base.Serializer` over the
simulated heap: it walks a real object graph, produces real bytes, and
charges simulated time according to its own mechanism — reflection for the
Java serializer, registered IDs + hand-written functions for Kryo.  Skyway's
drop-in adapter lives in :mod:`repro.core.adapter` and implements the same
interface.
"""

from repro.serial.base import (
    DeserializationStream,
    SerializationError,
    SerializationStream,
    Serializer,
)
from repro.serial.java_serializer import JavaSerializer
from repro.serial.kryo import KryoRegistrator, KryoSerializer, UnregisteredClassError
from repro.serial.schema_compiled import CycleError, SchemaCompiledSerializer

__all__ = [
    "Serializer",
    "SerializationStream",
    "DeserializationStream",
    "SerializationError",
    "JavaSerializer",
    "KryoSerializer",
    "KryoRegistrator",
    "UnregisteredClassError",
    "SchemaCompiledSerializer",
    "CycleError",
]
