"""Tests for the RDD engine: transformations, shuffle, serializer plugging."""

import pytest

from repro.core.adapter import SkywaySerializer
from repro.core.runtime import attach_skyway
from repro.jvm.jvm import JVM
from repro.net.cluster import Cluster
from repro.serial import JavaSerializer, KryoSerializer
from repro.spark.context import SparkConfig, SparkContext
from repro.spark.metrics import measure_job
from repro.spark.partitioner import HashPartitioner, stable_hash

from tests.conftest import sample_classpath


def make_cluster(workers: int = 3) -> Cluster:
    classpath = sample_classpath()
    return Cluster(lambda name: JVM(name, classpath=classpath),
                   worker_count=workers)


def make_context(serializer_name: str = "kryo", workers: int = 3,
                 partitions: int = 4) -> SparkContext:
    cluster = make_cluster(workers)
    if serializer_name == "java":
        serializer = JavaSerializer()
    elif serializer_name == "kryo":
        serializer = KryoSerializer(registration_required=False)
    elif serializer_name == "skyway":
        attach_skyway(cluster.driver.jvm, [w.jvm for w in cluster.workers],
                      cluster=cluster)
        serializer = SkywaySerializer()
    else:
        raise ValueError(serializer_name)
    return SparkContext(cluster, serializer, default_parallelism=partitions)


@pytest.fixture(params=["java", "kryo", "skyway"])
def sc(request):
    return make_context(request.param)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))

    def test_types_distinguished(self):
        assert stable_hash(1) != stable_hash("1")

    def test_partitioner_range(self):
        p = HashPartitioner(7)
        for key in ["x", 42, (1, "y"), None, 3.5, b"b", True]:
            assert 0 <= p.partition_of(key) < 7

    def test_unhashable_rejected(self):
        with pytest.raises(TypeError):
            stable_hash([1, 2])


class TestNarrowOps:
    def test_parallelize_collect(self, sc):
        data = list(range(20))
        assert sorted(sc.parallelize(data).collect()) == data

    def test_map_filter_pipeline(self, sc):
        result = (
            sc.parallelize(range(10))
            .map(lambda x: x * 2)
            .filter(lambda x: x % 4 == 0)
            .collect()
        )
        assert sorted(result) == [0, 4, 8, 12, 16]

    def test_flat_map(self, sc):
        result = sc.parallelize(["a b", "c"]).flat_map(str.split).collect()
        assert sorted(result) == ["a", "b", "c"]

    def test_count_and_reduce(self, sc):
        rdd = sc.parallelize(range(1, 11))
        assert rdd.count() == 10
        assert rdd.reduce(lambda a, b: a + b) == 55

    def test_union(self, sc):
        u = sc.parallelize([1, 2]).union(sc.parallelize([3]))
        assert sorted(u.collect()) == [1, 2, 3]


class TestWideOps:
    def test_reduce_by_key(self, sc):
        pairs = [("a", 1), ("b", 2), ("a", 3), ("b", 4), ("c", 5)]
        result = dict(sc.parallelize(pairs).reduce_by_key(lambda a, b: a + b).collect())
        assert result == {"a": 4, "b": 6, "c": 5}

    def test_group_by_key(self, sc):
        pairs = [(1, "x"), (2, "y"), (1, "z")]
        result = dict(sc.parallelize(pairs).group_by_key().collect())
        assert sorted(result[1]) == ["x", "z"]
        assert result[2] == ["y"]

    def test_distinct(self, sc):
        result = sc.parallelize([3, 1, 3, 2, 1, 1]).distinct().collect()
        assert sorted(result) == [1, 2, 3]

    def test_join(self, sc):
        left = sc.parallelize([("k", 1), ("k", 2), ("m", 9)])
        right = sc.parallelize([("k", "a"), ("n", "b")])
        result = sorted(left.join(right).collect())
        assert result == [("k", (1, "a")), ("k", (2, "a"))]

    def test_shuffle_preserves_rich_values(self, sc):
        pairs = [(i % 3, {"v": [i, float(i)], "t": (str(i), None)})
                 for i in range(12)]
        grouped = dict(sc.parallelize(pairs).group_by_key().collect())
        assert len(grouped) == 3
        total = sum(len(vs) for vs in grouped.values())
        assert total == 12
        assert all(isinstance(v, dict) for vs in grouped.values() for v in vs)

    def test_cache_avoids_recompute(self, sc):
        rdd = sc.parallelize(range(100)).map(lambda x: (x % 5, x)).reduce_by_key(
            lambda a, b: a + b).cache()
        first = sorted(rdd.collect())
        tasks_after_first = sc.tasks_run
        second = sorted(rdd.collect())
        assert first == second
        # Reduce partitions were cached; only cache hits afterwards.
        assert sc.tasks_run == tasks_after_first


class TestAccounting:
    def test_shuffle_writes_files_and_bytes(self):
        sc = make_context("kryo")
        _, metrics = measure_job(
            sc.cluster,
            lambda: sc.parallelize([(i % 4, i) for i in range(40)])
            .group_by_key().collect(),
            shuffle_bytes_source=lambda: sc.shuffle.bytes_shuffled,
        )
        assert metrics.shuffle_bytes > 0
        assert metrics.breakdown.serialization > 0
        assert metrics.breakdown.deserialization > 0
        assert metrics.breakdown.write_io > 0
        assert metrics.breakdown.read_io > 0
        assert metrics.breakdown.computation > 0

    def test_local_and_remote_bytes_tracked(self):
        sc = make_context("kryo", workers=3)
        _, metrics = measure_job(
            sc.cluster,
            lambda: sc.parallelize([(i, i) for i in range(60)], 6)
            .reduce_by_key(lambda a, b: a + b).collect(),
            shuffle_bytes_source=lambda: sc.shuffle.bytes_shuffled,
        )
        # With 6 partitions round-robin on 3 workers, most fetches cross
        # nodes but partition i's own bucket stays local.
        assert metrics.remote_bytes > 0
        assert metrics.local_bytes > 0

    def test_closure_serialization_happens(self):
        sc = make_context("kryo")
        sc.parallelize(range(10)).map(lambda x: x).collect()
        assert sc.closures.closures_shipped > 0

    def test_skyway_beats_java_on_shuffle_heavy_job(self):
        results = {}
        for name in ("java", "skyway"):
            sc = make_context(name)
            pairs = [(i % 10, (i, "payload", float(i))) for i in range(300)]
            _, metrics = measure_job(
                sc.cluster,
                lambda sc=sc, pairs=pairs: sc.parallelize(pairs)
                .group_by_key().collect(),
            )
            results[name] = metrics.breakdown
        assert (results["skyway"].serialization + results["skyway"].deserialization) < (
            results["java"].serialization + results["java"].deserialization
        )

    def test_skyway_sends_more_bytes_than_kryo(self):
        sizes = {}
        for name in ("kryo", "skyway"):
            sc = make_context(name)
            pairs = [(i % 10, (i, float(i))) for i in range(200)]
            sc.parallelize(pairs).group_by_key().collect()
            sizes[name] = sc.shuffle.bytes_shuffled
        assert sizes["skyway"] > sizes["kryo"]
