#!/usr/bin/env python
"""Heterogeneous clusters: transferring between different object formats.

Paper §3.1: "If the sender and receiver nodes have different JVM
specifications, Skyway adjusts the format of each object (e.g., header
size ...) when copying it into the output buffer.  This incurs an extra
cost only on the sender node while the receiver node pays no extra cost."

This example sends the same graph (a) between two Skyway-layout JVMs and
(b) from a Skyway-layout JVM to a JVM with 16-byte baseline headers, and
shows the re-formatted clone sizes and the sender-only conversion cost.

Run:  python examples/heterogeneous_cluster.py
"""

from repro.core.runtime import attach_skyway
from repro.core.streams import SkywayObjectInputStream, SkywayObjectOutputStream
from repro.heap.layout import BASELINE_LAYOUT, SKYWAY_LAYOUT
from repro.jvm.jvm import JVM
from repro.jvm.marshal import from_heap, to_heap
from repro.types.corelib import standard_classpath


PAYLOAD = {"readings": [1, 2, 3, 4, 5], "labels": ("hot", "cold"),
           "weights": [0.25, 0.75]}


def transfer(target_layout, receiver_layout, label: str) -> None:
    classpath = standard_classpath()
    sender = JVM("sender", classpath=classpath, layout=SKYWAY_LAYOUT)
    receiver = JVM("receiver", classpath=classpath, layout=receiver_layout)
    attach_skyway(sender, [receiver])

    addr = to_heap(sender, PAYLOAD)
    pin = sender.pin(addr)
    sender_before = sender.clock.total()
    receiver_before = receiver.clock.total()

    out = SkywayObjectOutputStream(
        sender.skyway, destination="peer", target_layout=target_layout
    )
    out.write_object(pin.address)
    wire = out.close()
    inp = SkywayObjectInputStream(receiver.skyway)
    inp.accept(wire)
    received = inp.read_object()

    assert from_heap(receiver, received) == PAYLOAD
    print(f"{label}:")
    print(f"  objects sent      : {out.sender.objects_sent}")
    print(f"  transferred bytes : {out.sender.bytes_sent}")
    print(f"  sender CPU (us)   : {(sender.clock.total() - sender_before) * 1e6:.2f}")
    print(f"  receiver CPU (us) : {(receiver.clock.total() - receiver_before) * 1e6:.2f}")
    print(f"  payload intact    : True\n")


def main() -> None:
    print("Same graph, homogeneous vs heterogeneous destination formats\n")
    transfer(SKYWAY_LAYOUT, SKYWAY_LAYOUT,
             "homogeneous (24-byte headers both sides)")
    transfer(BASELINE_LAYOUT, BASELINE_LAYOUT,
             "heterogeneous (receiver uses 16-byte headers; sender converts)")
    print("Note: the heterogeneous transfer ships fewer bytes (no baddr "
          "word per clone)\nand its extra conversion cost lands on the "
          "sender only (paper §3.1).")


if __name__ == "__main__":
    main()
