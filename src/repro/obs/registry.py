"""One metrics registry the existing ledgers feed.

Counters, gauges and histograms carry labels (encoded into the series key
Prometheus-style: ``name{k=v,...}``); *sources* are the bridge to the
ledgers that already exist — a registered callable is evaluated at
:meth:`MetricsRegistry.snapshot` time, so ``ExchangeMetrics.as_dict()``,
``TransportMetrics.as_dict()``, ``EventLog.as_dicts()`` and GC stats all
land in one JSON document without being rewritten.

Histograms are *streaming*: alongside count/sum/min/max each series keeps
per-bucket counts over the fixed geometric ladder
:data:`DEFAULT_BUCKET_BOUNDS`, so :meth:`snapshot` can answer p50/p95/p99
without retaining samples — the latency *tail* survives, not just the
mean.  Fixed bounds are what make the buckets deltable: the telemetry
plane (:mod:`repro.obs.live`) ships bucket-count deltas and the
coordinator re-aggregates fleet-wide quantiles by summing them.

Sources must deregister when their owner closes (channels do this in
``GraphChannel.close()``, clients in ``WorkerClient.close()``) so no entry
outlives the object it reads — the lifecycle mirror of the serializer's
``release_channel`` fix.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence


def series_key(name: str, labels: Mapping[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


#: The fixed bucket ladder every histogram shares: geometric, factor 2,
#: from 1 µs to ~17.9 min (values are unit-agnostic but the repo observes
#: seconds).  31 upper bounds + one overflow bucket.  Fixed fleet-wide so
#: bucket-count deltas from any worker sum into the same ladder.
DEFAULT_BUCKET_BOUNDS: Sequence[float] = tuple(
    1e-6 * (2.0 ** k) for k in range(31)
)


def quantile_from_buckets(hist: Mapping[str, Any], q: float,
                          bounds: Sequence[float] = DEFAULT_BUCKET_BOUNDS,
                          ) -> float:
    """Estimate the ``q``-quantile of one histogram dict (count/min/max +
    per-bucket counts) by linear interpolation inside the covering bucket,
    clamped to the observed min/max."""
    count = float(hist.get("count", 0.0))
    buckets = hist.get("buckets")
    lo_obs = float(hist.get("min", 0.0))
    hi_obs = float(hist.get("max", 0.0))
    if count <= 0:
        return 0.0
    if not buckets:
        # No bucket detail (a merged/legacy histogram): best effort.
        return lo_obs + (hi_obs - lo_obs) * q
    target = max(q, 0.0) * count
    cum = 0.0
    for i, c in enumerate(buckets):
        if c <= 0:
            continue
        prev = cum
        cum += c
        if cum >= target:
            lo = lo_obs if i == 0 else bounds[i - 1]
            hi = hi_obs if i >= len(bounds) else bounds[i]
            frac = 0.0 if c <= 0 else (target - prev) / c
            value = lo + (hi - lo) * frac
            return min(max(value, lo_obs), hi_obs)
    return hi_obs


class MetricsRegistry:
    """Thread-safe counters/gauges/histograms plus snapshot sources."""

    def __init__(self,
                 bucket_bounds: Sequence[float] = DEFAULT_BUCKET_BOUNDS,
                 ) -> None:
        self._lock = threading.Lock()
        self.bucket_bounds = tuple(bucket_bounds)
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Dict[str, Any]] = {}
        self._sources: Dict[str, Callable[[], Any]] = {}

    # -- series ------------------------------------------------------------

    def counter(self, name: str, value: float = 1.0, **labels: Any) -> None:
        key = series_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        key = series_key(name, labels)
        with self._lock:
            self._gauges[key] = float(value)

    def _bucket_index(self, value: float) -> int:
        # Linear scan beats bisect here: small values (the common case for
        # queue waits) exit within a few comparisons, and the ladder is
        # only 31 bounds long.
        for i, bound in enumerate(self.bucket_bounds):
            if value <= bound:
                return i
        return len(self.bucket_bounds)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        key = series_key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = {
                    "count": 0.0, "sum": 0.0,
                    "min": float("inf"), "max": float("-inf"),
                    "buckets": [0] * (len(self.bucket_bounds) + 1),
                }
            hist["count"] += 1
            hist["sum"] += value
            hist["min"] = min(hist["min"], value)
            hist["max"] = max(hist["max"], value)
            hist["buckets"][self._bucket_index(value)] += 1

    # -- sources -----------------------------------------------------------

    def register_source(self, name: str, source: Callable[[], Any]) -> None:
        with self._lock:
            self._sources[name] = source

    def deregister_source(self, name: str) -> None:
        with self._lock:
            self._sources.pop(name, None)

    def source_names(self) -> List[str]:
        with self._lock:
            return sorted(self._sources)

    # -- lifecycle ---------------------------------------------------------

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._sources.clear()

    # -- reading -----------------------------------------------------------

    def _histogram_view(self, hist: Mapping[str, Any]) -> Dict[str, Any]:
        view = {
            "count": hist["count"], "sum": hist["sum"],
            "min": hist["min"], "max": hist["max"],
            "buckets": list(hist["buckets"]),
        }
        for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            view[label] = quantile_from_buckets(hist, q, self.bucket_bounds)
        return view

    def snapshot(self) -> Dict[str, Any]:
        """Evaluate every source and copy every series.  A source that
        raises reports its error in place — one broken ledger must not
        take the snapshot down."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = {k: self._histogram_view(v)
                          for k, v in self._histograms.items()}
            sources = list(self._sources.items())
        resolved: Dict[str, Any] = {}
        for name, fn in sources:
            try:
                resolved[name] = fn()
            except Exception as exc:  # noqa: BLE001 - reported, not raised
                resolved[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "sources": resolved,
        }


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry every layer feeds."""
    return _REGISTRY
