"""Smoke tests: every example script must run end-to-end.

Examples are part of the public deliverable; these tests import each
script's ``main`` and run it (fast paths), asserting on key output lines.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "Received Date [year=2018 month=3 day=24]" in out
        assert "YES" in out  # hashcode preserved

    def test_heterogeneous_cluster(self, capsys):
        load_example("heterogeneous_cluster").main()
        out = capsys.readouterr().out
        assert "homogeneous" in out and "heterogeneous" in out
        assert "payload intact    : True" in out

    def test_jsbs_shootout_quick(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["jsbs_shootout.py", "--quick"])
        load_example("jsbs_shootout").main()
        out = capsys.readouterr().out
        assert "skyway" in out
        assert "slower than Skyway" in out

    def test_memory_pressure(self, capsys):
        load_example("memory_pressure").main()
        out = capsys.readouterr().out
        assert "reclaimed" in out
        assert "2 buffers still retained" in out

    def test_figure2_date_parsing(self, capsys):
        load_example("figure2_date_parsing").main()
        out = capsys.readouterr().out
        assert "parsed 240 date strings" in out
        assert "closures shipped" in out

    def test_delta_pagerank(self, capsys):
        load_example("delta_pagerank").main()
        out = capsys.readouterr().out
        assert "bootstrap" in out and "delta" in out
        assert "automatic fallback" in out
        assert "rank vectors identical on 2 workers: True" in out

    @pytest.mark.slow
    def test_spark_pagerank(self, capsys):
        load_example("spark_pagerank").main()
        out = capsys.readouterr().out
        assert "PageRank" in out and "skyway" in out

    @pytest.mark.slow
    def test_flink_queries(self, capsys):
        load_example("flink_queries").main()
        out = capsys.readouterr().out
        assert "QA" in out and "Skyway" in out
