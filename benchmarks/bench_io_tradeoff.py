"""A-IO — the paper's §1 design-tradeoff claim, quantified.

"transferring 50% of more data ... in Spark for a real graph dataset
increases the execution by only 4% (on network and read I/O) whereas the
savings achieved by eliminating the S/D invocations are beyond 20%."

The bench runs the same shuffle-heavy job under Kryo and Skyway and splits
the delta into (a) extra I/O time caused by Skyway's larger byte images and
(b) CPU time saved by eliminating S/D work, expressing both as fractions of
the baseline runtime.
"""

from repro.bench.report import format_kv_section
from repro.bench.spark_experiments import run_spark_app

from conftest import bench_scale, publish


def test_io_tradeoff(benchmark):
    scale = bench_scale(0.02)

    def run():
        return {name: run_spark_app("PR", "LJ", name, scale=scale,
                                    pr_iterations=3)
                for name in ("java", "skyway")}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    base = results["java"].breakdown
    sky = results["skyway"].breakdown
    extra_bytes_frac = sky.bytes_written / base.bytes_written - 1.0
    io_penalty = (
        (sky.read_io + sky.write_io) - (base.read_io + base.write_io)
    ) / base.total
    sd_savings = (
        (base.serialization + base.deserialization)
        - (sky.serialization + sky.deserialization)
    ) / base.total

    publish("io_tradeoff", format_kv_section(
        "S/D savings vs extra-byte I/O cost (paper §1: +50% data -> +4% "
        "I/O time, >20% S/D savings vs the Java serializer)",
        {
            "extra bytes shipped by Skyway": f"{extra_bytes_frac:+.1%}",
            "I/O time penalty (fraction of baseline runtime)": f"{io_penalty:+.1%}",
            "S/D time savings (fraction of baseline runtime)": f"{sd_savings:+.1%}",
            "net effect": f"{sd_savings - io_penalty:+.1%}",
        },
    ))

    # The tradeoff the paper bets on: S/D savings (vs the full-S/D Java
    # baseline) far exceed the extra-byte I/O penalty.  Skyway's byte count
    # lands near the Java serializer's (paper Table 2: 1.15x geomean), so
    # the byte delta itself can be small; the penalty bound is what matters.
    assert extra_bytes_frac > -0.10
    assert io_penalty < 0.10
    assert sd_savings > 0.10
    assert sd_savings > 2 * max(io_penalty, 0.0)
    benchmark.extra_info["net_effect"] = round(sd_savings - io_penalty, 4)
