"""Tests for the engine event log (task/shuffle/cache introspection)."""

import json
import threading

import pytest

from repro.spark.events import EventLog
from tests.test_spark_engine import make_context


class TestEventLog:
    def test_tasks_recorded_with_placement(self):
        sc = make_context("kryo", workers=3, partitions=6)
        sc.parallelize(range(60), 6).map(lambda x: x).collect()
        tasks = sc.events.of_kind("task")
        assert tasks, "tasks must be logged"
        by_node = sc.events.task_counts_by_node()
        # 6 partitions round-robin over 3 workers: every worker ran tasks.
        assert set(by_node) == {"worker-0", "worker-1", "worker-2"}

    def test_shuffle_fanout_accounting(self):
        sc = make_context("kryo", workers=3, partitions=4)
        sc.parallelize([(i % 5, i) for i in range(40)], 4) \
            .reduce_by_key(lambda a, b: a + b).collect()
        writes = sc.events.of_kind("shuffle_write")
        assert writes
        shuffle_id = writes[0]["shuffle_id"]
        fanout = sc.events.shuffle_fanout(shuffle_id)
        # 4 map partitions x 4 reduce partitions.
        assert fanout["files_written"] == 16
        assert fanout["fetches"] == 16
        assert 0 < fanout["remote_fetches"] < 16
        assert fanout["bytes_written"] > 0

    def test_cache_hits_logged(self):
        sc = make_context("kryo")
        rdd = sc.parallelize(range(10)).map(lambda x: x).cache()
        rdd.collect()
        assert sc.events.of_kind("cache_hit") == []
        rdd.collect()
        assert len(sc.events.of_kind("cache_hit")) == rdd.num_partitions

    def test_render_truncates(self):
        sc = make_context("kryo")
        sc.parallelize(range(40), 4).map(lambda x: x).collect()
        text = sc.events.render(limit=3)
        assert "more" in text
        assert "task" in text

    def test_clear(self):
        sc = make_context("kryo")
        sc.parallelize(range(4)).collect()
        assert len(sc.events) > 0
        sc.events.clear()
        assert len(sc.events) == 0


class TestEventLogThreadSafety:
    def test_concurrent_emit_loses_nothing(self):
        log = EventLog()

        def emit_many(worker: int):
            for i in range(500):
                log.emit("task", node=f"n{worker}", seq=i)

        threads = [threading.Thread(target=emit_many, args=(k,))
                   for k in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(log) == 4000
        assert len(log.of_kind("task")) == 4000
        assert log.task_counts_by_node() == {f"n{k}": 500 for k in range(8)}

    def test_iteration_is_a_snapshot(self):
        log = EventLog()
        for i in range(10):
            log.emit("seed", seq=i)
        # Emitting while iterating must neither raise nor feed the loop.
        for _ in log:
            log.emit("during")
        assert len(log.of_kind("during")) == 10

    def test_as_dicts_is_json_safe(self):
        log = EventLog()
        log.emit("task", node="worker-0", bytes=3)
        dicts = log.as_dicts()
        assert dicts == [
            {"kind": "task", "details": {"node": "worker-0", "bytes": 3}}
        ]
        json.dumps(dicts)
        # Detached: mutating the export must not touch the log.
        dicts[0]["details"]["node"] = "elsewhere"
        assert log.of_kind("task")[0]["node"] == "worker-0"
