"""Card table for the old generation.

The Parallel Scavenge collector (the default in OpenJDK 8, which the paper
modifies) finds old→young pointers via a card table: the old generation is
divided into fixed-size cards and a card is dirtied whenever a reference is
stored into it.  Skyway's receiver must "update the card table appropriately
to represent new pointers generated from each data transfer" (paper §4.3) —
that call site is :meth:`mark_range`.

Dirty cards are kept as a set of card indices, not a byte-per-card array:
every consumer (the minor-GC scan, the delta tracker's epoch diff, the
undo-log snapshot) walks *dirty* cards, so all operations cost O(dirty)
rather than O(heap size / card size) — the difference between a delta
epoch costing proportional to its mutations and costing a full-heap scan.
A real JVM keeps the byte array for its write-barrier store; here the
barrier is already a method call, so the sparse form is strictly better.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, Tuple


class CardTable:
    """Dirty-card tracking over ``[start, end)`` with fixed-size cards."""

    def __init__(self, start: int, end: int, card_size: int = 512) -> None:
        if card_size <= 0 or card_size & (card_size - 1):
            raise ValueError(f"card size must be a power of two: {card_size}")
        if end < start:
            raise ValueError("end before start")
        self.start = start
        self.end = end
        self.card_size = card_size
        self._dirty: set = set()
        self.marks = 0

    def _card_count(self) -> int:
        span = self.end - self.start
        return (span + self.card_size - 1) // self.card_size

    def card_index(self, address: int) -> int:
        if not self.start <= address < self.end:
            raise ValueError(f"address {address:#x} outside card-table span")
        return (address - self.start) // self.card_size

    def mark(self, address: int) -> None:
        """Dirty the card containing ``address``."""
        self._dirty.add(self.card_index(address))
        self.marks += 1

    def mark_range(self, address: int, nbytes: int) -> None:
        """Dirty every card overlapping ``[address, address + nbytes)`` —
        the receive-side bulk update for a freshly filled input buffer."""
        if nbytes <= 0:
            return
        first = self.card_index(address)
        last = self.card_index(min(address + nbytes - 1, self.end - 1))
        self._dirty.update(range(first, last + 1))
        self.marks += last - first + 1

    def is_dirty(self, address: int) -> bool:
        return self.card_index(address) in self._dirty

    def dirty_ranges(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(start_address, end_address)`` for each maximal run of
        dirty cards."""
        run_start = run_end = None
        for i in sorted(self._dirty):
            if run_start is None:
                run_start = run_end = i
            elif i == run_end + 1:
                run_end = i
            else:
                yield self._range_of(run_start, run_end)
                run_start = run_end = i
        if run_start is not None:
            yield self._range_of(run_start, run_end)

    def _range_of(self, first: int, last: int) -> Tuple[int, int]:
        return (
            self.start + first * self.card_size,
            min(self.start + (last + 1) * self.card_size, self.end),
        )

    def clear(self) -> None:
        self._dirty.clear()

    def snapshot(self) -> FrozenSet[int]:
        """The dirty set as an immutable value (the GC undo log's card
        checkpoint); O(dirty cards), not O(heap)."""
        return frozenset(self._dirty)

    def restore(self, snapshot: FrozenSet[int]) -> None:
        """Reset the dirty set to an earlier :meth:`snapshot`."""
        self._dirty = set(snapshot)

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)
