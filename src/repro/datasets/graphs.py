"""Synthetic power-law graphs matching the paper's Table 1 inputs.

=============  =======  =========  ===================
Graph          #Edges   #Vertices  Description
=============  =======  =========  ===================
LiveJournal    69M      4.8M       Social network
Orkut          117M     3M         Social network
UK-2005        936M     39.5M      Web graph
Twitter-2010   1.5B     41.6M      Social network
=============  =======  =========  ===================

Each profile keeps the published edge/vertex ratio and a degree-skew
exponent typical of its graph class; the generator is a Chung–Lu style
expected-degree model, so degree skew (what drives shuffle imbalance and
triangle counts) is preserved while total size scales down by
``profile.scale_down`` (documented per graph and identical across all
serializers, keeping normalized comparisons valid).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Tuple


@dataclasses.dataclass(frozen=True)
class GraphProfile:
    """One of the paper's input graphs, plus its reproduction scale."""

    key: str
    name: str
    description: str
    paper_vertices: int
    paper_edges: int
    #: Linear scale-down factor applied to vertices for this reproduction.
    scale_down: int
    #: Power-law exponent for the expected-degree sequence.
    skew: float

    @property
    def vertices(self) -> int:
        return max(64, self.paper_vertices // self.scale_down)

    @property
    def edges(self) -> int:
        # Preserve the average degree of the original graph.
        avg_degree = self.paper_edges / self.paper_vertices
        return int(self.vertices * avg_degree)


#: The four Table 1 graphs.  scale_down values put each run at laptop scale
#: while keeping LJ < OR < UK < TW in relative size, as in the paper.
GRAPH_PROFILES: Dict[str, GraphProfile] = {
    "LJ": GraphProfile(
        key="LJ", name="LiveJournal", description="Social network",
        paper_vertices=4_800_000, paper_edges=69_000_000,
        scale_down=4_000, skew=2.35,
    ),
    "OR": GraphProfile(
        key="OR", name="Orkut", description="Social network",
        paper_vertices=3_000_000, paper_edges=117_000_000,
        scale_down=2_400, skew=2.25,
    ),
    "UK": GraphProfile(
        key="UK", name="UK-2005", description="Web graph",
        paper_vertices=39_500_000, paper_edges=936_000_000,
        scale_down=18_000, skew=1.95,
    ),
    "TW": GraphProfile(
        key="TW", name="Twitter-2010", description="Social network",
        paper_vertices=41_600_000, paper_edges=1_500_000_000,
        scale_down=16_000, skew=2.0,
    ),
}


def generate_graph(
    profile: GraphProfile, seed: int = 42, scale: float = 1.0
) -> List[Tuple[int, int]]:
    """A deterministic Chung–Lu style edge list for ``profile``.

    ``scale`` further multiplies the vertex count (benchmarks use < 1.0 for
    quick runs); the degree distribution's shape is scale-free.
    Self-loops are dropped; duplicate edges are kept (real edge lists have
    them after sampling, and ``distinct()`` in the workloads must do work).
    """
    rng = random.Random(seed ^ hash(profile.key))
    n = max(32, int(profile.vertices * scale))
    m = max(n, int(profile.edges * scale))

    # Expected-degree weights w_i ~ i^(-1/(skew-1)) (Zipf-like ranking).
    exponent = 1.0 / (profile.skew - 1.0)
    weights = [(i + 1) ** (-exponent) for i in range(n)]
    total = sum(weights)
    cumulative: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc / total)

    import bisect

    def sample_vertex() -> int:
        return bisect.bisect_left(cumulative, rng.random())

    edges: List[Tuple[int, int]] = []
    while len(edges) < m:
        u, v = sample_vertex(), sample_vertex()
        if u == v:
            continue
        edges.append((u, v))
    return edges


def degree_distribution(edges: List[Tuple[int, int]]) -> Dict[int, int]:
    degrees: Dict[int, int] = {}
    for u, v in edges:
        degrees[u] = degrees.get(u, 0) + 1
        degrees[v] = degrees.get(v, 0) + 1
    return degrees


def table1_rows(scale: float = 1.0) -> List[Dict[str, object]]:
    """The Table 1 reproduction: paper sizes plus generated sizes."""
    rows = []
    for profile in GRAPH_PROFILES.values():
        edges = generate_graph(profile, scale=scale)
        vertices = len({v for e in edges for v in e})
        rows.append(
            {
                "graph": profile.name,
                "paper_edges": profile.paper_edges,
                "paper_vertices": profile.paper_vertices,
                "description": profile.description,
                "generated_edges": len(edges),
                "generated_vertices": vertices,
                "scale_down": profile.scale_down,
            }
        )
    return rows
