"""The exchange layer on its in-process substrate: capability negotiation,
full→delta epochs with receiver-value checks, the unified metrics snapshot,
in-process NACK recovery, and the serializer adapter's channel lifecycle."""

import json

import pytest

from repro.core.adapter import SkywaySerializer
from repro.core.runtime import attach_skyway
from repro.exchange import (
    ChannelCapabilities,
    Exchange,
    ExchangeConfigError,
    ExchangeError,
    LOOPBACK_OFFER,
    LoopbackGraphChannel,
    SOCKET_OFFER,
)
from repro.jvm.jvm import JVM
from repro.net.cluster import Cluster

from tests.conftest import make_list, read_list, sample_classpath


def make_cluster(workers: int = 1) -> Cluster:
    classpath = sample_classpath()
    cluster = Cluster(lambda name: JVM(name, classpath=classpath),
                      worker_count=workers)
    attach_skyway(cluster.driver.jvm, [w.jvm for w in cluster.workers],
                  cluster=cluster)
    return cluster


class TestCapabilities:
    def test_intersect_ands_booleans_and_clamps_streams(self):
        requested = ChannelCapabilities(kernel=True, delta=True,
                                        compact_headers=True,
                                        parallel_streams=8)
        granted = requested.intersect(SOCKET_OFFER)
        assert granted.kernel and granted.delta
        assert not granted.compact_headers  # socket never offers it
        assert granted.parallel_streams == 8
        assert requested.intersect(
            ChannelCapabilities(parallel_streams=0)
        ).parallel_streams == 1

    def test_delta_wins_over_compact_headers(self):
        # Both granted by the loopback offer, but PATCH records address
        # the uncompacted layout: the grant keeps both, and the per-epoch
        # plan clamp drops compact — delta wins where it matters.
        cluster = make_cluster()
        channel = Exchange.loopback(cluster).channel_to(
            cluster.workers[0].name,
            requested=ChannelCapabilities(kernel=True, delta=True,
                                          compact_headers=True),
        )
        assert channel.capabilities.delta
        assert channel.capabilities.compact_headers  # the grant survives
        assert LOOPBACK_OFFER.compact_headers  # the offer did include it
        head = make_list(cluster.driver.jvm, range(10))
        receipt = channel.send([head])
        assert receipt.plan is not None
        assert not receipt.plan.compact_headers
        assert receipt.mode == "full"

    def test_declining_delta_forces_full_epochs(self):
        cluster = make_cluster()
        channel = Exchange.loopback(cluster).channel_to(
            cluster.workers[0].name,
            requested=ChannelCapabilities(kernel=True, delta=False),
        )
        head = make_list(cluster.driver.jvm, range(10))
        for _ in range(2):
            receipt = channel.send([head])
            assert receipt.mode == "full"
        assert channel.last_decision.reason == "delta_disabled"
        assert channel.stats.fallbacks == {}  # configured, not a reversion


class TestLoopbackEpochs:
    def test_full_then_delta_with_receiver_values(self):
        cluster = make_cluster()
        driver = cluster.driver.jvm
        worker = cluster.workers[0]
        exchange = Exchange.loopback(cluster)
        channel = exchange.channel_to(worker.name)

        head = make_list(driver, range(20))
        pin = driver.pin(head)
        first = channel.send([head], digest=True)
        assert first.mode == "full" and first.epoch == 1
        assert read_list(worker.jvm, first.roots[0]) == list(range(20))

        driver.set_field(head, "payload", 999)
        second = channel.send([head], digest=True)
        assert second.mode == "delta" and second.epoch == 2
        # Patch-in-place: same receiver root, new value.
        assert second.roots == first.roots
        assert read_list(worker.jvm, second.roots[0])[0] == 999
        assert second.wire_bytes < first.wire_bytes
        assert second.digest != first.digest
        assert second.digest == channel.receiver_digest(second.roots)
        driver.unpin(pin)

    def test_send_after_close_is_typed(self):
        cluster = make_cluster()
        channel = Exchange.loopback(cluster).channel_to(
            cluster.workers[0].name)
        channel.close()
        with pytest.raises(ExchangeError, match="closed"):
            channel.send([1])

    def test_empty_roots_rejected(self):
        cluster = make_cluster()
        channel = Exchange.loopback(cluster).channel_to(
            cluster.workers[0].name)
        with pytest.raises(ExchangeError, match="at least one root"):
            channel.send([])

    def test_unbound_channel_has_no_receiver_digest(self):
        cluster = make_cluster()
        runtime = cluster.driver.jvm.skyway
        channel = LoopbackGraphChannel(runtime, destination="nowhere")
        head = make_list(cluster.driver.jvm, range(3))
        receipt = channel.send([head])
        assert receipt.roots == ()  # frames only; nothing delivered
        with pytest.raises(ExchangeConfigError, match="no receiver"):
            channel.receiver_digest([head])


class TestNackRecovery:
    def test_receiver_full_gc_recovers_inside_one_send(self):
        cluster = make_cluster()
        driver = cluster.driver.jvm
        worker = cluster.workers[0]
        channel = Exchange.loopback(cluster).channel_to(worker.name)

        head = make_list(driver, range(15))
        pin = driver.pin(head)
        channel.send([head])
        driver.set_field(head, "payload", 111)
        channel.send([head])  # a delta epoch, to prove deltas worked

        # Compaction voids the retained chunk addresses: the next delta
        # draws the in-process NACK and must converge via a forced FULL.
        driver.set_field(head, "payload", 222)
        worker.jvm.gc.full()
        receipt = channel.send([head], digest=True)
        assert receipt.nack_recovered
        assert receipt.mode == "full"
        assert channel.nack_recoveries == 1
        assert read_list(worker.jvm, receipt.roots[0])[0] == 222

        # And the channel is healthy again: the next epoch is a delta.
        driver.set_field(head, "payload", 333)
        after = channel.send([head])
        assert after.mode == "delta" and not after.nack_recovered
        assert read_list(worker.jvm, after.roots[0])[0] == 333
        driver.unpin(pin)


class TestExchangeMetrics:
    def test_snapshot_merges_all_three_ledgers(self):
        cluster = make_cluster()
        driver = cluster.driver.jvm
        channel = Exchange.loopback(cluster).channel_to(
            cluster.workers[0].name)
        head = make_list(driver, range(12))
        pin = driver.pin(head)
        channel.send([head])
        driver.set_field(head, "payload", 5)
        channel.send([head])
        driver.unpin(pin)

        snap = channel.metrics()
        d = snap.as_dict()
        assert d["substrate"] == "loopback"
        assert d["sends"] == 2
        assert d["wire_bytes"] == channel.wire_bytes
        assert d["capabilities"]["delta"] is True
        assert d["delta"]["full_sends"] == 1
        assert d["delta"]["delta_sends"] == 1
        assert d["transport"] is None  # no wire on this substrate
        assert d["breakdown"]["serialization"] > 0
        assert json.loads(snap.to_json()) == d

    def test_exchange_transfer_blob_rides_the_simulated_wire(self):
        cluster = make_cluster()
        exchange = Exchange.loopback(cluster)
        worker = cluster.workers[0]
        exchange.transfer_blob(cluster.driver, worker, b"x" * 123)
        assert worker.remote_bytes_fetched == 123
        with pytest.raises(ExchangeConfigError, match="no socket worker"):
            exchange.client_for(worker.name)


class TestSerializerChannelLifecycle:
    def test_release_channel_detaches_the_card_table(self):
        cluster = make_cluster()
        driver = cluster.driver.jvm
        serializer = SkywaySerializer(delta=True)
        stream = serializer.new_stream(driver)
        stream.write_object(make_list(driver, range(4)))
        stream.close()
        tracker = driver.heap.delta_tracker
        before = tracker.table_count
        serializer.release_channel(driver)
        assert tracker.table_count == before - 1
        # The key starts fresh afterwards: first epoch is FULL again.
        stream = serializer.new_stream(driver)
        stream.write_object(make_list(driver, range(4)))
        stream.close()
        assert serializer.channel_for(driver).last_decision.reason == \
            "first_epoch"
        serializer.close()
        assert tracker.table_count == before - 1
        assert serializer._channels == {}

    def test_distinct_channel_keys_are_independent(self):
        cluster = make_cluster()
        driver = cluster.driver.jvm
        serializer = SkywaySerializer(delta=True)
        a = serializer.channel_for(driver, "a")
        b = serializer.channel_for(driver, "b")
        assert a is not b
        assert a is serializer.channel_for(driver, "a")
        serializer.close()
