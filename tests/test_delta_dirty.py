"""Tests for the delta write barrier and per-channel card tables."""

import pytest

from repro.delta.dirty import DELTA_CARD_SIZE, DeltaTracker

from tests.conftest import make_list


@pytest.fixture
def tracker(jvm):
    return DeltaTracker.attach(jvm.heap)


class TestAttach:
    def test_attach_is_idempotent(self, jvm):
        first = DeltaTracker.attach(jvm.heap)
        assert DeltaTracker.attach(jvm.heap) is first
        assert jvm.heap.delta_tracker is first

    def test_barrier_registered_once(self, jvm):
        DeltaTracker.attach(jvm.heap)
        DeltaTracker.attach(jvm.heap)
        assert len(jvm.heap.mutation_listeners) == 1


class TestBarrier:
    def test_reference_write_marks_table(self, jvm, tracker):
        table = tracker.new_table()
        a = jvm.new_instance("ListNode")
        b = jvm.new_instance("ListNode")
        table.clear()
        jvm.set_field(a, "next", b)
        assert table.is_dirty(a)

    def test_primitive_write_marks_table(self, jvm, tracker):
        """Unlike the GC barrier, delta tracks *all* writes: a mutated
        primitive field must reship the object."""
        table = tracker.new_table()
        node = jvm.new_instance("ListNode")
        table.clear()
        jvm.set_field(node, "payload", 7)
        assert table.is_dirty(node)

    def test_array_element_write_marks_table(self, jvm, tracker):
        table = tracker.new_table()
        arr = jvm.new_array("J", 64)
        table.clear()
        jvm.heap.write_element(arr, 63, 5)
        # The write landed at the element's slot, not the array start.
        offset = jvm.heap.element_offset(jvm.klass_of(arr), 63)
        assert table.is_dirty(arr + offset)

    def test_raw_word_write_bypasses_barrier(self, jvm, tracker):
        """GC relocation and receiver placement use raw writes; they must
        not pollute the delta dirty set."""
        table = tracker.new_table()
        node = jvm.new_instance("ListNode")
        table.clear()
        seen = tracker.writes_seen
        jvm.heap.write_word(node, 0)
        assert tracker.writes_seen == seen
        assert table.dirty_count == 0

    def test_writes_seen_counts_all_writes(self, jvm, tracker):
        before = tracker.writes_seen
        make_list(jvm, range(10))  # 2 field writes per node
        assert tracker.writes_seen >= before + 20


class TestPerChannelTables:
    def test_each_table_sees_every_write(self, jvm, tracker):
        t1, t2 = tracker.new_table(), tracker.new_table()
        node = jvm.new_instance("ListNode")
        t1.clear()
        t2.clear()
        jvm.set_field(node, "payload", 1)
        assert t1.is_dirty(node) and t2.is_dirty(node)

    def test_clearing_one_table_keeps_anothers_dirt(self, jvm, tracker):
        t1, t2 = tracker.new_table(), tracker.new_table()
        node = jvm.new_instance("ListNode")
        jvm.set_field(node, "payload", 1)
        t1.clear()
        assert not t1.is_dirty(node)
        assert t2.is_dirty(node)

    def test_release_table_stops_marking(self, jvm, tracker):
        table = tracker.new_table()
        count = tracker.table_count
        tracker.release_table(table)
        assert tracker.table_count == count - 1
        node = jvm.new_instance("ListNode")
        table.clear()
        jvm.set_field(node, "payload", 1)
        assert table.dirty_count == 0

    def test_delta_cards_finer_than_gc_cards(self, jvm, tracker):
        table = tracker.new_table()
        assert table.card_size == DELTA_CARD_SIZE
        assert table.card_size < jvm.heap.card_table.card_size
