"""The serializer interface all S/D libraries (and Skyway) implement.

Two granularities, matching how Spark uses serializers:

* one-shot: ``serialize(jvm, root) -> bytes`` / ``deserialize(jvm, data)``;
* streaming: ``new_stream(jvm)`` returning a :class:`SerializationStream`
  that accepts many root objects (shuffle records) into one file, and
  ``new_reader(jvm, data)`` returning a :class:`DeserializationStream`.

Implementations charge the owning JVM's clock under whatever category the
caller pushed (engines wrap calls in ``clock.phase(SERIALIZATION)`` /
``phase(DESERIALIZATION)``), so one serializer works for closure transfer,
shuffle files, and the JSBS harness alike.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Optional

from repro.jvm.jvm import JVM
from repro.net.streams import ByteInputStream, ByteOutputStream


class SerializationError(RuntimeError):
    pass


class Serializer(abc.ABC):
    """One S/D library."""

    #: Short name used in reports ("java", "kryo", "skyway", ...).
    name: str = "abstract"

    @abc.abstractmethod
    def new_stream(self, jvm: JVM, thread_id: int = 0) -> "SerializationStream":
        """A fresh output stream bound to the sender JVM.

        ``thread_id`` identifies the sending thread for serializers with
        per-thread state (Skyway's per-thread output buffers and baddr
        ownership, paper §4.2); stateless serializers ignore it.
        """

    @abc.abstractmethod
    def new_reader(self, jvm: JVM, data: bytes) -> "DeserializationStream":
        """A reader over ``data`` bound to the receiver JVM."""

    # -- one-shot convenience ------------------------------------------------

    def serialize(self, jvm: JVM, root: int) -> bytes:
        stream = self.new_stream(jvm)
        stream.write_object(root)
        return stream.close()

    def deserialize(self, jvm: JVM, data: bytes) -> int:
        reader = self.new_reader(jvm, data)
        try:
            root = reader.read_object()
        finally:
            reader.close()
        return root

    def serialize_many(self, jvm: JVM, roots: Iterable[int]) -> bytes:
        stream = self.new_stream(jvm)
        for root in roots:
            stream.write_object(root)
        return stream.close()

    def deserialize_all(self, jvm: JVM, data: bytes) -> List[int]:
        reader = self.new_reader(jvm, data)
        out: List[int] = []
        try:
            while reader.has_next():
                out.append(reader.read_object())
        finally:
            reader.close()
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name})"


class SerializationStream(abc.ABC):
    """Stateful writer for a sequence of root objects (one shuffle file)."""

    @abc.abstractmethod
    def write_object(self, root: int) -> None:
        ...

    @abc.abstractmethod
    def close(self) -> bytes:
        """Finish and return the encoded bytes."""

    @property
    @abc.abstractmethod
    def bytes_written(self) -> int:
        ...


class DeserializationStream(abc.ABC):
    """Stateful reader yielding root objects.

    Implementations pin every object they hand out until :meth:`close`, so
    the caller can safely allocate (and trigger GC) between reads as long
    as it re-pins what it keeps.
    """

    @abc.abstractmethod
    def read_object(self) -> int:
        ...

    @abc.abstractmethod
    def has_next(self) -> bool:
        ...

    def close(self) -> None:
        """Release any pins held on behalf of the caller."""


# -- primitive codec helpers shared by byte-oriented serializers -------------

def write_primitive(out: ByteOutputStream, descriptor: str, value) -> int:
    """Encode one primitive; returns encoded size in bytes."""
    if descriptor == "Z":
        out.write_u8(1 if value else 0)
        return 1
    if descriptor == "B":
        out.write_u8(value & 0xFF)
        return 1
    if descriptor in ("C", "S"):
        out.write_u16(value & 0xFFFF)
        return 2
    if descriptor == "I":
        out.write_i32(value)
        return 4
    if descriptor == "J":
        out.write_i64(value)
        return 8
    if descriptor == "F":
        out.write_f32(value)
        return 4
    if descriptor == "D":
        out.write_f64(value)
        return 8
    raise SerializationError(f"not a primitive descriptor: {descriptor}")


def read_primitive(inp: ByteInputStream, descriptor: str):
    if descriptor == "Z":
        return inp.read_u8()
    if descriptor == "B":
        v = inp.read_u8()
        return v - 256 if v >= 128 else v
    if descriptor == "C":
        return inp.read_u16()
    if descriptor == "S":
        v = inp.read_u16()
        return v - 65536 if v >= 32768 else v
    if descriptor == "I":
        return inp.read_i32()
    if descriptor == "J":
        return inp.read_i64()
    if descriptor == "F":
        return inp.read_f32()
    if descriptor == "D":
        return inp.read_f64()
    raise SerializationError(f"not a primitive descriptor: {descriptor}")
