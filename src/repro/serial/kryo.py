"""The Kryo serializer model.

Reproduces Kryo's mechanism as the paper describes it (§1, §2.1):

* developers **manually register** classes in a consistent order across all
  nodes, turning types into small integer IDs — the stream carries no type
  strings;
* developers provide (or Kryo generates) per-class read/write functions; no
  reflection is paid per field, but one S/D *function invocation* per
  object and one generated accessor call per field remain — "the
  user-defined functions need to be invoked for every transferred object
  at both the sender side and the receiver side";
* on deserialization objects are created with plain ``new`` (a generated
  ``switch`` over IDs) — cheap — but hash structures must still be rebuilt
  entry by entry.

Unregistered classes raise by default, matching Spark's
``spark.kryo.registrationRequired``; with ``registration_required=False``
Kryo falls back to writing the class-name string (its real behavior).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.heap.handles import Handle
from repro.heap.heap import NULL
from repro.jvm.collections import HashMapOps
from repro.jvm.jvm import JVM
from repro.net.streams import ByteInputStream, ByteOutputStream
from repro.serial.base import (
    DeserializationStream,
    SerializationError,
    SerializationStream,
    Serializer,
    read_primitive,
    write_primitive,
)
from repro.types import corelib, descriptors

_ID_NULL = 0
_ID_BACKREF = 1
_ID_UNREGISTERED = 2
_ID_BASE = 3  # registered class ids start here on the wire


class UnregisteredClassError(SerializationError):
    pass


class KryoRegistrator:
    """The class registry the developer must maintain (paper §2.1's
    ``MyRegistrator``).  Registration order defines the integer IDs, so it
    must be identical on every node — the registrator object is shared by
    construction here, exactly like shipping the same jar everywhere."""

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self._names: List[str] = []
        # Kryo pre-registers primitives/boxes/String and arrays of them.
        for name in (
            corelib.STRING, corelib.INTEGER, corelib.LONG, corelib.DOUBLE,
            corelib.BOOLEAN, "java.lang.Number", corelib.HASHMAP,
            corelib.HASHMAP_NODE, corelib.ARRAYLIST, corelib.HASHSET,
            corelib.LONGSET, corelib.DOUBLESET,
            "java.lang.Object",
            "[B", "[C", "[I", "[J", "[D", "[Ljava.lang.Object;",
            f"[L{corelib.HASHMAP_NODE};",
        ):
            self.register(name)
        for arity in range(1, corelib.MAX_TUPLE_ARITY + 1):
            self.register(corelib.tuple_class_name(arity))
        import itertools as _it
        for arity in range(1, corelib.SPECIALIZED_ARITY_LIMIT + 1):
            for sig in _it.product("JDL", repeat=arity):
                signature = "".join(sig)
                if signature != "L" * arity:
                    self.register(corelib.specialized_tuple_name(signature))

    def register(self, class_name: str) -> int:
        existing = self._ids.get(class_name)
        if existing is not None:
            return existing
        class_id = len(self._names)
        self._ids[class_name] = class_id
        self._names.append(class_name)
        return class_id

    def id_of(self, class_name: str) -> Optional[int]:
        return self._ids.get(class_name)

    def name_of(self, class_id: int) -> str:
        try:
            return self._names[class_id]
        except IndexError:
            raise SerializationError(f"unknown kryo class id {class_id}") from None

    def __len__(self) -> int:
        return len(self._names)


class KryoSerializer(Serializer):
    name = "kryo"

    def __init__(
        self,
        registrator: Optional[KryoRegistrator] = None,
        registration_required: bool = True,
    ) -> None:
        self.registrator = registrator if registrator is not None else KryoRegistrator()
        self.registration_required = registration_required

    def new_stream(self, jvm: JVM, thread_id: int = 0) -> "KryoSerializationStream":
        return KryoSerializationStream(jvm, self)

    def new_reader(self, jvm: JVM, data: bytes) -> "KryoDeserializationStream":
        return KryoDeserializationStream(jvm, self, data)


class KryoSerializationStream(SerializationStream):
    def __init__(self, jvm: JVM, serializer: KryoSerializer) -> None:
        self.jvm = jvm
        self.serializer = serializer
        self.out = ByteOutputStream()
        self._handles: Dict[int, int] = {}

    def write_object(self, root: int) -> None:
        self._write_value(root)

    def close(self) -> bytes:
        return self.out.getvalue()

    @property
    def bytes_written(self) -> int:
        return len(self.out)

    # -- internals ------------------------------------------------------------

    def _write_value(self, address: int) -> None:
        out = self.out
        cost = self.jvm.cost_model
        if address == NULL:
            out.write_varint(_ID_NULL)
            return
        handle = self._handles.get(address)
        if handle is not None:
            out.write_varint(_ID_BACKREF)
            out.write_varint(handle)
            return
        klass = self.jvm.klass_of(address)
        class_id = self.serializer.registrator.id_of(klass.name)
        if class_id is None:
            if self.serializer.registration_required:
                raise UnregisteredClassError(
                    f"class {klass.name} is not registered with Kryo"
                )
            out.write_varint(_ID_UNREGISTERED)
            out.write_utf(klass.name)
            self.jvm.clock.charge(cost.string_cost(klass.name))
        else:
            out.write_varint(class_id + _ID_BASE)
        self._handles[address] = len(self._handles)

        # One user/generated write-function dispatch per object.
        self.jvm.clock.charge(cost.sd_function_call)

        if klass.name == corelib.STRING:
            text = self.jvm.read_string(address)
            self.jvm.clock.charge(cost.string_cost(text))
            out.write_utf(text)
            return
        if klass.is_array:
            self._write_array(address, klass)
            return
        for field in klass.all_fields():
            # Generated accessor, not reflection.
            self.jvm.clock.charge(cost.generated_access)
            value = self.jvm.heap.read_field(address, field)
            if field.is_reference:
                self._write_value(value)
            else:
                write_primitive(out, field.descriptor, value)
                self.jvm.clock.charge(cost.stream_bytes(field.size))

    def _write_array(self, address: int, klass) -> None:
        out = self.out
        cost = self.jvm.cost_model
        heap = self.jvm.heap
        length = heap.array_length(address)
        out.write_varint(length)
        elem = klass.element_descriptor or ""
        if descriptors.is_reference(elem):
            for i in range(length):
                self.jvm.clock.charge(cost.generated_access)
                self._write_value(heap.read_element(address, i))
        else:
            nbytes = length * klass.element_size
            self.jvm.clock.charge(cost.stream_bytes(nbytes))
            for i in range(length):
                write_primitive(out, elem, heap.read_element(address, i))


class KryoDeserializationStream(DeserializationStream):
    def __init__(self, jvm: JVM, serializer: KryoSerializer, data: bytes) -> None:
        self.jvm = jvm
        self.serializer = serializer
        self.inp = ByteInputStream(data)
        self._handles: List[Handle] = []
        self._all_pins: List[Handle] = []

    def has_next(self) -> bool:
        return not self.inp.at_end()

    def read_object(self) -> int:
        return self._read_value()

    def close(self) -> None:
        for pin in self._all_pins:
            self.jvm.unpin(pin)
        self._all_pins.clear()

    # -- internals ----------------------------------------------------------

    def _pin(self, address: int) -> Handle:
        handle = self.jvm.pin(address)
        self._all_pins.append(handle)
        return handle

    def _read_value(self) -> int:
        cost = self.jvm.cost_model
        wire_id = self.inp.read_varint()
        if wire_id == _ID_NULL:
            return NULL
        if wire_id == _ID_BACKREF:
            return self._handles[self.inp.read_varint()].address
        if wire_id == _ID_UNREGISTERED:
            name = self.inp.read_utf()
            self.jvm.clock.charge(cost.string_cost(name))
            klass = self.jvm.loader.load(name)
        else:
            name = self.serializer.registrator.name_of(wire_id - _ID_BASE)
            # The generated `switch(id) { case n: return new C(); }` —
            # no reflection (paper §2.1).
            klass = self.jvm.loader.load(name)

        # One user/generated read-function dispatch per object.
        self.jvm.clock.charge(cost.sd_function_call)

        if klass.name == corelib.STRING:
            text = self.inp.read_utf()
            self.jvm.clock.charge(cost.string_cost(text))
            address = self.jvm.new_string(text)
            self._handles.append(self._pin(address))
            return address
        if klass.is_array:
            return self._read_array(klass)
        return self._read_instance(klass)

    def _read_array(self, klass) -> int:
        cost = self.jvm.cost_model
        length = self.inp.read_varint()
        elem = klass.element_descriptor or ""
        self.jvm.clock.charge(cost.constructor_call)
        address = self.jvm.new_array(elem, length)
        pin = self._pin(address)
        self._handles.append(pin)
        heap = self.jvm.heap
        if descriptors.is_reference(elem):
            for i in range(length):
                self.jvm.clock.charge(cost.generated_access)
                heap.write_element(pin.address, i, self._read_value())
        else:
            self.jvm.clock.charge(cost.stream_bytes(length * klass.element_size))
            for i in range(length):
                heap.write_element(pin.address, i, read_primitive(self.inp, elem))
        return pin.address

    def _read_instance(self, klass) -> int:
        cost = self.jvm.cost_model
        self.jvm.clock.charge(cost.constructor_call)
        address = self.jvm.new_instance(klass.name)
        pin = self._pin(address)
        self._handles.append(pin)
        for field in klass.all_fields():
            self.jvm.clock.charge(cost.generated_access)
            if field.is_reference:
                value = self._read_value()
                self.jvm.heap.write_field(pin.address, field, value)
            else:
                value = read_primitive(self.inp, field.descriptor)
                self.jvm.clock.charge(cost.stream_bytes(field.size))
                self.jvm.heap.write_field(pin.address, field, value)
        if klass.name == corelib.HASHMAP:
            # Kryo's MapSerializer re-puts entries on read.
            HashMapOps(self.jvm).rehash_in_place(pin.address, charge=True)
        return pin.address
