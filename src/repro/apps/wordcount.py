"""WordCount: the single-shuffle MapReduce workload (paper §5.2: "a simple
MapReduce application that needs only one round of data shuffling")."""

from __future__ import annotations

from typing import Dict, List

from repro.spark.context import SparkContext


def word_count(sc: SparkContext, lines: List[str],
               num_partitions: int = None) -> Dict[str, int]:
    """Count word occurrences across ``lines``; one shuffle round."""
    counts = (
        sc.text_file(lines, num_partitions)
        .flat_map(lambda line: line.split(), name="tokenize")
        .map(lambda word: (word, 1), name="pair")
        .reduce_by_key(lambda a, b: a + b)
    )
    return dict(counts.collect())
