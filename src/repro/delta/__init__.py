"""Skyway-Delta: epoch-based incremental object-graph transfer.

Skyway (the paper) reships the *entire* reachable graph on every transfer.
Iterative workloads (PageRank, ConnectedComponents) mutate only a small
slice of a cached graph between supersteps, so most of those bytes are
identical to the previous epoch.  This subsystem makes repeated sends of a
previously-shipped graph incremental:

* :mod:`repro.delta.epoch_cache` — the **send-epoch cache**: per
  destination, the last shipped graph's source-address → receiver-buffer
  offset map (built from the sender's baddr/clone records);
* :mod:`repro.delta.dirty` — **dirty-object discovery**: a write-barrier
  hook on heap field writes marks a dedicated delta card table (a second
  :class:`~repro.heap.cardtable.CardTable` instance), so the sender visits
  only mutated and new objects instead of traversing the whole graph;
* :mod:`repro.delta.wire` — the **delta wire format**: framed
  NEW / PATCH / SAME-REF records layered on the stream conventions of
  :mod:`repro.core.streams`;
* :mod:`repro.delta.apply` — the receiver-side apply pass: patches the
  retained input buffer in place and re-marks the GC card table exactly as
  §4.3 requires for pointers introduced by a transfer;
* :mod:`repro.delta.policy` — the **fallback policy**: measures the
  mutation rate per epoch and auto-reverts to a full Skyway send past the
  crossover where a delta would cost as much as resending everything;
* :mod:`repro.delta.channel` — the channel API tying the above together
  (``DeltaSendChannel.send(roots)`` / ``DeltaReceiveEndpoint.receive``).

Constraints: delta channels require a homogeneous cluster (PATCH records
overwrite clones in place, so both sides must share one object layout) and
mutations must go through the typed field/element API (raw ``write_word``
bypasses the barrier, exactly as JIT-compiled stores bypass nothing — the
simulator's typed API *is* its compiled store).
"""

from repro.delta.channel import (
    DeltaChannelError,
    DeltaReceiveEndpoint,
    DeltaSendChannel,
    DeltaStaleError,
)
from repro.delta.dirty import DeltaTracker
from repro.delta.epoch_cache import EpochCache, EpochRecord
from repro.delta.policy import DeltaPolicy, EpochDecision
from repro.delta.wire import (
    FRAME_DELTA,
    FRAME_FULL,
    DeltaWireError,
    is_delta_frame,
)

__all__ = [
    "DeltaChannelError",
    "DeltaPolicy",
    "DeltaReceiveEndpoint",
    "DeltaSendChannel",
    "DeltaStaleError",
    "DeltaTracker",
    "DeltaWireError",
    "EpochCache",
    "EpochDecision",
    "EpochRecord",
    "FRAME_DELTA",
    "FRAME_FULL",
    "is_delta_frame",
]
