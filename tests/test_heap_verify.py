"""Tests for the heap verifier and GC stress via a random-op state machine."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.runtime import attach_skyway
from repro.core.streams import SkywayObjectInputStream, SkywayObjectOutputStream
from repro.heap.verify import HeapCorruptionError, reachable_from, verify_heap
from repro.jvm.jvm import JVM
from repro.jvm.marshal import from_heap, to_heap

from tests.conftest import make_date, make_list, sample_classpath


class TestVerifier:
    def test_clean_heap_passes(self, jvm):
        make_date(jvm, 1, 2, 3)
        make_list(jvm, range(10))
        assert verify_heap(jvm.heap) > 10

    def test_detects_corrupted_klass_word(self, jvm):
        addr = jvm.new_instance("Date")
        jvm.heap.write_klass_word(addr, 0xDEAD)
        with pytest.raises(HeapCorruptionError, match="unresolvable"):
            verify_heap(jvm.heap)

    def test_detects_wild_reference(self, jvm):
        addr = jvm.new_instance("ListNode")
        field = jvm.klass_of(addr).field("next")
        jvm.heap.write_word(addr + field.offset, jvm.heap.base + 8)
        with pytest.raises(HeapCorruptionError, match="not an object start"):
            verify_heap(jvm.heap)

    def test_detects_missing_card(self, jvm):
        old_obj = jvm.heap.allocate(jvm.loader.load("ListNode"), old_gen=True)
        young = jvm.new_instance("ListNode")
        field = jvm.klass_of(old_obj).field("next")
        # Bypass the write barrier deliberately.
        jvm.heap.write_word(old_obj + field.offset, young)
        with pytest.raises(HeapCorruptionError, match="dirty card"):
            verify_heap(jvm.heap)

    def test_passes_after_minor_and_full_gc(self, jvm):
        pins = [jvm.pin(make_list(jvm, range(20))) for _ in range(5)]
        jvm.gc.minor()
        verify_heap(jvm.heap)
        jvm.gc.full()
        verify_heap(jvm.heap)
        assert pins

    def test_passes_after_skyway_receive(self, classpath):
        src = JVM("v-src", classpath=classpath)
        dst = JVM("v-dst", classpath=classpath)
        attach_skyway(src, [dst])
        out = SkywayObjectOutputStream(src.skyway, destination="p")
        out.write_object(make_list(src, range(50)))
        inp = SkywayObjectInputStream(dst.skyway)
        inp.accept(out.close())
        verify_heap(dst.heap)

    def test_reachable_from(self, jvm):
        head = make_list(jvm, range(5))
        live = reachable_from(jvm.heap, [head])
        assert len(live) == 5


class TestGCStress:
    """Randomized mutator: allocate, mutate, drop roots, collect — the
    shadow model (plain Python values) must always match the heap."""

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_mutation_and_collection(self, seed):
        rng = random.Random(seed)
        jvm = JVM(f"stress-{seed}", classpath=sample_classpath(),
                  young_bytes=96 * 1024, old_bytes=4 * 1024 * 1024)
        shadow = {}  # pin -> expected python value
        for step in range(60):
            op = rng.randrange(6)
            if op <= 2 or not shadow:  # allocate a new rooted value
                value = _random_value(rng)
                pin = jvm.pin(to_heap(jvm, value))
                shadow[pin] = value
            elif op == 3:  # drop a root (make garbage)
                pin = rng.choice(list(shadow))
                jvm.unpin(pin)
                del shadow[pin]
            elif op == 4:
                jvm.gc.minor()
            else:
                jvm.gc.full()
            if step % 10 == 9:
                verify_heap(jvm.heap)
                for pin, expected in shadow.items():
                    assert from_heap(jvm, pin.address) == expected
        jvm.gc.full()
        verify_heap(jvm.heap)
        for pin, expected in shadow.items():
            assert from_heap(jvm, pin.address) == expected


def _random_value(rng: random.Random):
    kind = rng.randrange(5)
    if kind == 0:
        return rng.randrange(-1000, 1000)
    if kind == 1:
        return "s" * rng.randrange(0, 8) + str(rng.randrange(100))
    if kind == 2:
        return [rng.randrange(100) for _ in range(rng.randrange(6))]
    if kind == 3:
        return {f"k{i}": rng.random() for i in range(rng.randrange(4))}
    return (rng.randrange(10), float(rng.randrange(10)), "x")
