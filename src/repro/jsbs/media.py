"""The JSBS media-content dataset.

jvm-serializers' workload is a ``MediaContent`` object graph: one ``Media``
(uri, title, dimensions, format, duration, size, bitrate, persons list,
player enum, copyright) plus a list of ``Image`` objects — "each of which
is around 1KB in JSON format" with primitive int/long fields and
reference-type fields (paper §5.1).
"""

from __future__ import annotations

import random
from typing import List

from repro.jvm.jvm import JVM
from repro.jvm.marshal import Obj, to_heap
from repro.types.classdef import ClassDef, ClassPath

MEDIA_CONTENT = "data.media.MediaContent"
MEDIA = "data.media.Media"
IMAGE = "data.media.Image"

MEDIA_CLASSES = [
    ClassDef.define(
        IMAGE,
        [
            ("uri", "Ljava.lang.String;"),
            ("title", "Ljava.lang.String;"),
            ("width", "I"),
            ("height", "I"),
            ("size", "I"),  # enum ordinal: SMALL / LARGE
        ],
    ),
    ClassDef.define(
        MEDIA,
        [
            ("uri", "Ljava.lang.String;"),
            ("title", "Ljava.lang.String;"),
            ("width", "I"),
            ("height", "I"),
            ("format", "Ljava.lang.String;"),
            ("duration", "J"),
            ("size", "J"),
            ("bitrate", "I"),
            ("hasBitrate", "Z"),
            ("persons", "Ljava.util.ArrayList;"),
            ("player", "I"),  # enum ordinal: JAVA / FLASH
            ("copyright", "Ljava.lang.String;"),
        ],
    ),
    ClassDef.define(
        MEDIA_CONTENT,
        [
            ("media", f"L{MEDIA};"),
            ("images", "Ljava.util.ArrayList;"),
        ],
    ),
]


def install_media_classes(classpath: ClassPath) -> ClassPath:
    for d in MEDIA_CLASSES:
        if d.name not in classpath:
            classpath.add(d)
    return classpath


def media_content_value(index: int, seed: int = 2018) -> Obj:
    """A deterministic MediaContent description (Python-side)."""
    rng = random.Random(seed + index)
    images = [
        Obj(IMAGE, {
            "uri": f"http://javaone.com/keynote_{index}_{i}.jpg",
            "title": f"Javaone Keynote {index} thumbnail {i}",
            "width": 640 >> i,
            "height": 480 >> i,
            "size": i % 2,
        })
        for i in range(2 + index % 2)
    ]
    media = Obj(MEDIA, {
        "uri": f"http://javaone.com/keynote_{index}.mpg",
        "title": f"Javaone Keynote {index}",
        "width": 640,
        "height": 480,
        "format": "video/mpg4",
        "duration": 18_000_000 + rng.randrange(1000),
        "size": 58_982_400 + rng.randrange(10_000),
        "bitrate": 262_144,
        "hasBitrate": True,
        "persons": ["Bill Gates", "Steve Jobs", f"Speaker {index}"],
        "player": index % 2,
        "copyright": "None" if index % 3 else "Oracle (c)",
    })
    return Obj(MEDIA_CONTENT, {"media": media, "images": images})


def make_media_content(jvm: JVM, index: int, seed: int = 2018) -> int:
    """Materialize one MediaContent graph on ``jvm``'s heap."""
    install_media_classes(jvm.classpath)
    return to_heap(jvm, media_content_value(index, seed))


def make_dataset(jvm: JVM, count: int, seed: int = 2018) -> List[int]:
    """``count`` pinned MediaContent roots (caller unpins via handles)."""
    return [make_media_content(jvm, i, seed) for i in range(count)]
