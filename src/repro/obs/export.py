"""Exporters: Chrome traces, terminal reports, diffs, Prometheus text.

The Chrome format is the ``chrome://tracing`` / Perfetto "JSON Array
Format": a ``traceEvents`` list of ``"X"`` (complete) events with ``ts``
and ``dur`` in microseconds, plus ``M`` metadata events naming processes
and threads.  Span attributes ride in ``args`` so the tooltip in Perfetto
shows epoch / mode / wire bytes per span.

``render_phase_report`` is the paper-style table: spans rolled up by name
(count, wall time, simulated time) followed by the per-channel exchange
breakdown straight out of the registry sources — the wire-byte and
simulated-clock columns are read from ``ExchangeMetrics.as_dict()``
itself, which is how the report agrees with the ledger to the byte/µs.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple


def _span_dict(span: Any) -> Dict[str, Any]:
    if isinstance(span, Mapping):
        return dict(span)
    return span.as_dict()


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------

def to_chrome_trace(spans: Iterable[Any],
                    trace_id: Optional[str] = None) -> Dict[str, Any]:
    """Build a ``chrome://tracing`` document from spans (Span or dict)."""
    dicts = [_span_dict(s) for s in spans]
    if trace_id is None and dicts:
        trace_id = dicts[0].get("trace_id")

    # Stable small pids/tids: one pid per process name, one tid per
    # (process, thread ident) pair, in first-appearance order.
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}
    events: List[Dict[str, Any]] = []
    for d in dicts:
        proc = str(d.get("process", "?"))
        if proc not in pids:
            pid = pids[proc] = len(pids) + 1
            events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": proc},
            })
        pid = pids[proc]
        tkey = (proc, d.get("thread", 0))
        if tkey not in tids:
            tid = tids[tkey] = len(tids) + 1
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": f"{proc}/t{tid}"},
            })
        tid = tids[tkey]

        start = float(d["start_us"])
        end = d.get("end_us")
        closed = end is not None
        dur = max(0.0, float(end) - start) if closed else 0.0
        args: Dict[str, Any] = {
            "span_id": d.get("span_id"),
            "parent_id": d.get("parent_id"),
            "trace_id": d.get("trace_id"),
        }
        if d.get("sim_start_us") is not None and d.get("sim_end_us") is not None:
            args["sim_us"] = float(d["sim_end_us"]) - float(d["sim_start_us"])
        attrs = d.get("attrs") or {}
        if attrs:
            args.update(attrs)
        if not closed:
            args["unclosed"] = True
        events.append({
            "ph": "X", "name": str(d.get("name", "?")),
            "pid": pid, "tid": tid,
            "ts": start, "dur": dur,
            "cat": "repro", "args": args,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": trace_id or ""},
    }


def validate_chrome_trace(doc: Any) -> List[str]:
    """Return a list of problems (empty == valid).

    Checks structure, span-id uniqueness, parent resolution and
    containment, single-trace-id, and that every span is closed — the
    invariants the CI smoke job gates on.
    """
    problems: List[str] = []
    if not isinstance(doc, Mapping) or "traceEvents" not in doc:
        return ["document is not a mapping with a traceEvents list"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents is not a list"]

    spans: Dict[str, Dict[str, Any]] = {}
    trace_ids = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, Mapping):
            problems.append(f"event #{i} is not a mapping")
            continue
        ph = ev.get("ph")
        if ph == "M":
            continue
        if ph != "X":
            problems.append(f"event #{i} has unexpected phase {ph!r}")
            continue
        for key in ("name", "ts", "dur", "pid", "tid"):
            if key not in ev:
                problems.append(f"event #{i} ({ev.get('name')}) missing {key!r}")
        args = ev.get("args") or {}
        sid = args.get("span_id")
        if not sid:
            problems.append(f"event #{i} ({ev.get('name')}) has no span_id")
            continue
        if sid in spans:
            problems.append(f"duplicate span_id {sid}")
        spans[sid] = dict(ev)
        if args.get("trace_id"):
            trace_ids.add(args["trace_id"])
        if args.get("unclosed"):
            problems.append(f"span {sid} ({ev.get('name')}) never closed")
        if float(ev.get("dur", 0.0)) < 0:
            problems.append(f"span {sid} has negative duration")

    if len(trace_ids) > 1:
        problems.append(f"multiple trace ids: {sorted(trace_ids)}")
    if not spans:
        problems.append("trace contains no spans")

    tolerance_us = 2.0  # clock reads on either side of start/finish
    for sid, ev in spans.items():
        parent_id = (ev.get("args") or {}).get("parent_id")
        if not parent_id:
            continue
        parent = spans.get(parent_id)
        if parent is None:
            problems.append(
                f"span {sid} ({ev.get('name')}) parent {parent_id} not in trace"
            )
            continue
        p_start = float(parent["ts"])
        p_end = p_start + float(parent["dur"])
        c_start = float(ev["ts"])
        c_end = c_start + float(ev["dur"])
        if c_start < p_start - tolerance_us or c_end > p_end + tolerance_us:
            problems.append(
                f"span {sid} ({ev.get('name')}) "
                f"[{c_start:.0f},{c_end:.0f}] escapes parent "
                f"{parent_id} ({parent.get('name')}) [{p_start:.0f},{p_end:.0f}]"
            )
    return problems


# ---------------------------------------------------------------------------
# terminal reports
# ---------------------------------------------------------------------------

def _fmt_us(us: float) -> str:
    if us >= 1e6:
        return f"{us / 1e6:10.3f} s"
    if us >= 1e3:
        return f"{us / 1e3:10.3f} ms"
    return f"{us:10.1f} µs"


def _rollup(spans: Iterable[Any]) -> Dict[str, Dict[str, float]]:
    agg: Dict[str, Dict[str, float]] = {}
    for s in spans:
        d = _span_dict(s)
        row = agg.setdefault(str(d.get("name", "?")),
                             {"count": 0, "wall_us": 0.0, "sim_us": 0.0})
        row["count"] += 1
        if d.get("end_us") is not None:
            row["wall_us"] += float(d["end_us"]) - float(d["start_us"])
        if d.get("sim_start_us") is not None and d.get("sim_end_us") is not None:
            row["sim_us"] += float(d["sim_end_us"]) - float(d["sim_start_us"])
    return agg


def render_phase_report(snapshot: Mapping[str, Any]) -> str:
    """The paper-style phase breakdown from one obs snapshot."""
    lines: List[str] = []
    trace = snapshot.get("trace") or {}
    spans = trace.get("spans") or []
    lines.append("== Phase breakdown (spans) ==")
    if spans:
        lines.append(f"trace {trace.get('trace_id', '?')}  "
                     f"spans={len(spans)} open={trace.get('open_spans', 0)}")
        agg = _rollup(spans)
        lines.append(f"{'phase':<24} {'count':>6} {'wall':>13} {'sim':>13}")
        for name in sorted(agg, key=lambda n: -agg[n]["wall_us"]):
            row = agg[name]
            lines.append(
                f"{name:<24} {int(row['count']):>6} "
                f"{_fmt_us(row['wall_us']):>13} {_fmt_us(row['sim_us']):>13}"
            )
    else:
        lines.append("(no trace in snapshot — run with tracing enabled)")

    metrics = snapshot.get("metrics") or {}
    sources = metrics.get("sources") or {}
    exchange_rows = []
    for name in sorted(sources):
        src = sources[name]
        if not isinstance(src, Mapping):
            continue
        breakdown = src.get("breakdown")
        if isinstance(breakdown, Mapping):
            exchange_rows.append((name, src, breakdown))
    if exchange_rows:
        lines.append("")
        lines.append("== Exchange channels (ledger-exact) ==")
        for name, src, breakdown in exchange_rows:
            wire = src.get("wire_bytes", breakdown.get("bytes_written", 0))
            lines.append(f"{name}: sends={src.get('sends', '?')} "
                         f"wire_bytes={wire}")
            for cat, seconds in sorted(breakdown.items()):
                if cat == "bytes_written":
                    continue
                lines.append(f"    {cat:<20} {_fmt_us(float(seconds) * 1e6)}")

    counters = metrics.get("counters") or {}
    if counters:
        lines.append("")
        lines.append("== Counters ==")
        for key in sorted(counters):
            lines.append(f"{key:<44} {counters[key]:>14g}")
    hists = metrics.get("histograms") or {}
    if hists:
        lines.append("")
        lines.append("== Histograms ==")
        for key in sorted(hists):
            h = hists[key]
            lines.append(
                f"{key:<44} n={int(h['count'])} sum={h['sum']:g} "
                f"min={h['min']:g} max={h['max']:g}"
            )
    other = [n for n in sorted(sources) if not (
        isinstance(sources[n], Mapping) and "breakdown" in sources[n])]
    if other:
        lines.append("")
        lines.append("== Other sources ==")
        for name in other:
            lines.append(f"{name}: {json.dumps(sources[name], default=str)[:120]}")
    return "\n".join(lines)


def _flatten(prefix: str, value: Any, out: Dict[str, float]) -> None:
    if isinstance(value, Mapping):
        for k in value:
            _flatten(f"{prefix}.{k}" if prefix else str(k), value[k], out)
    elif isinstance(value, (int, float)) and not isinstance(value, bool):
        out[prefix] = float(value)


def diff_data(old: Mapping[str, Any],
              new: Mapping[str, Any]) -> Dict[str, Any]:
    """Numeric deltas between two snapshots, machine-readable: the data
    under both ``repro.obs diff`` renderings (text and ``--json``)."""
    a: Dict[str, float] = {}
    b: Dict[str, float] = {}
    _flatten("", old.get("metrics", old), a)
    _flatten("", new.get("metrics", new), b)
    added: Dict[str, float] = {}
    removed: Dict[str, float] = {}
    changed: Dict[str, Dict[str, float]] = {}
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va == vb:
            continue
        if va is None:
            added[key] = vb
        elif vb is None:
            removed[key] = va
        else:
            changed[key] = {"old": va, "new": vb, "delta": vb - va}
    return {"kind": "obs_diff", "added": added, "removed": removed,
            "changed": changed,
            "total": len(added) + len(removed) + len(changed)}


def render_diff(old: Mapping[str, Any], new: Mapping[str, Any]) -> str:
    """Numeric deltas between two obs snapshots (``repro.obs diff``)."""
    data = diff_data(old, new)
    lines = ["== Snapshot diff (new - old) =="]
    for key in sorted(set(data["added"]) | set(data["removed"])
                      | set(data["changed"])):
        if key in data["added"]:
            lines.append(f"+ {key:<52} {data['added'][key]:g}")
        elif key in data["removed"]:
            lines.append(f"- {key:<52} (was {data['removed'][key]:g})")
        else:
            row = data["changed"][key]
            lines.append(f"  {key:<52} {row['old']:g} -> {row['new']:g} "
                         f"({row['delta']:+g})")
    if data["total"] == 0:
        lines.append("(no numeric differences)")
    return "\n".join(lines)


def phase_report_data(snapshot: Mapping[str, Any]) -> Dict[str, Any]:
    """The phase-report numbers as data (``repro.obs report --json``):
    span rollups, counters, histogram summaries, exchange ledgers."""
    trace = snapshot.get("trace") or {}
    spans = trace.get("spans") or []
    metrics = snapshot.get("metrics") or {}
    return {
        "kind": "phase_report",
        "trace_id": trace.get("trace_id"),
        "spans": len(spans),
        "open_spans": trace.get("open_spans", 0),
        "phases": _rollup(spans),
        "counters": dict(metrics.get("counters") or {}),
        "gauges": dict(metrics.get("gauges") or {}),
        "histograms": {k: dict(v)
                       for k, v in (metrics.get("histograms") or {}).items()},
        "sources": {k: v
                    for k, v in (metrics.get("sources") or {}).items()},
    }


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

_PROM_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"                      # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\n]*\""         # first label
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\n]*\")*\})?"    # more labels
    r" [^ \n]+( [0-9]+)?$"                            # value [timestamp]
)


def _prom_name(key: str) -> Tuple[str, Dict[str, str]]:
    """Split a registry series key (``name{k=v,...}``) and sanitize the
    name into the Prometheus charset (dots and dashes become ``_``)."""
    labels: Dict[str, str] = {}
    name = key
    if "{" in key and key.endswith("}"):
        name, _, inner = key.partition("{")
        for pair in inner[:-1].split(","):
            if "=" in pair:
                k, _, v = pair.partition("=")
                labels[re.sub(r"[^a-zA-Z0-9_]", "_", k.strip())] = v
    name = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not _PROM_NAME_OK.match(name):
        name = f"_{name}"
    return name, labels


def _prom_escape(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _prom_line(name: str, labels: Mapping[str, str], value: float) -> str:
    if labels:
        inner = ",".join(f'{k}="{_prom_escape(labels[k])}"'
                         for k in sorted(labels))
        return f"{name}{{{inner}}} {value:g}"
    return f"{name} {value:g}"


class _PromWriter:
    """Accumulates exposition lines with one TYPE header per family."""

    def __init__(self, prefix: str = "repro") -> None:
        self.prefix = prefix
        self.lines: List[str] = []
        self._typed: Dict[str, str] = {}

    def add(self, key: str, value: Any, kind: str = "gauge",
            extra_labels: Optional[Mapping[str, str]] = None,
            suffix: str = "") -> None:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return
        name, labels = _prom_name(key)
        if extra_labels:
            labels.update(extra_labels)
        family = f"{self.prefix}_{name}{suffix}"
        seen = self._typed.get(family)
        if seen is None:
            self._typed[family] = kind
            self.lines.append(f"# TYPE {family} {kind}")
        elif seen != kind:
            return  # one family, one type — skip the contradiction
        self.lines.append(_prom_line(family, labels, float(value)))

    def text(self) -> str:
        return "\n".join(self.lines) + "\n" if self.lines else ""


def _prom_metrics(writer: _PromWriter, metrics: Mapping[str, Any],
                  extra_labels: Optional[Mapping[str, str]] = None) -> None:
    for key, value in (metrics.get("counters") or {}).items():
        writer.add(key, value, "counter", extra_labels, suffix="_total")
    for key, value in (metrics.get("gauges") or {}).items():
        writer.add(key, value, "gauge", extra_labels)
    for key, hist in (metrics.get("histograms") or {}).items():
        if not isinstance(hist, Mapping):
            continue
        writer.add(key, hist.get("count"), "counter", extra_labels,
                   suffix="_count")
        writer.add(key, hist.get("sum"), "counter", extra_labels,
                   suffix="_sum")
        for q, quantile in (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")):
            if q in hist:
                labels = dict(extra_labels or {})
                labels["quantile"] = quantile
                writer.add(key, hist[q], "gauge", labels)


def prometheus_text(doc: Mapping[str, Any], prefix: str = "repro") -> str:
    """Render a document as Prometheus text exposition.

    Accepts either an obs snapshot (``{"metrics": {...}}`` — one process)
    or a fleet telemetry document (``{"kind": "fleet_telemetry"}`` — the
    coordinator's per-worker totals become ``worker``-labelled series and
    the fleet rollups become ``repro_fleet_*`` gauges).
    """
    writer = _PromWriter(prefix)
    if doc.get("kind") == "fleet_telemetry":
        for worker in sorted(doc.get("workers") or {}):
            w = doc["workers"][worker]
            labels = {"worker": worker}
            _prom_metrics(writer, w, labels)
            writer.add("telemetry.samples", w.get("samples"), "counter",
                       labels, suffix="_total")
            writer.add("telemetry.gaps", w.get("gaps"), "counter",
                       labels, suffix="_total")
            writer.add("telemetry.straggler",
                       1.0 if w.get("straggler") else 0.0, "gauge", labels)
            for key, value in (w.get("rollup") or {}).items():
                writer.add(f"rollup.{key}", value, "gauge", labels)
        for key, value in (doc.get("rollups") or {}).items():
            writer.add(f"fleet.{key}", value, "gauge")
        stats = doc.get("stats") or {}
        writer.add("fleet.samples_ingested", stats.get("samples_ingested"),
                   "counter", suffix="_total")
        writer.add("fleet.payloads_rejected", stats.get("payloads_rejected"),
                   "counter", suffix="_total")
        writer.add("fleet.straggler_events",
                   len(doc.get("events") or []), "counter", suffix="_total")
    else:
        _prom_metrics(writer, doc.get("metrics") or doc)
    return writer.text()


def validate_prometheus(text: str) -> List[str]:
    """Line-validate Prometheus exposition text (empty == valid): every
    non-comment line must parse as ``name[{labels}] value``, every sample
    must follow a TYPE header for its family, values must be numbers."""
    problems: List[str] = []
    typed: set = set()
    samples = 0
    for i, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"):
                problems.append(f"line {i}: malformed TYPE header: {line!r}")
            else:
                typed.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        if not _PROM_LINE.match(line):
            problems.append(f"line {i}: not a valid sample line: {line!r}")
            continue
        samples += 1
        name = re.split(r"[{ ]", line, maxsplit=1)[0]
        if name not in typed:
            problems.append(f"line {i}: sample {name!r} has no TYPE header")
        value = line.rsplit(" ", 1)[-1] if "}" in line \
            else line.split(" ", 1)[1].split(" ")[0]
        try:
            float(value)
        except ValueError:
            problems.append(f"line {i}: value {value!r} is not a number")
    if samples == 0:
        problems.append("exposition contains no samples")
    return problems
