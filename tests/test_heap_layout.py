"""Tests for object layout: headers, alignment, padding, array geometry."""

import pytest

from repro.heap.layout import (
    BASELINE_LAYOUT,
    SKYWAY_LAYOUT,
    HeapLayout,
    WORD,
    align_up,
)
from repro.types import descriptors


class TestAlignUp:
    @pytest.mark.parametrize(
        "value,alignment,expected",
        [(0, 8, 0), (1, 8, 8), (8, 8, 8), (9, 8, 16), (17, 4, 20), (3, 2, 4)],
    )
    def test_values(self, value, alignment, expected):
        assert align_up(value, alignment) == expected

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            align_up(10, 3)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            align_up(10, 0)


class TestHeaderGeometry:
    def test_baseline_header_is_two_words(self):
        assert BASELINE_LAYOUT.header_size == 2 * WORD

    def test_skyway_header_adds_baddr_word(self):
        assert SKYWAY_LAYOUT.header_size == 3 * WORD
        assert SKYWAY_LAYOUT.baddr_offset == 16

    def test_baseline_has_no_baddr(self):
        with pytest.raises(AttributeError):
            _ = BASELINE_LAYOUT.baddr_offset


class TestArrayGeometry:
    def test_paper_figure6_integer_array(self):
        """Figure 6: Integer[3] on a Skyway 64-bit JVM is 56 bytes
        (24 header + 4 length + 4 pad + 3*8 references)."""
        assert SKYWAY_LAYOUT.array_size("Ljava.lang.Integer;", 3) == 56

    def test_byte_array_payload_starts_right_after_length(self):
        # byte elements align to 1: payload at header+4.
        assert SKYWAY_LAYOUT.array_payload_offset("B") == 28

    def test_long_array_payload_padded_to_eight(self):
        assert SKYWAY_LAYOUT.array_payload_offset("J") == 32

    def test_array_size_padded_to_object_alignment(self):
        size = SKYWAY_LAYOUT.array_size("B", 5)
        assert size % 8 == 0
        assert size >= 28 + 5

    def test_zero_length_array(self):
        assert SKYWAY_LAYOUT.array_size("I", 0) == align_up(
            SKYWAY_LAYOUT.array_payload_offset("I"), 8
        )

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            SKYWAY_LAYOUT.array_size("I", -1)


class TestFieldLayout:
    def test_fields_sorted_largest_first(self):
        placed, size = SKYWAY_LAYOUT.compute_field_offsets(
            SKYWAY_LAYOUT.header_size,
            [("a", "B"), ("b", "J"), ("c", "I")],
        )
        by_name = {name: off for name, _, off in placed}
        assert by_name["b"] < by_name["c"] < by_name["a"]

    def test_offsets_respect_alignment(self):
        placed, _ = SKYWAY_LAYOUT.compute_field_offsets(
            SKYWAY_LAYOUT.header_size,
            [("x", "B"), ("y", "J"), ("z", "S")],
        )
        for _, desc, offset in placed:
            assert offset % descriptors.alignment_of(desc) == 0

    def test_instance_size_padded(self):
        _, size = SKYWAY_LAYOUT.compute_field_offsets(
            SKYWAY_LAYOUT.header_size, [("x", "B")]
        )
        assert size % 8 == 0
        assert size == 32  # 24-byte header + 1 byte + padding

    def test_baseline_same_fields_smaller_object(self):
        _, skyway_size = SKYWAY_LAYOUT.compute_field_offsets(
            SKYWAY_LAYOUT.header_size, [("x", "J")]
        )
        _, baseline_size = BASELINE_LAYOUT.compute_field_offsets(
            BASELINE_LAYOUT.header_size, [("x", "J")]
        )
        assert skyway_size - baseline_size == WORD

    def test_inherited_fields_precede(self):
        placed, _ = SKYWAY_LAYOUT.compute_field_offsets(40, [("x", "J")])
        assert placed[0][2] >= 40

    def test_empty_fields(self):
        placed, size = SKYWAY_LAYOUT.compute_field_offsets(
            SKYWAY_LAYOUT.header_size, []
        )
        assert placed == []
        assert size == SKYWAY_LAYOUT.header_size

    def test_deterministic_tiebreak_by_name(self):
        a, _ = SKYWAY_LAYOUT.compute_field_offsets(24, [("b", "I"), ("a", "I")])
        b, _ = SKYWAY_LAYOUT.compute_field_offsets(24, [("a", "I"), ("b", "I")])
        assert a == b
