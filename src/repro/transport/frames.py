"""The chunked wire protocol: length-prefixed, CRC-checked frames.

Layout of one frame (little-endian)::

    +----------------+--------+----------------------+----------...--+
    | u32 length     | u8 typ | u32 crc32(payload)   | payload       |
    +----------------+--------+----------------------+----------...--+

``length`` counts payload bytes only.  The CRC covers the payload, so a
bit flip anywhere in a DATA chunk is caught by the receiver before any of
it reaches the stream decoder (the in-stream trailer checks catch only
*structural* corruption; payload integrity is this layer's job).

Frame conversation (driver = client, worker = server)::

    HELLO      -> driver's registry snapshot {class name -> tID}
    HELLO_ACK  <- worker's extra class names (present there, absent here);
                  both sides then install the same merged mapping
    TRACE      -> optional (v2): trace id + parent span id, so worker
                  spans stitch under the driver's trace; worker spans
                  return inside the RESULT JSON under "trace"
    CALL       -> JSON op request ("recv_graph", "recv_blob", ...)
    DATA*      -> fixed-size chunks of the Skyway framed stream
    TRAILER    -> total bytes + whole-stream CRC + chunk count
    RESULT     <- JSON op result   |   ERROR <- typed remote failure
    BYE        -> end of connection

DATA chunks carry the *same bytes* ``SkywayObjectOutputStream`` produces
in-process — the wire format stays byte-identical to the heap image (cf.
the Arrow cluster-shared-memory argument: keep the wire format the heap
format and the receiver pass stays linear).
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Dict, Iterator, List, Optional, Tuple

from repro.net.streams import ByteInputStream, ByteOutputStream, StreamError
from repro.transport.errors import FrameCorruptionError

PROTOCOL_VERSION = 2

#: Hard cap on one frame's payload; a corrupt length field beyond this is
#: reported instead of allocated.
MAX_FRAME_BYTES = 64 * 1024 * 1024

HEADER = struct.Struct("<IBI")
HEADER_BYTES = HEADER.size

# -- frame types -----------------------------------------------------------

HELLO = 1
HELLO_ACK = 2
DATA = 3
TRAILER = 4
ERROR = 5
CALL = 6
RESULT = 7
BYE = 8
#: Epoch announcement for a delta-capable graph channel: names the channel
#: id, epoch number, and the delta-wire frame kind of the DATA stream that
#: follows (FULL or DELTA); the worker routes the reassembled frame to its
#: per-runtime :class:`~repro.delta.channel.DeltaReceiveEndpoint`.
EPOCH = 9
#: Optional trace-context announcement (protocol v2): carries the driver's
#: trace id and current span id so worker-side spans stitch under the
#: sender's trace.  Sent at most once per CALL, immediately before it; a
#: worker that never sees one simply doesn't trace.  Worker spans travel
#: back inside the RESULT JSON under the ``"trace"`` key.
TRACE = 10
#: Multiplexed stream chunk (async front-end): a varint channel id
#: followed by raw stream bytes.  Unlike DATA, which belongs to *the*
#: op in flight on the connection, MUX_DATA frames are self-describing —
#: chunks from many channels interleave freely on one socket and the
#: worker's per-channel state machine reassembles each stream.
MUX_DATA = 11
#: Completes one multiplexed stream: channel id + the same totals a
#: TRAILER carries (total bytes, whole-stream CRC, chunk count).  The
#: worker answers each completed channel with its own RESULT (tagged
#: ``channel_id``), possibly out of order with other channels.
MUX_TRAILER = 12

FRAME_NAMES = {
    HELLO: "HELLO", HELLO_ACK: "HELLO_ACK", DATA: "DATA",
    TRAILER: "TRAILER", ERROR: "ERROR", CALL: "CALL",
    RESULT: "RESULT", BYE: "BYE", EPOCH: "EPOCH", TRACE: "TRACE",
    MUX_DATA: "MUX_DATA", MUX_TRAILER: "MUX_TRAILER",
}


def frame_name(ftype: int) -> str:
    return FRAME_NAMES.get(ftype, f"type-{ftype}")


def encode_frame(ftype: int, payload: bytes) -> bytes:
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameCorruptionError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    return HEADER.pack(len(payload), ftype, zlib.crc32(payload)) + payload


class FrameDecoder:
    """Incremental frame parser (socket reads need not align to frames)."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> None:
        self._buf.extend(data)

    def frames(self) -> Iterator[Tuple[int, bytes]]:
        """Yield every complete ``(type, payload)`` frame buffered so far,
        verifying each CRC."""
        while True:
            frame = self.next_frame()
            if frame is None:
                return
            yield frame

    def next_frame(self) -> Optional[Tuple[int, bytes]]:
        if len(self._buf) < HEADER_BYTES:
            return None
        length, ftype, crc = HEADER.unpack_from(self._buf)
        if length > MAX_FRAME_BYTES:
            raise FrameCorruptionError(
                f"frame header claims {length} bytes "
                f"(> {MAX_FRAME_BYTES}); stream corrupt"
            )
        if ftype not in FRAME_NAMES:
            raise FrameCorruptionError(f"unknown frame type {ftype}")
        end = HEADER_BYTES + length
        if len(self._buf) < end:
            return None
        payload = bytes(self._buf[HEADER_BYTES:end])
        del self._buf[:end]
        actual = zlib.crc32(payload)
        if actual != crc:
            raise FrameCorruptionError(
                f"{frame_name(ftype)} frame CRC mismatch: "
                f"header {crc:#010x}, payload {actual:#010x}"
            )
        return ftype, payload

    @property
    def buffered(self) -> int:
        return len(self._buf)


# -- payload codecs --------------------------------------------------------

def _wrap_decode(fn, payload: bytes, what: str):
    try:
        return fn(ByteInputStream(payload))
    except (StreamError, UnicodeDecodeError, ValueError) as exc:
        raise FrameCorruptionError(f"malformed {what} payload: {exc}") from exc


def encode_hello(node_name: str, mapping: Dict[str, int],
                 version: int = PROTOCOL_VERSION) -> bytes:
    out = ByteOutputStream()
    out.write_varint(version)
    out.write_utf(node_name)
    out.write_varint(len(mapping))
    for name in sorted(mapping):
        out.write_utf(name)
        out.write_varint(mapping[name])
    return out.getvalue()


def decode_hello(payload: bytes) -> Tuple[int, str, Dict[str, int]]:
    def parse(inp: ByteInputStream):
        version = inp.read_varint()
        name = inp.read_utf()
        mapping = {inp.read_utf(): inp.read_varint()
                   for _ in range(inp.read_varint())}
        return version, name, mapping
    return _wrap_decode(parse, payload, "HELLO")


def encode_hello_ack(node_name: str, extra_names: List[str]) -> bytes:
    out = ByteOutputStream()
    out.write_utf(node_name)
    out.write_varint(len(extra_names))
    for name in sorted(extra_names):
        out.write_utf(name)
    return out.getvalue()


def decode_hello_ack(payload: bytes) -> Tuple[str, List[str]]:
    def parse(inp: ByteInputStream):
        name = inp.read_utf()
        return name, [inp.read_utf() for _ in range(inp.read_varint())]
    return _wrap_decode(parse, payload, "HELLO_ACK")


def encode_trailer(total_bytes: int, stream_crc: int, chunks: int) -> bytes:
    out = ByteOutputStream()
    out.write_varint(total_bytes)
    out.write_u32(stream_crc)
    out.write_varint(chunks)
    return out.getvalue()


def decode_trailer(payload: bytes) -> Tuple[int, int, int]:
    def parse(inp: ByteInputStream):
        return inp.read_varint(), inp.read_u32(), inp.read_varint()
    return _wrap_decode(parse, payload, "TRAILER")


def encode_epoch_header(channel_id: int, epoch: int, kind: int) -> bytes:
    out = ByteOutputStream()
    out.write_varint(channel_id)
    out.write_varint(epoch)
    out.write_u8(kind)
    return out.getvalue()


def decode_epoch_header(payload: bytes) -> Tuple[int, int, int]:
    def parse(inp: ByteInputStream):
        return inp.read_varint(), inp.read_varint(), inp.read_u8()
    return _wrap_decode(parse, payload, "EPOCH")


def encode_mux_data(channel_id: int, chunk: bytes) -> bytes:
    out = ByteOutputStream()
    out.write_varint(channel_id)
    out.write_bytes(chunk)
    return out.getvalue()


def decode_mux_data(payload: bytes) -> Tuple[int, bytes]:
    def parse(inp: ByteInputStream):
        channel_id = inp.read_varint()
        return channel_id, inp.read_bytes(inp.remaining)
    return _wrap_decode(parse, payload, "MUX_DATA")


#: MUX_TRAILER flags bit: the worker computes (and returns) the semantic
#: digest of the applied epoch's roots.  The classic recv_epoch op carries
#: the same choice in its CALL JSON; mux streams have no CALL, so the
#: trailer is the carrier.
MUX_FLAG_DIGEST = 0x01


def encode_mux_trailer(channel_id: int, total_bytes: int,
                       stream_crc: int, chunks: int,
                       digest: bool = True) -> bytes:
    out = ByteOutputStream()
    out.write_varint(channel_id)
    out.write_varint(total_bytes)
    out.write_u32(stream_crc)
    out.write_varint(chunks)
    out.write_u8(MUX_FLAG_DIGEST if digest else 0)
    return out.getvalue()


def decode_mux_trailer(payload: bytes) -> Tuple[int, int, int, int, bool]:
    def parse(inp: ByteInputStream):
        channel_id = inp.read_varint()
        total_bytes = inp.read_varint()
        stream_crc = inp.read_u32()
        chunks = inp.read_varint()
        # Flags byte is optional on the wire: a trailer without one (an
        # older sender) means digest, matching recv_epoch's default.
        flags = inp.read_u8() if inp.remaining else MUX_FLAG_DIGEST
        return (channel_id, total_bytes, stream_crc, chunks,
                bool(flags & MUX_FLAG_DIGEST))
    return _wrap_decode(parse, payload, "MUX_TRAILER")


def encode_trace(trace_id: str, span_id: str) -> bytes:
    out = ByteOutputStream()
    out.write_utf(trace_id)
    out.write_utf(span_id)
    return out.getvalue()


def decode_trace(payload: bytes) -> Tuple[str, str]:
    def parse(inp: ByteInputStream):
        return inp.read_utf(), inp.read_utf()
    return _wrap_decode(parse, payload, "TRACE")


def encode_error(kind: str, message: str) -> bytes:
    out = ByteOutputStream()
    out.write_utf(kind)
    out.write_utf(message)
    return out.getvalue()


def decode_error(payload: bytes) -> Tuple[str, str]:
    def parse(inp: ByteInputStream):
        return inp.read_utf(), inp.read_utf()
    return _wrap_decode(parse, payload, "ERROR")


def encode_json(obj) -> bytes:
    return json.dumps(obj, sort_keys=True).encode("utf-8")


def decode_json(payload: bytes, what: str = "CALL"):
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameCorruptionError(f"malformed {what} payload: {exc}") from exc
