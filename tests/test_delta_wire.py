"""Tests for the delta wire format (framing, records, encoder output)."""

import pytest

from repro.core.runtime import attach_skyway
from repro.delta import (
    DeltaSendChannel,
    FRAME_DELTA,
    FRAME_FULL,
    is_delta_frame,
)
from repro.delta.wire import (
    REC_NEW,
    REC_PATCH,
    REC_SAMEREF,
    DeltaFrame,
    DeltaWireError,
    FullFrame,
    frame_full,
    parse_frame,
)
from repro.jvm.jvm import JVM

from tests.conftest import make_list


@pytest.fixture
def pair(classpath):
    src = JVM("wire-src", classpath=classpath)
    dst = JVM("wire-dst", classpath=classpath)
    attach_skyway(src, [dst])
    return src, dst


class TestFraming:
    def test_full_frame_roundtrip(self):
        frame = frame_full(7, 3, b"embedded-bytes")
        parsed = parse_frame(frame)
        assert isinstance(parsed, FullFrame)
        assert (parsed.channel_id, parsed.epoch) == (7, 3)
        assert parsed.embedded == b"embedded-bytes"

    def test_frame_sniffing(self):
        assert is_delta_frame(bytes([FRAME_FULL]))
        assert is_delta_frame(bytes([FRAME_DELTA]))
        assert not is_delta_frame(b"")
        # Plain Skyway streams start with the codec byte (0 or 1).
        assert not is_delta_frame(bytes([0, 1, 2]))
        assert not is_delta_frame(bytes([1, 1, 2]))

    def test_parse_rejects_foreign_bytes(self):
        with pytest.raises(DeltaWireError):
            parse_frame(bytes([0x42, 1, 2, 3]))

    def test_plain_stream_is_not_a_delta_frame(self, pair):
        src, dst = pair
        from repro.core.streams import SkywayObjectOutputStream

        out = SkywayObjectOutputStream(src.skyway, destination="peer")
        out.write_object(make_list(src, [1]))
        assert not is_delta_frame(out.close())


class TestEncodedEpochs:
    """Drive a channel and inspect the frames it emits."""

    def test_first_epoch_is_full(self, pair):
        src, dst = pair
        channel = DeltaSendChannel(src.skyway, "dst")
        head = src.pin(make_list(src, range(40)))
        parsed = parse_frame(channel.send([head.address]))
        assert isinstance(parsed, FullFrame)
        assert parsed.channel_id == channel.channel_id
        assert parsed.epoch == 1

    def test_patch_records_sorted_by_offset(self, pair):
        src, dst = pair
        channel = DeltaSendChannel(src.skyway, "dst")
        head = src.pin(make_list(src, range(60)))
        channel.send([head.address])
        # Mutate several nodes spread across the chain.
        node, index = head.address, 0
        while node:
            if index % 13 == 0:
                src.set_field(node, "payload", 1000 + index)
            node = src.get_field(node, "next")
            index += 1
        parsed = parse_frame(channel.send([head.address]))
        assert isinstance(parsed, DeltaFrame)
        assert parsed.epoch == 2
        patches = [r for r in parsed.records if r.tag == REC_PATCH]
        assert patches
        offsets = [r.offset for r in patches]
        assert offsets == sorted(offsets)
        for record in patches:
            assert len(record.payload) > 0

    def test_unchanged_cached_root_emits_sameref(self, pair):
        src, dst = pair
        channel = DeltaSendChannel(src.skyway, "dst")
        head = src.pin(make_list(src, range(60)))
        channel.send([head.address])
        # Dirty the tail only; the head root is cached and untouched.
        node = head.address
        for _ in range(59):
            node = src.get_field(node, "next")
        src.set_field(node, "payload", -5)
        parsed = parse_frame(channel.send([head.address]))
        assert isinstance(parsed, DeltaFrame)
        samerefs = [r for r in parsed.records if r.tag == REC_SAMEREF]
        assert len(samerefs) == 1
        assert parsed.roots == [samerefs[0].offset]

    def test_new_object_record_and_logical_growth(self, pair):
        src, dst = pair
        channel = DeltaSendChannel(src.skyway, "dst")
        head = src.pin(make_list(src, range(60)))
        channel.send([head.address])
        fresh = src.new_instance("ListNode")
        src.set_field(fresh, "payload", 99)
        src.set_field(fresh, "next", head.address)
        parsed = parse_frame(channel.send([fresh]))
        assert isinstance(parsed, DeltaFrame)
        news = [r for r in parsed.records if r.tag == REC_NEW]
        assert len(news) == 1
        # NEW offsets start exactly at the previous epoch's logical end.
        assert news[0].offset == parsed.base_logical_end
        assert parsed.new_logical_end > parsed.base_logical_end
        assert parsed.roots == [news[0].offset]

    def test_quiescent_epoch_ships_no_payload(self, pair):
        src, dst = pair
        channel = DeltaSendChannel(src.skyway, "dst")
        head = src.pin(make_list(src, range(60)))
        full = channel.send([head.address])
        quiet = channel.send([head.address])
        parsed = parse_frame(quiet)
        assert isinstance(parsed, DeltaFrame)
        assert [r.tag for r in parsed.records] == [REC_SAMEREF]
        assert parsed.new_logical_end == parsed.base_logical_end
        assert len(quiet) < len(full) / 20
