"""End-to-end tests for Skyway sender -> receiver transfer (§4.2, §4.3)."""

import pytest

from repro.core.runtime import attach_skyway
from repro.core.streams import (
    SkywayObjectInputStream,
    SkywayObjectOutputStream,
)
from repro.heap import markword
from repro.heap.heap import NULL
from repro.jvm.collections import HashMapOps
from repro.jvm.jvm import JVM
from repro.jvm.marshal import Obj, from_heap, to_heap

from tests.conftest import make_date, make_list, read_date, read_list, sample_classpath


@pytest.fixture
def pair(classpath):
    """A (sender JVM, receiver JVM) pair with Skyway attached."""
    driver = JVM("sender", classpath=classpath)
    worker = JVM("receiver", classpath=classpath)
    attach_skyway(driver, [worker])
    return driver, worker


def transfer(sender_jvm, receiver_jvm, roots):
    """Helper: one shuffle phase, one stream carrying ``roots``; returns
    received addresses.  Each call is a fresh phase — the developer marks
    phases with shuffleStart in the paper's API (§3.3)."""
    sender_jvm.skyway.shuffle_start()
    out = SkywayObjectOutputStream(sender_jvm.skyway, destination="peer")
    for root in roots:
        out.write_object(root)
    data = out.close()
    inp = SkywayObjectInputStream(receiver_jvm.skyway)
    inp.accept(data)
    return [inp.read_object() for _ in roots], data


class TestBasicTransfer:
    def test_simple_graph(self, pair):
        src, dst = pair
        date = make_date(src, 2018, 3, 24)
        (received,), _ = transfer(src, dst, [date])
        assert dst.heap.contains(received)
        assert read_date(dst, received) == (2018, 3, 24)

    def test_received_objects_live_in_old_gen(self, pair):
        src, dst = pair
        (received,), _ = transfer(src, dst, [make_date(src, 1, 2, 3)])
        assert dst.heap.old.contains(received)

    def test_linked_list(self, pair):
        src, dst = pair
        head = make_list(src, list(range(200)))
        (received,), _ = transfer(src, dst, [head])
        assert read_list(dst, received) == list(range(200))

    def test_cycle(self, pair):
        src, dst = pair
        a = src.new_instance("ListNode")
        b = src.new_instance("ListNode")
        src.set_field(a, "payload", 10)
        src.set_field(b, "payload", 20)
        src.set_field(a, "next", b)
        src.set_field(b, "next", a)
        (ra,), _ = transfer(src, dst, [a])
        rb = dst.get_field(ra, "next")
        assert dst.get_field(rb, "next") == ra
        assert dst.get_field(ra, "payload") == 10
        assert dst.get_field(rb, "payload") == 20

    def test_shared_object_stays_shared(self, pair):
        src, dst = pair
        shared = src.new_instance("Day2D")
        src.set_field(shared, "day", 9)
        d1 = src.new_instance("Date")
        src.set_field(d1, "day", shared)
        d2 = src.new_instance("Date")
        src.set_field(d2, "day", shared)
        (r1, r2), _ = transfer(src, dst, [d1, d2])
        assert dst.get_field(r1, "day") == dst.get_field(r2, "day")
        assert dst.get_field(dst.get_field(r1, "day"), "day") == 9

    def test_null_fields_stay_null(self, pair):
        src, dst = pair
        date = src.new_instance("Date")  # all refs null
        (received,), _ = transfer(src, dst, [date])
        assert dst.get_field(received, "year") == NULL

    def test_arrays_and_strings(self, pair):
        src, dst = pair
        value = ["hello", "skyway", ("t", 1, 2.5), b"\x01\x02"]
        addr = to_heap(src, value)
        (received,), _ = transfer(src, dst, [addr])
        assert from_heap(dst, received) == value

    def test_primitive_payload_bytes_identical(self, pair):
        src, dst = pair
        arr = src.new_array("J", 16)
        for i in range(16):
            src.heap.write_element(arr, i, i * 0x0101010101)
        (received,), _ = transfer(src, dst, [arr])
        for i in range(16):
            assert dst.heap.read_element(received, i) == i * 0x0101010101

    def test_repeated_root_becomes_backward_reference(self, pair):
        src, dst = pair
        date = make_date(src, 7, 7, 7)
        out = SkywayObjectOutputStream(src.skyway, destination="p")
        a1 = out.write_object(date)
        a2 = out.write_object(date)  # same phase: backward reference
        assert a1 == a2
        data = out.close()
        inp = SkywayObjectInputStream(dst.skyway)
        inp.accept(data)
        r1, r2 = inp.read_object(), inp.read_object()
        assert r1 == r2

    def test_null_root_roundtrips(self, pair):
        """writeObject(null) works under the Java serializer, so the
        drop-in-compatible API must accept it too."""
        src, dst = pair
        (received,), _ = transfer(src, dst, [NULL])
        assert received == NULL


class TestHeaderHandling:
    def test_hashcode_preserved(self, pair):
        """The headline §4.2 property: cached identity hashes survive."""
        src, dst = pair
        date = make_date(src, 1, 1, 1)
        h = src.identity_hash(date)
        (received,), _ = transfer(src, dst, [date])
        assert markword.get_hash(dst.heap.read_mark(received)) == h

    def test_gc_and_lock_bits_reset(self, pair):
        src, dst = pair
        date = make_date(src, 1, 1, 1)
        mark = src.heap.read_mark(date)
        mark = markword.set_age(mark, 4)
        mark = markword.set_lock_bits(mark, markword.LOCK_INFLATED)
        src.heap.write_mark(date, mark)
        (received,), _ = transfer(src, dst, [date])
        got = dst.heap.read_mark(received)
        assert markword.get_age(got) == 0
        assert markword.get_lock_bits(got) == markword.LOCK_UNLOCKED

    def test_klass_word_is_local_klass_after_receive(self, pair):
        src, dst = pair
        date = make_date(src, 1, 1, 1)
        (received,), _ = transfer(src, dst, [date])
        assert dst.klass_of(received).name == "Date"
        # And it is the *receiver's* klass id, not the sender's.
        assert dst.heap.read_klass_word(received) == dst.loader.load("Date").klass_id

    def test_hashmap_needs_no_rehash(self, pair):
        """Skyway's transferred HashMap answers lookups immediately; the
        bucket layout (a function of preserved hashcodes) is intact."""
        src, dst = pair
        ops_src = HashMapOps(src)
        m = src.pin(ops_src.new())
        keys = []
        for i in range(20):
            k = src.pin(src.new_instance("Day2D"))  # identity-hashed keys
            src.set_field(k.address, "day", i)
            src.identity_hash(k.address)  # force hash caching
            v = src.pin(to_heap(src, i * 100))
            m.address = ops_src.put(m.address, k.address, v.address)
            keys.append(k)
        (received,), _ = transfer(src, dst, [m.address])
        ops_dst = HashMapOps(dst)
        # Walk received entries and verify each key found via cached hash.
        found = 0
        for k_addr, v_addr in ops_dst.entries(received):
            assert ops_dst.get(received, k_addr) == v_addr
            found += 1
        assert found == 20


class TestGCIntegration:
    def test_received_graph_survives_minor_gc(self, pair):
        src, dst = pair
        head = make_list(src, list(range(30)))
        (received,), _ = transfer(src, dst, [head])
        pin = dst.pin(received)
        for _ in range(200):
            dst.new_instance("Date")  # churn
        dst.gc.minor()
        assert read_list(dst, pin.address) == list(range(30))

    def test_card_table_marked_for_input_buffer(self, pair):
        src, dst = pair
        before = dst.heap.card_table.dirty_count
        transfer(src, dst, [make_list(src, [1, 2, 3])])
        assert dst.heap.card_table.dirty_count > before

    def test_young_object_referenced_from_received_buffer(self, pair):
        """A mutator pointer written into a received (old-gen) object must
        keep its young target alive across a scavenge."""
        src, dst = pair
        (received,), _ = transfer(src, dst, [make_list(src, [5])])
        pin = dst.pin(received)
        young = dst.new_instance("ListNode")
        dst.set_field(young, "payload", 99)
        dst.set_field(pin.address, "next", young)
        dst.gc.minor()
        assert dst.get_field(dst.get_field(pin.address, "next"), "payload") == 99

    def test_received_graph_survives_full_gc(self, pair):
        src, dst = pair
        (received,), _ = transfer(src, dst, [make_list(src, [7, 8, 9])])
        pin = dst.pin(received)
        dst.gc.full()
        assert read_list(dst, pin.address) == [7, 8, 9]


class TestStreamingAndChunks:
    def test_many_segments_small_buffer(self, classpath):
        driver = JVM("s", classpath=classpath)
        worker = JVM("r", classpath=classpath)
        attach_skyway(driver, [worker], output_buffer_capacity=512,
                      input_chunk_size=512)
        head = make_list(driver, list(range(300)))
        out = SkywayObjectOutputStream(driver.skyway, destination="p")
        out.write_object(head)
        data = out.close()
        assert out.sender.buffer.flush_count > 5
        inp = SkywayObjectInputStream(worker.skyway)
        inp.accept(data)
        assert read_list(worker, inp.read_object()) == list(range(300))
        assert len(inp.receiver.buffer.chunks) > 5

    def test_oversized_object_gets_dedicated_chunk(self, classpath):
        driver = JVM("s", classpath=classpath)
        worker = JVM("r", classpath=classpath)
        attach_skyway(driver, [worker], output_buffer_capacity=1024,
                      input_chunk_size=1024)
        big = driver.new_array("J", 4096)  # ~32KB object
        driver.heap.write_element(big, 4095, 123)
        out = SkywayObjectOutputStream(driver.skyway, destination="p")
        out.write_object(big)
        data = out.close()
        inp = SkywayObjectInputStream(worker.skyway)
        inp.accept(data)
        received = inp.read_object()
        assert worker.heap.read_element(received, 4095) == 123
        assert any(c.capacity > 1024 for c in inp.receiver.buffer.chunks)

    def test_read_before_finish_rejected(self, pair):
        src, dst = pair
        inp = SkywayObjectInputStream(dst.skyway)
        with pytest.raises(Exception):
            inp.read_object()


class TestShufflePhases:
    def test_same_object_across_phases(self, pair):
        """An object sent in phase N can be sent again in phase N+1; the
        stale baddr from phase N must not be trusted."""
        src, dst = pair
        date = make_date(src, 2020, 6, 15)
        transfer(src, dst, [date])
        src.set_field(src.get_field(date, "year"), "year", 2021)
        (received,), _ = transfer(src, dst, [date])
        assert read_date(dst, received) == (2021, 6, 15)

    def test_shuffle_start_increments_sid(self, pair):
        src, _ = pair
        before = src.skyway.sid
        src.skyway.shuffle_start()
        assert src.skyway.sid == before + 1


class TestRegisterUpdate:
    def test_update_function_applied_after_transfer(self, classpath):
        classpath.define("Record", [("payload", "J"), ("timeStamp", "J")])
        driver = JVM("s", classpath=classpath)
        worker = JVM("r", classpath=classpath)
        attach_skyway(driver, [worker])
        worker.skyway.register_update(
            "Record", "timeStamp", lambda jvm, addr: 777
        )
        rec = driver.new_instance("Record")
        driver.set_field(rec, "payload", 1)
        driver.set_field(rec, "timeStamp", 123456)
        out = SkywayObjectOutputStream(driver.skyway, destination="p")
        out.write_object(rec)
        inp = SkywayObjectInputStream(worker.skyway)
        inp.accept(out.close())
        received = inp.read_object()
        assert worker.get_field(received, "payload") == 1
        assert worker.get_field(received, "timeStamp") == 777

    def test_register_update_validates_field(self, pair):
        src, _ = pair
        with pytest.raises(KeyError):
            src.skyway.register_update("Date", "nope", lambda j, a: 0)


class TestClassLoadingOnReceive:
    def test_receiver_loads_unseen_class(self, classpath):
        """Receiver never touched 'Mixed'; the tID in the stream resolves
        through the registry and triggers a local class load."""
        driver = JVM("s", classpath=classpath)
        worker = JVM("r", classpath=classpath)
        attach_skyway(driver, [worker])
        obj = driver.new_instance("Mixed")
        driver.set_field(obj, "i", 31337)
        assert not worker.loader.is_loaded("Mixed")
        out = SkywayObjectOutputStream(driver.skyway, destination="p")
        out.write_object(obj)
        inp = SkywayObjectInputStream(worker.skyway)
        inp.accept(out.close())
        received = inp.read_object()
        assert worker.loader.is_loaded("Mixed")
        assert worker.get_field(received, "i") == 31337
