"""Deep and wide object graphs: where recursive serializers break.

Skyway's traversal is an iterative BFS (Algorithm 2's explicit gray
queue), so graph depth costs nothing.  Recursive serializers — the real
``ObjectOutputStream`` famously throws ``StackOverflowError`` on deep
linked structures — hit the (Python) stack limit here in exactly the same
way, which this suite documents as matching behavior, not a bug.
"""

import sys

import pytest

from repro.core.runtime import attach_skyway
from repro.core.adapter import SkywaySerializer
from repro.jvm.jvm import JVM
from repro.serial.java_serializer import JavaSerializer

from tests.conftest import make_list, read_list, sample_classpath


@pytest.fixture
def pair():
    cp = sample_classpath()
    src = JVM("deep-src", classpath=cp, old_bytes=256 * 1024 * 1024)
    dst = JVM("deep-dst", classpath=cp, old_bytes=256 * 1024 * 1024)
    attach_skyway(src, [dst])
    return src, dst


class TestDeepChains:
    def test_skyway_handles_very_deep_chain(self, pair):
        src, dst = pair
        depth = 5000
        head = src.pin(make_list(src, range(depth)))
        ser = SkywaySerializer()
        received = ser.deserialize(dst, ser.serialize(src, head.address))
        assert read_list(dst, received) == list(range(depth))

    def test_recursive_serializer_overflows_like_the_jdk(self, pair):
        """java.io.ObjectOutputStream throws StackOverflowError on deep
        graphs; the model reproduces the failure mode via Python's
        recursion limit."""
        src, _ = pair
        depth = sys.getrecursionlimit() * 2
        head = src.pin(make_list(src, range(depth)))
        with pytest.raises(RecursionError):
            JavaSerializer().serialize(src, head.address)

    def test_wide_fanout(self, pair):
        src, dst = pair
        hub = src.pin(src.new_array("Ljava.lang.Object;", 2000))
        for i in range(2000):
            leaf = src.new_instance("Day2D")
            src.set_field(leaf, "day", i % 31)
            src.heap.write_element(hub.address, i, leaf)
        ser = SkywaySerializer()
        received = ser.deserialize(dst, ser.serialize(src, hub.address))
        assert dst.heap.array_length(received) == 2000
        probe = dst.heap.read_element(received, 1999)
        assert dst.get_field(probe, "day") == 1999 % 31
