"""The in-process substrate: epochs delivered by function call.

A :class:`LoopbackGraphChannel` frames epochs exactly like the socket
substrate (same :class:`~repro.delta.channel.DeltaSendChannel`, same
FULL/DELTA wire bytes — that identity is what B-EXCHANGE's parity gate
checks) but delivers them by calling the receiving runtime's dispatch in
the same process.  Two binding modes:

* **bound** — constructed with a ``receiver_runtime``: every ``send()``
  also applies the frame there, optionally byte-accounting the transfer on
  a simulated :class:`~repro.net.cluster.Cluster` link, and the receipt
  carries receiver roots.  An in-process :class:`DeltaStaleError` is
  handled like the socket NACK: force the next epoch full, resend, count
  both frames.
* **unbound** — no receiver: ``send()`` just frames the epoch and hands
  the bytes back (the serializer-adapter path, where the engine moves the
  bytes itself).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.core.runtime import SkywayRuntime
from repro.delta.channel import DeltaSendChannel, DeltaStaleError
from repro.exchange.capabilities import (
    ChannelCapabilities,
    DEFAULT_REQUEST,
    LOOPBACK_OFFER,
)
from repro.exchange.channel import GraphChannel, SendReceipt, collect_roots
from repro.exchange.errors import ExchangeConfigError
from repro.exchange.dispatch import receive_epoch
from repro.net.cluster import Cluster, Node
from repro.policy import SendPlan
from repro.simtime import Category
from repro.transport.digest import semantic_graph_digest


class LoopbackGraphChannel(GraphChannel):
    """One in-process sending endpoint."""

    substrate = "loopback"

    def __init__(
        self,
        runtime: SkywayRuntime,
        destination: str,
        requested: ChannelCapabilities = DEFAULT_REQUEST,
        receiver_runtime: Optional[SkywayRuntime] = None,
        cluster: Optional[Cluster] = None,
        src: Optional[Node] = None,
        dst: Optional[Node] = None,
        policy=None,
        channel_id: Optional[int] = None,
    ) -> None:
        super().__init__(destination, requested, LOOPBACK_OFFER)
        self.runtime = runtime
        self.receiver_runtime = receiver_runtime
        self._cluster = cluster
        self._src = src
        self._dst = dst
        self._channel = DeltaSendChannel(
            runtime,
            destination=destination,
            policy=policy,
            target_layout=(receiver_runtime.jvm.layout
                           if receiver_runtime is not None else None),
            channel_id=channel_id,
            delta_enabled=self.capabilities.delta,
            use_kernels=self.capabilities.kernel,
            capabilities=self.capabilities,
        )

    # ------------------------------------------------------------------

    def _send_impl(self, roots: Sequence[int],
                   digest: Optional[bool] = None,
                   plan: Optional[SendPlan] = None) -> SendReceipt:
        channel = self._require_open()
        roots = collect_roots(roots)
        snaps = [(clock, clock.snapshot()) for clock in self._clocks()]
        sender_clock = self.runtime.jvm.clock
        started = time.perf_counter()
        with sender_clock.phase(Category.SERIALIZATION):
            frame = channel.send(roots, plan=plan)
        decision = channel.last_decision
        wire_bytes = len(frame)
        received: List[int] = []
        nack = False
        if self.receiver_runtime is not None:
            try:
                received = self._deliver(frame)
            except DeltaStaleError:
                # The in-process NACK: receiver state is gone (full GC or a
                # dropped channel).  Same recovery as the socket substrate.
                nack = True
                channel.force_full_next()
                with sender_clock.phase(Category.SERIALIZATION):
                    frame = channel.send(roots)
                decision = channel.last_decision
                wire_bytes += len(frame)
                received = self._deliver(frame)
        channel.engine.observe_transfer(
            channel.channel_id, wire_bytes,
            time.perf_counter() - started,
        )
        for clock, snap in snaps:
            self._note_sim(clock.since(snap))
        executed = channel.last_plan
        if digest is None:
            # No explicit override: the plan decides.
            digest = bool(executed.digest) if executed is not None else False
        receipt = SendReceipt(
            mode=decision.mode,
            reason=decision.reason,
            epoch=channel.epoch,
            wire_bytes=wire_bytes,
            frame=frame,
            roots=tuple(received),
            digest=(self.receiver_digest(received)
                    if digest and received else None),
            nack_recovered=nack,
            plan=executed,
        )
        return self._account_send(receipt)

    def receiver_digest(self, roots: Sequence[int]) -> str:
        """Semantic digest of ``roots`` on the receiving heap — the
        cross-substrate equivalence handle."""
        if self.receiver_runtime is None:
            raise ExchangeConfigError(
                f"loopback channel to {self.destination!r} has no receiver "
                f"runtime bound"
            )
        return semantic_graph_digest(self.receiver_runtime.jvm, roots)

    # ------------------------------------------------------------------

    def _deliver(self, frame: bytes) -> List[int]:
        if self._cluster is not None and self._src is not None \
                and self._dst is not None:
            self._cluster.transfer(self._src, self._dst, len(frame))
        receiver_clock = self.receiver_runtime.jvm.clock
        with receiver_clock.phase(Category.DESERIALIZATION):
            return receive_epoch(self.receiver_runtime, frame)

    def _clocks(self):
        clocks = [self.runtime.jvm.clock]
        if self.receiver_runtime is not None:
            rc = self.receiver_runtime.jvm.clock
            if rc is not clocks[0]:
                clocks.append(rc)
        return clocks
