"""Multi-stream parallel send — the transport half of §4.2's threads.

The paper segregates output buffers by destination *and sending thread*:
"only one such output buffer exists for each destination [per thread]".
Here that becomes N concurrent ``recv_graph`` streams to one worker, each
with its own connection, chunk pipeline, and ``thread_id`` — so each
stream's baddr words carry a distinct thread field and an object reached
by two streams is cloned once per stream through the per-stream shared
table (the §4.2 crossover: "these copies will become separate objects
after delivered to a remote node").

Concurrency model: graph traversal is deterministic and runs on the
caller thread, interleaving roots round-robin across the streams; each
stream's chunk pipeline has its own writer thread pushing DATA frames, and
the worker serves each connection on its own thread with placement
serialized per chunk.  So stream i's traversal overlaps every stream's
socket I/O and the worker's placement of streams j != i — the wall-clock
win — while the byte content of each stream stays a pure function of its
root shard (the determinism the benchmark's digest-parity check relies
on).

All streams share ONE shuffling phase: a single ``shuffle_start`` before
any stream opens, so every baddr carries the same sID and a foreign
stream's baddr is recognized as "claimed by another thread this phase"
rather than rejected as stale.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence

from repro.transport.client import GraphSendStream, WorkerClient
from repro.transport.errors import TransportError
from repro.transport.metrics import TransportMetrics
from repro.transport.pipeline import DEFAULT_CHUNK_BYTES, DEFAULT_QUEUE_CHUNKS


def shard_roots(roots: Sequence[int], streams: int) -> List[List[int]]:
    """Deal roots round-robin into ``streams`` shards (shard i gets roots
    i, i+n, i+2n, ... — deterministic and balanced to within one root)."""
    if streams < 1:
        raise ValueError("streams must be >= 1")
    return [list(roots[i::streams]) for i in range(streams)]


@dataclasses.dataclass
class StreamReport:
    """What one stream of a parallel send delivered."""

    thread_id: int
    roots: int
    result: dict  # the worker's recv_graph RESULT payload
    data: bytes  # framed stream bytes, for byte-level cross-checks

    @property
    def digest(self) -> str:
        return self.result["digest"]

    @property
    def objects(self) -> int:
        return self.result["objects"]


@dataclasses.dataclass
class ParallelSendReport:
    """The aggregate of one multi-stream send."""

    streams: List[StreamReport]
    elapsed_seconds: float
    #: All streams' measured wire counters folded into one ledger (fresh
    #: object, deterministic fold order = thread-id order); None when the
    #: sender had no metrics to merge.
    transport: Optional[TransportMetrics] = None

    @property
    def digests(self) -> List[str]:
        """Per-stream digests in thread order — two runs that produced the
        same object bytes produce the same list."""
        return [s.digest for s in self.streams]

    @property
    def total_objects(self) -> int:
        return sum(s.objects for s in self.streams)

    @property
    def total_stream_bytes(self) -> int:
        return sum(len(s.data) for s in self.streams)

    def as_dict(self) -> Dict[str, object]:
        return {
            "streams": len(self.streams),
            "total_objects": self.total_objects,
            "total_stream_bytes": self.total_stream_bytes,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "digests": self.digests,
            "transport": (self.transport.as_dict()
                          if self.transport is not None else None),
        }


class ParallelGraphSender:
    """Shard a root set across N connected clients and stream in parallel.

    Every client must share one driver runtime (they usually point at one
    worker's port, but fanning out across workers works the same way —
    each stream is independent after the shared ``shuffle_start``).
    """

    def __init__(self, clients: Sequence[WorkerClient]) -> None:
        if not clients:
            raise ValueError("ParallelGraphSender needs at least one client")
        runtimes = {id(c.runtime) for c in clients}
        if len(runtimes) != 1:
            raise TransportError(
                "parallel streams must share one driver runtime "
                "(one shuffle phase, one registry, one heap)"
            )
        self.clients = list(clients)
        self.runtime = clients[0].runtime

    def send(
        self,
        roots: Sequence[int],
        retain: bool = False,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        queue_chunks: int = DEFAULT_QUEUE_CHUNKS,
        throttle_mbps: Optional[float] = None,
    ) -> ParallelSendReport:
        """Send ``roots`` as ``len(self.clients)`` interleaved streams."""
        started = time.perf_counter()
        # One phase for every stream: baddrs from stream A observed by
        # stream B must read as "this phase, another thread".
        self.runtime.shuffle_start()
        shards = shard_roots(roots, len(self.clients))
        streams: List[GraphSendStream] = [
            client.begin_graph(
                retain=retain, thread_id=tid, fresh_phase=False,
                chunk_bytes=chunk_bytes, queue_chunks=queue_chunks,
                throttle_mbps=throttle_mbps,
            )
            for tid, client in enumerate(self.clients)
        ]
        try:
            # Round-robin, one root per stream per round: the traversal
            # order (and therefore every stream's bytes) is deterministic,
            # and shared subgraphs are reached alternately by different
            # thread_ids — the §4.2 crossover path, exercised on purpose.
            rounds = max((len(s) for s in shards), default=0)
            for step in range(rounds):
                for stream, shard in zip(streams, shards):
                    if step < len(shard):
                        stream.write_object(shard[step])
            reports = []
            for tid, (stream, shard) in enumerate(zip(streams, shards)):
                result, data = stream.finish()
                reports.append(StreamReport(
                    thread_id=tid, roots=len(shard),
                    result=result, data=data,
                ))
        except TransportError:
            for stream in streams:
                try:
                    stream.abort()
                except TransportError:  # pragma: no cover - best effort
                    pass
            raise
        return ParallelSendReport(
            streams=reports,
            elapsed_seconds=time.perf_counter() - started,
            transport=self._merged_metrics(),
        )

    def _merged_metrics(self) -> TransportMetrics:
        """One deterministic aggregate over the clients' metrics objects —
        deduplicated by identity first, since several clients may share one
        ledger (each distinct ledger counts exactly once)."""
        unique: List[TransportMetrics] = []
        for client in self.clients:
            if not any(client.metrics is m for m in unique):
                unique.append(client.metrics)
        return TransportMetrics.merged(unique)
