"""The managed-heap substrate: a byte-addressed simulated JVM heap.

This package stands in for HotSpot in the reproduction (see DESIGN.md):
objects live at addresses inside ``bytearray``-backed generations with real
mark/klass headers, HotSpot-like field alignment and padding, a card table,
and a generational garbage collector.  Skyway's sender/receiver operate on
these bytes directly, exactly as the paper's JVM modification operates on
HotSpot's.
"""

from repro.heap.layout import HeapLayout, BASELINE_LAYOUT, SKYWAY_LAYOUT
from repro.heap.klass import FieldInfo, Klass
from repro.heap.heap import HeapError, ManagedHeap, OutOfMemoryError, NULL
from repro.heap.handles import Handle, HandleTable
from repro.heap.cardtable import CardTable
from repro.heap import markword

__all__ = [
    "HeapLayout",
    "BASELINE_LAYOUT",
    "SKYWAY_LAYOUT",
    "FieldInfo",
    "Klass",
    "ManagedHeap",
    "HeapError",
    "OutOfMemoryError",
    "NULL",
    "Handle",
    "HandleTable",
    "CardTable",
    "markword",
]
