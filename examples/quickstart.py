#!/usr/bin/env python
"""Quickstart: move an object graph between two managed heaps with Skyway.

Builds the paper's Figure 2 example (a ``Date`` with ``Year4D`` /
``Month2D`` / ``Day2D`` children) on one simulated JVM, transfers it with
``SkywayObjectOutputStream.writeObject`` / ``readObject``, and shows what
the paper's mechanism guarantees: same field values, preserved identity
hashcode, klass words resolved to the *receiver's* meta-objects — and a
cost an order of magnitude below the Java serializer's.

Run:  python examples/quickstart.py
"""

from repro.core.runtime import attach_skyway
from repro.core.streams import SkywayObjectInputStream, SkywayObjectOutputStream
from repro.heap import markword
from repro.heap.klass import describe_layout
from repro.jvm.jvm import JVM
from repro.serial.java_serializer import JavaSerializer
from repro.types.corelib import standard_classpath


def main() -> None:
    # 1. A cluster-wide class path with the paper's Figure 2 classes.
    classpath = standard_classpath()
    classpath.define("Year4D", [("year", "I")])
    classpath.define("Month2D", [("month", "I")])
    classpath.define("Day2D", [("day", "I")])
    classpath.define(
        "Date",
        [("year", "LYear4D;"), ("month", "LMonth2D;"), ("day", "LDay2D;")],
    )

    # 2. Two JVM processes; Skyway attaches a driver registry + worker view
    #    so every class gets one cluster-global type ID (paper §4.1).
    driver = JVM("driver", classpath=classpath)
    worker = JVM("worker", classpath=classpath)
    attach_skyway(driver, [worker])

    # 3. Build the object graph on the driver's heap.
    date = driver.new_instance("Date")
    pin = driver.pin(date)
    for field, cls, inner, value in (
        ("year", "Year4D", "year", 2018),
        ("month", "Month2D", "month", 3),
        ("day", "Day2D", "day", 24),
    ):
        leaf = driver.new_instance(cls)
        driver.set_field(leaf, inner, value)
        driver.set_field(pin.address, field, leaf)
    date = pin.address
    hashcode = driver.identity_hash(date)

    print("Object layout on the sender (note the Skyway baddr word):")
    print(describe_layout(driver.klass_of(date)))
    print()

    # 4. writeObject -> readObject, exactly the Java-serializer call shape.
    out = SkywayObjectOutputStream(driver.skyway, destination="worker")
    out.write_object(date)
    wire = out.close()

    inp = SkywayObjectInputStream(worker.skyway)
    inp.accept(wire)
    received = inp.read_object()

    year = worker.get_field(worker.get_field(received, "year"), "year")
    month = worker.get_field(worker.get_field(received, "month"), "month")
    day = worker.get_field(worker.get_field(received, "day"), "day")
    print(f"Received Date [year={year} month={month} day={day}]")
    print(f"Wire bytes: {len(wire)} "
          f"({out.sender.objects_sent} objects, no type strings)")

    received_hash = markword.get_hash(worker.heap.read_mark(received))
    print(f"Identity hashcode preserved across the wire: "
          f"{hashcode:#x} -> {received_hash:#x} "
          f"({'YES' if hashcode == received_hash else 'NO'})")
    assert worker.klass_of(received).name == "Date"
    assert worker.heap.old.contains(received), "input buffers live in old gen"

    # 5. Same transfer through the JDK serializer, for the cost contrast.
    sky_cost = driver.clock.total() + worker.clock.total()
    java_src = JVM("java-src", classpath=classpath)
    java_dst = JVM("java-dst", classpath=classpath)
    data = JavaSerializer().serialize(java_src, _rebuild(java_src))
    JavaSerializer().deserialize(java_dst, data)
    java_cost = java_src.clock.total() + java_dst.clock.total()
    print(f"\nSimulated S/D cost: skyway {sky_cost * 1e6:.2f}us "
          f"vs java serializer {java_cost * 1e6:.2f}us "
          f"({java_cost / max(sky_cost, 1e-12):.1f}x)")
    print(f"Java serializer wire bytes: {len(data)} "
          f"(class descriptors + reflective field dump)")


def _rebuild(jvm: JVM) -> int:
    date = jvm.new_instance("Date")
    pin = jvm.pin(date)
    for field, cls, inner, value in (
        ("year", "Year4D", "year", 2018),
        ("month", "Month2D", "month", 3),
        ("day", "Day2D", "day", 24),
    ):
        leaf = jvm.new_instance(cls)
        jvm.set_field(leaf, inner, value)
        jvm.set_field(pin.address, field, leaf)
    return pin.address


if __name__ == "__main__":
    main()
