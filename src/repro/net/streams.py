"""Byte streams: the substrate under every serializer.

``ByteOutputStream``/``ByteInputStream`` provide the primitive encode/decode
operations S/D libraries use (fixed-width ints, varints, UTF-8 strings).
They do **not** charge simulated time themselves — each serializer charges
according to its own mechanism (a schema-compiled serializer does not pay
the Java serializer's costs for the same bytes).
"""

from __future__ import annotations

import struct
from typing import Optional


class StreamError(RuntimeError):
    pass


class ByteOutputStream:
    """An append-only byte sink with primitive encoders."""

    def __init__(self) -> None:
        self._buf = bytearray()

    # -- raw ---------------------------------------------------------------

    def write_bytes(self, data: bytes) -> None:
        self._buf.extend(data)

    def write_u8(self, v: int) -> None:
        self._buf.append(v & 0xFF)

    def write_u16(self, v: int) -> None:
        self._buf.extend(struct.pack("<H", v & 0xFFFF))

    def write_u32(self, v: int) -> None:
        self._buf.extend(struct.pack("<I", v & 0xFFFFFFFF))

    def write_u64(self, v: int) -> None:
        self._buf.extend(struct.pack("<Q", v & (2**64 - 1)))

    def write_i32(self, v: int) -> None:
        self._buf.extend(struct.pack("<i", v))

    def write_i64(self, v: int) -> None:
        self._buf.extend(struct.pack("<q", v))

    def write_f32(self, v: float) -> None:
        self._buf.extend(struct.pack("<f", v))

    def write_f64(self, v: float) -> None:
        self._buf.extend(struct.pack("<d", v))

    def write_varint(self, v: int) -> int:
        """LEB128 unsigned varint; returns encoded byte count."""
        if v < 0:
            raise StreamError(f"varint must be non-negative: {v}")
        n = 0
        while True:
            b = v & 0x7F
            v >>= 7
            if v:
                self._buf.append(b | 0x80)
                n += 1
            else:
                self._buf.append(b)
                return n + 1

    def write_utf(self, text: str) -> int:
        """Length-prefixed UTF-8 string; returns payload byte count."""
        data = text.encode("utf-8")
        self.write_varint(len(data))
        self.write_bytes(data)
        return len(data)

    # -- results --------------------------------------------------------------

    def getvalue(self) -> bytes:
        return bytes(self._buf)

    def tail(self, start: int) -> bytes:
        """Bytes appended since ``start`` (incremental consumers — e.g. a
        pipelined transport — drain the stream as it grows)."""
        return bytes(self._buf[start:])

    def __len__(self) -> int:
        return len(self._buf)

    @property
    def position(self) -> int:
        return len(self._buf)


class ByteInputStream:
    """A cursor over bytes with primitive decoders."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def _take(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise StreamError(
                f"stream underflow: need {n} bytes at {self._pos}, "
                f"have {len(self._data)}"
            )
        chunk = self._data[self._pos : self._pos + n]
        self._pos += n
        return chunk

    def read_bytes(self, n: int) -> bytes:
        return self._take(n)

    def read_u8(self) -> int:
        return self._take(1)[0]

    def read_u16(self) -> int:
        return struct.unpack("<H", self._take(2))[0]

    def read_u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def read_u64(self) -> int:
        return struct.unpack("<Q", self._take(8))[0]

    def read_i32(self) -> int:
        return struct.unpack("<i", self._take(4))[0]

    def read_i64(self) -> int:
        return struct.unpack("<q", self._take(8))[0]

    def read_f32(self) -> float:
        return struct.unpack("<f", self._take(4))[0]

    def read_f64(self) -> float:
        return struct.unpack("<d", self._take(8))[0]

    def read_varint(self) -> int:
        result = 0
        shift = 0
        while True:
            b = self.read_u8()
            result |= (b & 0x7F) << shift
            if not b & 0x80:
                return result
            shift += 7
            if shift > 70:
                raise StreamError("varint too long")

    def read_utf(self) -> str:
        n = self.read_varint()
        return self._take(n).decode("utf-8")

    @property
    def position(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def at_end(self) -> bool:
        return self._pos >= len(self._data)
